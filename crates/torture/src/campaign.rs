//! The campaign driver: generate mutants, run them through the subject
//! twice, classify the outcomes, minimize and record anything that breaks
//! the contract.
//!
//! The contract under test: *every input either produces a typed error or
//! a correct run — never a panic, never a hang, never a scheduler/checker
//! disagreement, never divergent results across runs.* Hangs are excluded
//! by construction (the subject embeds finite fuel budgets; a wall-clock
//! watchdog would destroy replay determinism), so the driver looks for
//! the other three: panics (via a `catch_unwind` backstop), rejections at
//! stages that must accept (e.g. the verifier rejecting the compiler's
//! own output), and verdicts that differ between two identical runs.

use crate::mutate::{mutate, Layer};
use crate::rng::SplitMix64;
use crate::subject::{Input, Stage, Subject, Verdict};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Campaign parameters. Everything influencing mutant generation is
/// deterministic; replaying with the same config reproduces the same
/// mutants bit-for-bit.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; each mutant gets a substream keyed by `(seed, layer,
    /// index)`.
    pub seed: u64,
    /// Mutants per layer.
    pub iters: u64,
    /// Layers to run.
    pub layers: Vec<Layer>,
    /// Additional Tital seed programs (beyond the built-ins).
    pub extra_source_seeds: Vec<String>,
    /// Additional assembly seeds — typically freshly scheduled compiler
    /// output, so the instruction-stream layer mutates *real* schedules.
    pub extra_asm_seeds: Vec<String>,
    /// Swallow panic backtraces while the campaign runs. This swaps the
    /// process-global panic hook for the duration, so leave it off in
    /// multi-threaded test runs.
    pub quiet: bool,
    /// Cap on subject invocations the minimizer may spend per finding.
    pub minimize_budget: u32,
}

impl CampaignConfig {
    /// A default campaign: every layer at `iters` mutants each.
    #[must_use]
    pub fn new(seed: u64, iters: u64) -> Self {
        CampaignConfig {
            seed,
            iters,
            layers: Layer::ALL.to_vec(),
            extra_source_seeds: Vec::new(),
            extra_asm_seeds: Vec::new(),
            quiet: false,
            minimize_budget: 256,
        }
    }
}

/// How a mutant broke the contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The pipeline panicked (caught by the unwind backstop).
    Panic,
    /// A stage that must accept this layer's survivors rejected one — for
    /// source/AST layers, the verifier rejecting the compiler's own
    /// output is a scheduler/checker disagreement.
    UnexpectedReject(Stage),
    /// Two identical runs produced different verdicts.
    Nondeterminism,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::Panic => f.write_str("panic"),
            FindingKind::UnexpectedReject(stage) => {
                write!(f, "unexpected-reject-{}", stage.name())
            }
            FindingKind::Nondeterminism => f.write_str("nondeterminism"),
        }
    }
}

/// One contract violation, with a minimized textual reproducer.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The mutation layer that produced the input.
    pub layer: Layer,
    /// Mutant index within the layer (with the campaign seed, enough to
    /// regenerate the unminimized input).
    pub index: u64,
    /// What went wrong.
    pub kind: FindingKind,
    /// The reproducer text (minimized when the minimizer kept the
    /// failure alive; otherwise the original mutant).
    pub input: String,
    /// Corpus file extension for the reproducer.
    pub extension: &'static str,
    /// Human-readable detail (panic payload or mismatching verdicts).
    pub detail: String,
}

/// Per-layer tallies.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// The layer.
    pub layer: Layer,
    /// Mutants generated.
    pub mutants: u64,
    /// Mutants the pipeline accepted (full run, fingerprint produced).
    pub accepted: u64,
    /// Mutants rejected with a typed error at an acceptable stage.
    pub rejected: u64,
    /// Contract violations.
    pub findings: Vec<Finding>,
}

/// The whole campaign's outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// One report per layer, in config order.
    pub layers: Vec<LayerReport>,
}

impl CampaignReport {
    /// Total contract violations across layers.
    #[must_use]
    pub fn finding_count(&self) -> usize {
        self.layers.iter().map(|l| l.findings.len()).sum()
    }

    /// All findings, flattened.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.layers.iter().flat_map(|l| l.findings.iter())
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "torture campaign: seed {} — {} finding(s)",
            self.seed,
            self.finding_count()
        )?;
        writeln!(
            f,
            "{:<10} {:>8} {:>10} {:>10} {:>9}",
            "layer", "mutants", "accepted", "rejected", "findings"
        )?;
        for layer in &self.layers {
            writeln!(
                f,
                "{:<10} {:>8} {:>10} {:>10} {:>9}",
                layer.layer.name(),
                layer.mutants,
                layer.accepted,
                layer.rejected,
                layer.findings.len()
            )?;
        }
        for finding in self.findings() {
            writeln!(
                f,
                "  [{}] mutant #{} — {}: {}",
                finding.layer.name(),
                finding.index,
                finding.kind,
                finding.detail.lines().next().unwrap_or("")
            )?;
        }
        Ok(())
    }
}

/// Stages whose rejections are routine for a layer's mutants. Anything
/// else rejecting is a [`FindingKind::UnexpectedReject`].
fn accepted_stages(layer: Layer) -> &'static [Stage] {
    match layer {
        // Fuzzed text and fuzzed trees legitimately die in the front end,
        // and a well-typed mutant may still trap at runtime (out-of-bounds
        // index, runaway recursion) — those are typed errors, exactly what
        // the contract asks for. The IR validator, the register allocator
        // and the verifier, though, must never reject something the
        // checker passed: that is a compiler disagreeing with itself.
        Layer::Source | Layer::Ast => &[Stage::Parse, Stage::Check, Stage::Lower, Stage::Sim],
        // Corrupted instruction streams die in the assembly parser, the
        // validator/lint (Verify) or the simulator.
        Layer::Asm => &[Stage::Parse, Stage::Verify, Stage::Sim],
        // Mutated descriptions die in the spec parser, the machine lint,
        // or starve the back end's temp pools (Split). A machine that
        // lints clean must compile and run the fixed workload — timing
        // changes, results do not — so `Sim` here is a finding.
        Layer::Machine => &[Stage::Machine, Stage::Verify, Stage::Split],
        // Mutated grid specs die in the grid parser (Machine: a grid is a
        // family of machine descriptions, including its cell-count cap) or
        // the per-cell machine lint. A grid that parses enumerates presets
        // by construction, so cells failing later is a finding.
        Layer::Grid => &[Stage::Machine, Stage::Verify, Stage::Split],
    }
}

/// One observation: a verdict, or the panic the backstop caught.
enum Observation {
    Verdict(Verdict),
    Panicked(String),
}

fn observe(subject: &dyn Subject, input: &Input) -> Observation {
    match panic::catch_unwind(AssertUnwindSafe(|| subject.run(input))) {
        Ok(verdict) => Observation::Verdict(verdict),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Observation::Panicked(message)
        }
    }
}

/// Classifies a double observation of one input. `None` means the
/// contract held.
fn classify(
    layer: Layer,
    first: &Observation,
    second: &Observation,
) -> Option<(FindingKind, String)> {
    match (first, second) {
        (Observation::Panicked(message), _) | (_, Observation::Panicked(message)) => {
            Some((FindingKind::Panic, message.clone()))
        }
        (Observation::Verdict(a), Observation::Verdict(b)) => {
            if a != b {
                return Some((
                    FindingKind::Nondeterminism,
                    format!("first run: {a:?}; second run: {b:?}"),
                ));
            }
            match a {
                Verdict::Ok { .. } => None,
                Verdict::Rejected { stage, message } => {
                    if accepted_stages(layer).contains(stage) {
                        None
                    } else {
                        Some((
                            FindingKind::UnexpectedReject(*stage),
                            format!("{}: {message}", stage.name()),
                        ))
                    }
                }
            }
        }
    }
}

/// Re-wraps reproducer text as the right [`Input`] for its layer. AST
/// findings are replayed through the source path (the printed tree).
fn reconstitute(layer: Layer, text: String) -> Input {
    match layer {
        Layer::Source | Layer::Ast => Input::Source(text),
        Layer::Asm => Input::Asm(text),
        Layer::Machine => Input::Machine(text),
        Layer::Grid => Input::Grid(text),
    }
}

/// Greedy line-wise ddmin: repeatedly drop chunks of lines while the
/// finding (same kind) survives, within `budget` subject invocations.
fn minimize(
    subject: &dyn Subject,
    layer: Layer,
    kind: &FindingKind,
    text: &str,
    budget: u32,
) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mut spent = 0_u32;
    let still_fails = |candidate: &str, spent: &mut u32| -> bool {
        *spent += 2;
        let input = reconstitute(layer, candidate.to_string());
        let first = observe(subject, &input);
        let second = observe(subject, &input);
        matches!(classify(layer, &first, &second), Some((k, _)) if k == *kind)
    };
    let mut chunk = (lines.len() / 2).max(1);
    while chunk >= 1 && spent < budget {
        let mut start = 0;
        while start < lines.len() && spent < budget {
            let end = (start + chunk).min(lines.len());
            let mut candidate: Vec<String> = lines[..start].to_vec();
            candidate.extend_from_slice(&lines[end..]);
            let candidate_text = candidate.join("\n");
            if !candidate.is_empty() && still_fails(&candidate_text, &mut spent) {
                lines = candidate; // keep the smaller reproducer
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Runs a full campaign. Deterministic: equal `(subject, config)` pairs
/// produce equal reports.
pub fn run_campaign(subject: &dyn Subject, config: &CampaignConfig) -> CampaignReport {
    let quiet_guard = config.quiet.then(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        previous
    });
    let mut layers = Vec::with_capacity(config.layers.len());
    for &layer in &config.layers {
        let mut report = LayerReport {
            layer,
            mutants: 0,
            accepted: 0,
            rejected: 0,
            findings: Vec::new(),
        };
        for index in 0..config.iters {
            // Key the substream by (seed, layer, index) so any single
            // mutant can be regenerated without replaying the campaign.
            let key = config
                .seed
                .wrapping_mul(0x0100_0000_01B3)
                .wrapping_add((layer as u64) << 32)
                .wrapping_add(index);
            let mut rng = SplitMix64::new(key).fork();
            let input = mutate(
                layer,
                &mut rng,
                &config.extra_source_seeds,
                &config.extra_asm_seeds,
            );
            report.mutants += 1;
            let first = observe(subject, &input);
            let second = observe(subject, &input);
            match classify(layer, &first, &second) {
                None => match first {
                    Observation::Verdict(Verdict::Ok { .. }) => report.accepted += 1,
                    _ => report.rejected += 1,
                },
                Some((kind, detail)) => {
                    let text = input.to_text();
                    let minimized = minimize(subject, layer, &kind, &text, config.minimize_budget);
                    report.findings.push(Finding {
                        layer,
                        index,
                        kind,
                        input: minimized,
                        extension: input.extension(),
                        detail,
                    });
                }
            }
        }
        layers.push(report);
    }
    if let Some(previous) = quiet_guard {
        panic::set_hook(previous);
    }
    CampaignReport {
        seed: config.seed,
        layers,
    }
}

/// Writes each finding's reproducer into `dir` (created if missing).
/// Returns the paths written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_corpus(dir: &Path, report: &CampaignReport) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for finding in report.findings() {
        let name = format!(
            "{}-{}-seed{}-{}.{}",
            finding.layer.name(),
            finding.kind,
            report.seed,
            finding.index,
            finding.extension
        );
        let path = dir.join(name);
        std::fs::write(&path, &finding.input)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Replays every corpus file under `dir` through the subject, twice,
/// checking the panic-free and determinism halves of the contract.
/// Typed rejections are fine — corpus entries exist precisely because
/// they once broke something, and *typed* is the fixed state. Files are
/// visited in sorted order so reports are stable.
///
/// # Errors
///
/// Propagates filesystem errors; an absent directory is an empty corpus.
pub fn replay_corpus(subject: &dyn Subject, dir: &Path) -> std::io::Result<CampaignReport> {
    let mut findings = Vec::new();
    let mut files = 0_u64;
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(iter) => iter
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    entries.sort();
    for path in entries {
        let Some(layer) = (match path.extension().and_then(|e| e.to_str()) {
            Some("tital") => Some(Layer::Source),
            Some("s") => Some(Layer::Asm),
            Some("machine") => Some(Layer::Machine),
            Some("grid") => Some(Layer::Grid),
            _ => None,
        }) else {
            continue; // READMEs and the like
        };
        let text = std::fs::read_to_string(&path)?;
        files += 1;
        let input = reconstitute(layer, text.clone());
        let first = observe(subject, &input);
        let second = observe(subject, &input);
        let violation = match classify(layer, &first, &second) {
            // Replay enforces only the panic/determinism halves: a typed
            // rejection at *any* stage is a regression fixed, not a bug.
            Some((kind @ (FindingKind::Panic | FindingKind::Nondeterminism), detail)) => {
                Some((kind, detail))
            }
            _ => None,
        };
        if let Some((kind, detail)) = violation {
            findings.push(Finding {
                layer,
                index: files - 1,
                kind,
                input: text,
                extension: input.extension(),
                detail: format!("{}: {detail}", path.display()),
            });
        }
    }
    Ok(CampaignReport {
        seed: 0,
        layers: vec![LayerReport {
            layer: Layer::Source,
            mutants: files,
            accepted: 0,
            rejected: files - findings.len() as u64,
            findings,
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A subject with injectable misbehaviour, for driver tests.
    struct FlakySubject {
        panic_on: Option<&'static str>,
        reject_stage: Stage,
    }

    impl Subject for FlakySubject {
        fn run(&self, input: &Input) -> Verdict {
            let text = input.to_text();
            if let Some(needle) = self.panic_on {
                assert!(!text.contains(needle), "injected panic");
            }
            if text.contains("reject-me") {
                Verdict::Rejected {
                    stage: self.reject_stage,
                    message: "injected rejection".to_string(),
                }
            } else {
                Verdict::Ok {
                    fingerprint: format!("len={}", text.len()),
                }
            }
        }
    }

    fn benign() -> FlakySubject {
        FlakySubject {
            panic_on: None,
            reject_stage: Stage::Parse,
        }
    }

    #[test]
    fn clean_subject_yields_no_findings() {
        let report = run_campaign(&benign(), &CampaignConfig::new(7, 10));
        assert_eq!(report.finding_count(), 0);
        for layer in &report.layers {
            assert_eq!(layer.mutants, 10);
            assert_eq!(layer.accepted + layer.rejected, 10);
        }
    }

    #[test]
    fn campaigns_replay_identically() {
        let a = run_campaign(&benign(), &CampaignConfig::new(3, 25));
        let b = run_campaign(&benign(), &CampaignConfig::new(3, 25));
        assert_eq!(a.finding_count(), b.finding_count());
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.accepted, lb.accepted);
            assert_eq!(la.rejected, lb.rejected);
        }
    }

    #[test]
    fn panics_are_caught_and_reported() {
        // Every Tital seed contains `fn`; panic whenever a source mutant
        // keeps one, which some surviving mutants will.
        let subject = FlakySubject {
            panic_on: Some("fn"),
            reject_stage: Stage::Parse,
        };
        let mut config = CampaignConfig::new(11, 20);
        config.layers = vec![Layer::Source];
        config.quiet = true;
        config.minimize_budget = 16;
        let report = run_campaign(&subject, &config);
        assert!(report.finding_count() > 0, "no panic observed");
        assert!(report
            .findings()
            .all(|f| matches!(f.kind, FindingKind::Panic)));
    }

    #[test]
    fn unexpected_rejections_are_findings() {
        struct AlwaysVerifyReject;
        impl Subject for AlwaysVerifyReject {
            fn run(&self, _: &Input) -> Verdict {
                Verdict::Rejected {
                    stage: Stage::Ir,
                    message: "ir exploded".to_string(),
                }
            }
        }
        let mut config = CampaignConfig::new(2, 3);
        config.layers = vec![Layer::Source];
        config.minimize_budget = 8;
        let report = run_campaign(&AlwaysVerifyReject, &config);
        assert_eq!(report.finding_count(), 3);
        assert!(report
            .findings()
            .all(|f| f.kind == FindingKind::UnexpectedReject(Stage::Ir)));
    }

    #[test]
    fn acceptable_rejections_are_not_findings() {
        struct AlwaysParseReject;
        impl Subject for AlwaysParseReject {
            fn run(&self, _: &Input) -> Verdict {
                Verdict::Rejected {
                    stage: Stage::Parse,
                    message: "no".to_string(),
                }
            }
        }
        let mut config = CampaignConfig::new(2, 5);
        config.layers = vec![Layer::Source, Layer::Asm];
        let report = run_campaign(&AlwaysParseReject, &config);
        assert_eq!(report.finding_count(), 0);
        assert!(report.layers.iter().all(|l| l.rejected == 5));
    }

    #[test]
    fn minimizer_shrinks_reproducers() {
        // Panic iff the text contains the needle; the minimized
        // reproducer should be far smaller than a whole seed program.
        struct NeedleSubject;
        impl Subject for NeedleSubject {
            fn run(&self, input: &Input) -> Verdict {
                assert!(
                    !input.to_text().contains("while"),
                    "injected panic on needle"
                );
                Verdict::Ok {
                    fingerprint: "ok".to_string(),
                }
            }
        }
        let text = "fn main() -> int {\n    var s = 0;\n    while (s < 3) { s = s + 1; }\n    return s;\n}\n";
        let minimized = minimize(&NeedleSubject, Layer::Source, &FindingKind::Panic, text, 64);
        assert!(minimized.contains("while"));
        assert!(
            minimized.lines().count() < text.lines().count(),
            "minimizer failed to shrink: {minimized:?}"
        );
    }

    #[test]
    fn corpus_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("supersym-torture-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = CampaignReport {
            seed: 42,
            layers: vec![LayerReport {
                layer: Layer::Source,
                mutants: 1,
                accepted: 0,
                rejected: 0,
                findings: vec![Finding {
                    layer: Layer::Source,
                    index: 0,
                    kind: FindingKind::Panic,
                    input: "fn main() { }\n".to_string(),
                    extension: "tital",
                    detail: "injected".to_string(),
                }],
            }],
        };
        let paths = write_corpus(&dir, &report).unwrap();
        assert_eq!(paths.len(), 1);
        let replay = replay_corpus(&benign(), &dir).unwrap();
        assert_eq!(replay.finding_count(), 0);
        assert_eq!(replay.layers[0].mutants, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_of_missing_dir_is_empty() {
        let report = replay_corpus(&benign(), Path::new("/nonexistent/corpus")).unwrap();
        assert_eq!(report.finding_count(), 0);
        assert_eq!(report.layers[0].mutants, 0);
    }
}
