//! supersym-torture: a deterministic fault-injection and
//! mutation-robustness harness for the supersym pipeline.
//!
//! The harness exists to enforce one contract over the whole pipeline
//! (parse → lower → optimize → allocate → schedule → verify → simulate):
//!
//! > Every input either produces a typed error or a correct run — never a
//! > panic, never a hang, never a scheduler/checker disagreement, never
//! > divergent results across runs.
//!
//! Five mutation layers probe that contract from different angles:
//!
//! - [`mutate::Layer::Source`] — byte- and token-level havoc on Tital
//!   source text, exercising the lexer/parser/sema front line;
//! - [`mutate::Layer::Ast`] — structured mutations on *checked* syntax
//!   trees, skipping past the parser to hit lowering, optimization and
//!   register allocation with inputs the front end can no longer filter;
//! - [`mutate::Layer::Asm`] — swap/drop/duplicate/operand-corruption on
//!   scheduled instruction streams, exercising the assembly parser, the
//!   static verifier and the executor;
//! - [`mutate::Layer::Machine`] — hostile `.machine` descriptions,
//!   exercising the spec parser, machine lint, and the scheduler/timing
//!   model's tolerance for degenerate configurations;
//! - [`mutate::Layer::Grid`] — hostile sweep grid specs, exercising the
//!   grid parser's axis bounds, range/list punctuation and cell-count cap,
//!   and the machines the surviving grids enumerate.
//!
//! Everything is driven by the workspace's shared [`rng::SplitMix64`], so a
//! campaign replays bit-identically from its seed: a finding's
//! `(seed, layer, index)` triple regenerates the exact mutant. Findings
//! are minimized (greedy line-wise ddmin under an invocation budget) and
//! written to a crash corpus that CI replays on every run.
//!
//! The crate is deliberately ignorant of the pipeline it tortures — the
//! real pipeline is plugged in via [`subject::Subject`] by the `supersym`
//! driver crate, keeping the dependency arrow acyclic.

#![warn(missing_docs)]

pub mod campaign;
pub mod mutate;
pub mod rng;
pub mod subject;

pub use campaign::{
    replay_corpus, run_campaign, write_corpus, CampaignConfig, CampaignReport, Finding,
    FindingKind, LayerReport,
};
pub use mutate::{mutate, Layer};
pub use rng::SplitMix64;
pub use subject::{Input, Stage, Subject, Verdict};
