//! The campaign RNG: a re-export of the workspace's shared
//! [`supersym_rng::SplitMix64`].
//!
//! The generator used to live here; it moved to `supersym-rng` so the
//! property tests and the rule-synthesis fingerprint vectors share the
//! exact stream. The re-export keeps every recorded campaign seed (and
//! every `(seed, layer, index)` finding triple) valid.

pub use supersym_rng::SplitMix64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_still_pinned() {
        // Campaign seeds predate the move to `supersym-rng`; this pins the
        // re-exported stream to the historical values.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
