//! The system-under-test interface.
//!
//! The torture harness is deliberately ignorant of the pipeline it
//! tortures: it fabricates inputs and classifies outcomes. The pipeline
//! itself is plugged in as a [`Subject`] (the `supersym` crate provides
//! the real one wired through `compile` + `simulate`), which keeps the
//! dependency arrow pointing the right way — the driver crate depends on
//! the harness, never the reverse.

use supersym_lang::ast::Module;

/// One input fed through the pipeline, by mutation layer.
#[derive(Debug, Clone)]
pub enum Input {
    /// Tital source text (may be arbitrarily malformed).
    Source(String),
    /// A checked-then-mutated AST, fed in past the parser.
    Ast(Module),
    /// Assembly text for a (possibly corrupted) scheduled instruction
    /// stream.
    Asm(String),
    /// A `.machine` description; the subject compiles and runs a fixed
    /// known-good workload under it.
    Machine(String),
    /// A sweep grid spec; the subject parses it, enumerates cells and
    /// exercises a bounded sample of the resulting machines.
    Grid(String),
}

impl Input {
    /// A stable textual form of the input (ASTs are printed back to
    /// source), used for corpus files and minimization.
    #[must_use]
    pub fn to_text(&self) -> String {
        match self {
            Input::Source(s) | Input::Asm(s) | Input::Machine(s) | Input::Grid(s) => s.clone(),
            Input::Ast(module) => supersym_lang::print_module(module),
        }
    }

    /// The corpus file extension for this input kind.
    #[must_use]
    pub fn extension(&self) -> &'static str {
        match self {
            Input::Source(_) | Input::Ast(_) => "tital",
            Input::Asm(_) => "s",
            Input::Machine(_) => "machine",
            Input::Grid(_) => "grid",
        }
    }
}

/// The pipeline stage that rejected an input. Mirrors the driver's
/// `PipelineError` taxonomy; the harness only needs the tag, not the
/// payload, to decide whether a rejection is routine or a bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Lexing/parsing of Tital source.
    Parse,
    /// Semantic analysis.
    Check,
    /// AST-to-IR lowering.
    Lower,
    /// Internal IR validation.
    Ir,
    /// `.machine` description parsing.
    Machine,
    /// Register split too small for the back end.
    Split,
    /// Static verification (machine lint, program lint, schedule check).
    Verify,
    /// Simulation.
    Sim,
}

impl Stage {
    /// Stable lowercase name (matches `PipelineError::stage`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Check => "check",
            Stage::Lower => "lower",
            Stage::Ir => "ir",
            Stage::Machine => "machine",
            Stage::Split => "regalloc",
            Stage::Verify => "verify",
            Stage::Sim => "sim",
        }
    }
}

/// What one pipeline run did with one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The pipeline accepted the input and completed a run; the
    /// fingerprint captures everything observable (code, results, cycle
    /// counts) so the driver can check run-to-run determinism.
    Ok {
        /// A digest of the observable output.
        fingerprint: String,
    },
    /// The pipeline rejected the input with a typed error.
    Rejected {
        /// The stage that rejected it.
        stage: Stage,
        /// The error's rendered message.
        message: String,
    },
}

/// The pipeline under torture. Implementations must uphold the harness
/// contract themselves wherever the harness cannot: all internal budgets
/// (simulation step limits, call-depth limits, memory sizes) must be
/// finite and deterministic, because a hang is the one failure
/// `catch_unwind` cannot convert into a report line.
pub trait Subject {
    /// Runs one input through the pipeline, end to end.
    fn run(&self, input: &Input) -> Verdict;
}
