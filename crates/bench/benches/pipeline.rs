//! Micro-benchmarks of the supersym pipeline itself: front end,
//! optimizer, code generator, scheduler, and the coupled
//! functional+timing simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use supersym::machine::presets;
use supersym::sim::{simulate, simulate_with_cache, CacheConfig, SimOptions};
use supersym::workloads::{linpack, stan};
use supersym::{compile, CompileOptions, OptLevel};

fn bench_compile(c: &mut Criterion) {
    let workload = linpack(16);
    let machine = presets::multititan();
    let mut group = c.benchmark_group("compile");
    for level in [OptLevel::O0, OptLevel::O2, OptLevel::O4] {
        group.bench_function(format!("linpack16_{level:?}"), |b| {
            let options = CompileOptions::new(level, &machine);
            b.iter(|| black_box(compile(&workload.source, &options).unwrap()));
        });
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let workload = linpack(16);
    let machine = presets::multititan();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    let instructions = simulate(&program, &machine, SimOptions::default())
        .unwrap()
        .instructions();

    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(instructions));
    for machine in [
        presets::base(),
        presets::ideal_superscalar(4),
        presets::superpipelined(4),
        presets::cray1(),
        presets::superscalar_with_class_conflicts(4),
    ] {
        group.bench_function(machine.name().replace([' ', '(', ')', ','], "_"), |b| {
            b.iter(|| {
                black_box(simulate(&program, &machine, SimOptions::default()).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let workload = stan(1);
    let machine = presets::cray1();
    // Unscheduled program as the scheduling input.
    let unscheduled = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O0, &machine),
    )
    .unwrap();
    c.bench_function("schedule_stan_for_cray1", |b| {
        b.iter(|| {
            let mut program = unscheduled.clone();
            supersym::codegen::schedule_program(&mut program, &machine);
            black_box(program)
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let workload = linpack(16);
    let machine = presets::base();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    c.bench_function("simulate_with_cache_linpack16", |b| {
        b.iter(|| {
            black_box(
                simulate_with_cache(
                    &program,
                    &machine,
                    SimOptions::default(),
                    CacheConfig::small_direct(),
                    CacheConfig::small_direct(),
                )
                .unwrap(),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_compile,
    bench_simulate,
    bench_scheduler,
    bench_cache
);
criterion_main!(benches);
