//! Micro-benchmarks of the supersym pipeline itself: front end,
//! optimizer, code generator, scheduler, and the coupled
//! functional+timing simulator. Plain `main` over `std::time::Instant`
//! (the container builds offline, so no criterion).

use std::hint::black_box;
use std::time::Instant;
use supersym::machine::presets;
use supersym::sim::{simulate, simulate_with_cache, simulate_with_sink, CacheConfig, SimOptions};
use supersym::trace::{IssueEvent, TraceSink};
use supersym::workloads::{linpack, stan};
use supersym::{compile, CompileOptions, OptLevel};

/// Times `f` over `iters` runs and prints mean wall-clock per run.
fn time(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean = start.elapsed() / iters;
    println!("{name:40} {mean:>12.2?}/iter  ({iters} iters)");
}

fn bench_compile() {
    let workload = linpack(16);
    let machine = presets::multititan();
    for level in [OptLevel::O0, OptLevel::O2, OptLevel::O4] {
        let options = CompileOptions::new(level, &machine);
        time(&format!("compile/linpack16_{level:?}"), 10, || {
            black_box(compile(&workload.source, &options).unwrap());
        });
    }
}

fn bench_simulate() {
    let workload = linpack(16);
    let machine = presets::multititan();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    let instructions = simulate(&program, &machine, SimOptions::default())
        .unwrap()
        .instructions();
    println!("simulate: {instructions} instructions per iteration");

    for machine in [
        presets::base(),
        presets::ideal_superscalar(4),
        presets::superpipelined(4),
        presets::cray1(),
        presets::superscalar_with_class_conflicts(4),
    ] {
        let name = machine.name().replace([' ', '(', ')', ','], "_");
        time(&format!("simulate/{name}"), 10, || {
            black_box(simulate(&program, &machine, SimOptions::default()).unwrap());
        });
    }
}

/// The cheapest possible live sink: one counter bump per issue event.
/// The gap between this row and the `no_sink` row is the cost of
/// materializing `IssueEvent`s; the gap between `no_sink` and plain
/// `simulate` must be noise (the no-sink path is a single branch).
struct CountingSink(u64);

impl TraceSink for CountingSink {
    fn issue(&mut self, _event: &IssueEvent) {
        self.0 += 1;
    }
}

fn bench_sink_overhead() {
    let workload = linpack(16);
    let machine = presets::multititan();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    time("simulate_sink/none", 10, || {
        black_box(simulate(&program, &machine, SimOptions::default()).unwrap());
    });
    let mut sink = CountingSink(0);
    time("simulate_sink/counting", 10, || {
        black_box(
            simulate_with_sink(&program, &machine, SimOptions::default(), &mut sink).unwrap(),
        );
    });
    println!("simulate_sink: {} issue events per iteration", sink.0 / 11);
}

fn bench_scheduler() {
    let workload = stan(1);
    let machine = presets::cray1();
    // Unscheduled program as the scheduling input.
    let unscheduled = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O0, &machine),
    )
    .unwrap();
    time("schedule_stan_for_cray1", 20, || {
        let mut program = unscheduled.clone();
        supersym::codegen::schedule_program(&mut program, &machine);
        black_box(program);
    });
}

fn bench_cache() {
    let workload = linpack(16);
    let machine = presets::base();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    time("simulate_with_cache_linpack16", 5, || {
        black_box(
            simulate_with_cache(
                &program,
                &machine,
                SimOptions::default(),
                CacheConfig::small_direct(),
                CacheConfig::small_direct(),
            )
            .unwrap(),
        );
    });
}

fn bench_oracles() {
    use supersym::analyze::{dependence_edges, scheduling_regions, OracleKind};
    use supersym::workloads::livermore;
    let workload = livermore(40, 1);
    let machine = presets::ideal_superscalar(8);
    // Naive unrolling shares one induction variable across copies, so the
    // two oracles genuinely disagree about the optimized regions' memory
    // edges; count those on the O4 output, then time scheduling itself.
    let optimized = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine)
            .with_unroll(supersym::opt::UnrollOptions::naive(4)),
    )
    .unwrap();
    let unscheduled = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O0, &machine)
            .with_unroll(supersym::opt::UnrollOptions::naive(4)),
    )
    .unwrap();
    for kind in [OracleKind::Conservative, OracleKind::Symbolic] {
        let oracle = kind.as_oracle();
        let edges: usize = optimized
            .functions()
            .iter()
            .flat_map(|func| {
                scheduling_regions(func)
                    .into_iter()
                    .map(|(lo, hi)| dependence_edges(&func.instrs()[lo..hi], oracle).len())
            })
            .sum();
        println!("oracle/{kind:?}: {edges} dependence edges on the O4 output");
        time(&format!("schedule_livermore_{kind:?}"), 20, || {
            let mut program = unscheduled.clone();
            supersym::codegen::schedule_program_with(&mut program, &machine, oracle);
            black_box(program);
        });
    }
}

fn main() {
    bench_compile();
    bench_simulate();
    bench_sink_overhead();
    bench_scheduler();
    bench_oracles();
    bench_cache();
}
