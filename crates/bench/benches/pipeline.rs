//! Micro-benchmarks of the supersym pipeline itself: front end,
//! optimizer, code generator, scheduler, and the coupled
//! functional+timing simulator. Plain `main` over `std::time::Instant`
//! (the container builds offline, so no criterion).
//!
//! With `--json` the per-row output is replaced by one JSON document
//! (schema `supersym.bench/v1`) — the format of the checked-in
//! `BENCH_NNNN.json` perf snapshots that track the pipeline's speed
//! trajectory per PR:
//!
//! ```text
//! cargo bench -p supersym-bench --bench pipeline -- --json > BENCH_NNNN.json
//! ```

use std::hint::black_box;
use std::time::Instant;
use supersym::machine::presets;
use supersym::sim::{simulate, simulate_with_cache, simulate_with_sink, CacheConfig, SimOptions};
use supersym::trace::{IssueEvent, JsonObject, JsonValue, TraceSink};
use supersym::workloads::{linpack, stan};
use supersym::{compile, CompileOptions, OptLevel};

/// Warmup runs before each timed row: populates instruction/data caches,
/// the allocator, and (for the simulator) the block timing cache, so the
/// measured iterations see steady state.
const WARMUP_ITERS: u32 = 3;

/// One timed row: name, mean, minimum, and iteration count.
struct Row {
    name: String,
    mean_ns: u64,
    min_ns: u64,
    iters: u32,
}

/// Collects timing rows and workload-size counters, printing rows as they
/// finish (table mode) or holding them for one JSON document (`--json`).
struct Harness {
    json: bool,
    rows: Vec<Row>,
    counters: Vec<(String, u64)>,
}

impl Harness {
    /// Times `f` over `iters` runs (after [`WARMUP_ITERS`] warmups) and
    /// records the mean and minimum wall-clock per run. The minimum is the
    /// stable statistic on a noisy box — it is what `bench-diff` compares
    /// — and is returned for derived throughput counters.
    fn time(&mut self, name: &str, iters: u32, mut f: impl FnMut()) -> u64 {
        for _ in 0..WARMUP_ITERS {
            f();
        }
        let mut total_ns = 0_u128;
        let mut min_ns = u128::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            f();
            let elapsed = start.elapsed().as_nanos();
            total_ns += elapsed;
            min_ns = min_ns.min(elapsed);
        }
        let mean_ns = u64::try_from(total_ns / u128::from(iters)).unwrap_or(u64::MAX);
        let min_ns = u64::try_from(min_ns).unwrap_or(u64::MAX);
        if !self.json {
            println!(
                "{name:40} mean {:>10}ns  min {:>10}ns  ({iters} iters)",
                mean_ns, min_ns
            );
        }
        self.rows.push(Row {
            name: name.to_string(),
            mean_ns,
            min_ns,
            iters,
        });
        min_ns
    }

    /// Records a named size counter (instructions per iteration,
    /// dependence-edge counts) that gives the timing rows their scale.
    fn count(&mut self, name: &str, value: u64, line: &str) {
        if !self.json {
            println!("{line}");
        }
        self.counters.push((name.to_string(), value));
    }

    /// The `supersym.bench/v1` snapshot document.
    fn json_document(&self) -> JsonValue {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                JsonObject::new()
                    .field("name", JsonValue::str(row.name.clone()))
                    .field("mean_ns", JsonValue::UInt(row.mean_ns))
                    .field("min_ns", JsonValue::UInt(row.min_ns))
                    .field("iters", JsonValue::UInt(u64::from(row.iters)))
                    .build()
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| {
                JsonObject::new()
                    .field("name", JsonValue::str(name.clone()))
                    .field("value", JsonValue::UInt(*value))
                    .build()
            })
            .collect();
        JsonObject::new()
            .field("schema", JsonValue::str("supersym.bench/v1"))
            .field("rows", JsonValue::Array(rows))
            .field("counters", JsonValue::Array(counters))
            .build()
    }
}

fn bench_compile(harness: &mut Harness) {
    let workload = linpack(16);
    let machine = presets::multititan();
    for level in [OptLevel::O0, OptLevel::O2, OptLevel::O4] {
        let options = CompileOptions::new(level, &machine);
        harness.time(&format!("compile/linpack16_{level:?}"), 10, || {
            black_box(compile(&workload.source, &options).unwrap());
        });
    }
    // The rule table's compile-time cost, and the cost of certifying
    // every pass of the same compile.
    let without_rules = CompileOptions::new(OptLevel::O4, &machine).with_rules(false);
    harness.time("compile/linpack16_O4_rules_off", 10, || {
        black_box(compile(&workload.source, &without_rules).unwrap());
    });
    let with_certify = CompileOptions::new(OptLevel::O4, &machine);
    harness.time("compile/linpack16_O4_certified", 10, || {
        black_box(supersym::compile_certified(&workload.source, &with_certify).unwrap());
    });
}

fn bench_simulate(harness: &mut Harness) {
    let workload = linpack(16);
    let machine = presets::multititan();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    let instructions = simulate(&program, &machine, SimOptions::default())
        .unwrap()
        .instructions();
    harness.count(
        "simulate/instructions_per_iter",
        instructions,
        &format!("simulate: {instructions} instructions per iteration"),
    );

    for machine in [
        presets::base(),
        presets::ideal_superscalar(4),
        presets::superpipelined(4),
        presets::cray1(),
        presets::superscalar_with_class_conflicts(4),
    ] {
        let name = machine.name().replace([' ', '(', ')', ','], "_");
        let min_ns = harness.time(&format!("simulate/{name}"), 10, || {
            black_box(simulate(&program, &machine, SimOptions::default()).unwrap());
        });
        // Simulator throughput in dynamic instructions per second, from
        // the row's minimum (the stable statistic).
        let ips = instructions
            .saturating_mul(1_000_000_000)
            .checked_div(min_ns)
            .unwrap_or(0);
        harness.count(
            &format!("simulate/{name}_ips"),
            ips,
            &format!("simulate/{name}: {ips} instructions/s"),
        );
    }
    // The exact model with the block timing cache disabled — the
    // before/after pair for the simulator-throughput table in
    // EXPERIMENTS.md.
    let exact = SimOptions {
        block_cache: false,
        ..SimOptions::default()
    };
    let machine = presets::base();
    harness.time("simulate/base_no_block_cache", 10, || {
        black_box(simulate(&program, &machine, exact).unwrap());
    });
}

/// The cheapest possible live sink: one counter bump per issue event.
/// The gap between this row and the `no_sink` row is the cost of
/// materializing `IssueEvent`s; the gap between `no_sink` and plain
/// `simulate` must be noise (the no-sink path is a single branch).
struct CountingSink(u64);

impl TraceSink for CountingSink {
    fn issue(&mut self, _event: &IssueEvent) {
        self.0 += 1;
    }
}

fn bench_sink_overhead(harness: &mut Harness) {
    let workload = linpack(16);
    let machine = presets::multititan();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    harness.time("simulate_sink/none", 10, || {
        black_box(simulate(&program, &machine, SimOptions::default()).unwrap());
    });
    let mut sink = CountingSink(0);
    harness.time("simulate_sink/counting", 10, || {
        black_box(
            simulate_with_sink(&program, &machine, SimOptions::default(), &mut sink).unwrap(),
        );
    });
    let events = sink.0 / 11;
    harness.count(
        "simulate_sink/issue_events_per_iter",
        events,
        &format!("simulate_sink: {events} issue events per iteration"),
    );
}

fn bench_scheduler(harness: &mut Harness) {
    let workload = stan(1);
    let machine = presets::cray1();
    // Unscheduled program as the scheduling input.
    let unscheduled = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O0, &machine),
    )
    .unwrap();
    harness.time("schedule_stan_for_cray1", 20, || {
        let mut program = unscheduled.clone();
        supersym::codegen::schedule_program(&mut program, &machine);
        black_box(program);
    });
}

fn bench_cache(harness: &mut Harness) {
    let workload = linpack(16);
    let machine = presets::base();
    let program = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine),
    )
    .unwrap();
    harness.time("simulate_with_cache_linpack16", 5, || {
        black_box(
            simulate_with_cache(
                &program,
                &machine,
                SimOptions::default(),
                CacheConfig::small_direct(),
                CacheConfig::small_direct(),
            )
            .unwrap(),
        );
    });
}

fn bench_oracles(harness: &mut Harness) {
    use supersym::analyze::{dependence_edges, scheduling_regions, OracleKind};
    use supersym::workloads::livermore;
    let workload = livermore(40, 1);
    let machine = presets::ideal_superscalar(8);
    // Naive unrolling shares one induction variable across copies, so the
    // two oracles genuinely disagree about the optimized regions' memory
    // edges; count those on the O4 output, then time scheduling itself.
    let optimized = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O4, &machine)
            .with_unroll(supersym::opt::UnrollOptions::naive(4)),
    )
    .unwrap();
    let unscheduled = compile(
        &workload.source,
        &CompileOptions::new(OptLevel::O0, &machine)
            .with_unroll(supersym::opt::UnrollOptions::naive(4)),
    )
    .unwrap();
    for kind in [OracleKind::Conservative, OracleKind::Symbolic] {
        let oracle = kind.as_loop_oracle();
        let edges: usize = optimized
            .functions()
            .iter()
            .flat_map(|func| {
                scheduling_regions(func)
                    .into_iter()
                    .map(|(lo, hi)| dependence_edges(&func.instrs()[lo..hi], oracle).len())
            })
            .sum();
        harness.count(
            &format!("oracle/{kind:?}_dependence_edges"),
            edges as u64,
            &format!("oracle/{kind:?}: {edges} dependence edges on the O4 output"),
        );
        harness.time(&format!("schedule_livermore_{kind:?}"), 20, || {
            let mut program = unscheduled.clone();
            supersym::codegen::schedule_program_with(&mut program, &machine, oracle);
            black_box(program);
        });
    }
}

/// The loop-analysis layer: SCEV construction over the source IR, machine-loop
/// statics (critical path, recurrence MinII, resource MinII), and the full
/// bound measurement (analysis + one timed simulation) per workload.
fn bench_bound(harness: &mut Harness) {
    use supersym::analyze::{function_scev, program_loop_statics, OracleKind};
    use supersym::experiments::measure_bound;
    use supersym::workloads::livermore;
    let workload = livermore(40, 1);
    let machine = presets::ideal_superscalar(2);
    let options = CompileOptions::new(OptLevel::O4, &machine);
    let ast = supersym::lang::parse(&workload.source).unwrap();
    let module = supersym::ir::lower(&ast).unwrap();
    harness.time("bound/scev_livermore", 20, || {
        for func in &module.funcs {
            black_box(function_scev(func));
        }
    });
    let program = compile(&workload.source, &options).unwrap();
    let oracle = OracleKind::Symbolic.as_loop_oracle();
    let statics = program_loop_statics(&program, &machine, oracle);
    harness.count(
        "bound/livermore_machine_loops",
        statics.len() as u64,
        &format!("bound: {} machine loops in livermore O4", statics.len()),
    );
    harness.time("bound/loop_statics_livermore", 20, || {
        black_box(program_loop_statics(&program, &machine, oracle));
    });
    harness.time("bound/measure_livermore", 10, || {
        black_box(measure_bound("livermore", &program, &machine));
    });
}

/// The sweep driver: front-compile amortization, the fan-out engine over a
/// 12-cell grid, and the cache-hit fast path (which skips scheduling and
/// simulation entirely).
fn bench_sweep(harness: &mut Harness) {
    use supersym::analyze::OracleKind;
    use supersym::machine::GridSpec;
    use supersym::sweep::{
        cache_from_records, run_sweep, PipelineCellRunner, ResultCache, SweepConfig, SweepPlan,
        DEFAULT_CELL_FUEL,
    };
    let workloads = vec![supersym::workloads::whet(1)];
    harness.time("sweep/front_compile_whet", 5, || {
        black_box(PipelineCellRunner::new(
            &workloads,
            OptLevel::O4,
            OracleKind::Symbolic,
            DEFAULT_CELL_FUEL,
            false,
        ));
    });
    let runner = PipelineCellRunner::new(
        &workloads,
        OptLevel::O4,
        OracleKind::Symbolic,
        DEFAULT_CELL_FUEL,
        false,
    );
    let grid = GridSpec::parse("issue=1,2,4 pipe=1,2 lat=unit,titan").unwrap();
    let plan = SweepPlan {
        workload_names: runner.names().to_vec(),
        fuel: DEFAULT_CELL_FUEL,
        identity: runner.identity(&grid.canonical(), OptLevel::O4, OracleKind::Symbolic),
        grid,
    };
    let config = SweepConfig {
        jobs: 2,
        ..SweepConfig::default()
    };
    harness.count(
        "sweep/records_per_iter",
        plan.record_count() as u64,
        &format!("sweep: {} records per iteration", plan.record_count()),
    );
    let mut first = None;
    harness.time("sweep/12cells_whet_2jobs", 5, || {
        first = Some(black_box(
            run_sweep(&plan, &runner, &config, None, &ResultCache::new(), None).unwrap(),
        ));
    });
    let cache = cache_from_records(first.as_ref().unwrap().records.iter());
    harness.time("sweep/12cells_whet_cached", 10, || {
        black_box(run_sweep(&plan, &runner, &config, None, &cache, None).unwrap());
    });
}

fn main() {
    let json = std::env::args().any(|arg| arg == "--json");
    let mut harness = Harness {
        json,
        rows: Vec::new(),
        counters: Vec::new(),
    };
    bench_compile(&mut harness);
    bench_simulate(&mut harness);
    bench_sink_overhead(&mut harness);
    bench_scheduler(&mut harness);
    bench_oracles(&mut harness);
    bench_bound(&mut harness);
    bench_cache(&mut harness);
    bench_sweep(&mut harness);
    if json {
        print!("{}", harness.json_document().pretty());
    }
}
