//! Regenerates every table and figure of Jouppi & Wall (ASPLOS 1989).
//!
//! Running `cargo bench --bench paper` first prints the full set of
//! regenerated tables/figures at the standard workload size — that printed
//! output is the reproduction artifact recorded in EXPERIMENTS.md — and
//! then times each experiment driver at the small size so regressions in
//! the simulation pipeline show up as timing changes. The harness is a
//! plain `main` over `std::time::Instant` (the container builds offline,
//! so no criterion).

use std::hint::black_box;
use std::time::Instant;
use supersym::experiments as exp;
use supersym::workloads::Size;

/// Prints the full paper reproduction (standard size). Runs once.
fn print_reproduction() {
    let size = Size::Standard;
    println!("==========================================================");
    println!(" supersym: reproduction of Jouppi & Wall, ASPLOS 1989");
    println!("==========================================================\n");
    println!("{}", exp::fig1_1());
    println!("{}", exp::fig2_diagrams());
    println!("{}", exp::table2_1(size));
    println!("{}", exp::fig4_1(size));
    println!("{}", exp::fig4_2());
    println!("{}", exp::fig4_3());
    println!("{}", exp::fig4_4(size));
    println!("{}", exp::fig4_5(size));
    println!("{}", exp::fig4_6(size));
    println!("{}", exp::fig4_7());
    println!("{}", exp::fig4_8(size));
    println!("{}", exp::table5_1(size));
    println!("{}", exp::sec5_1());
    println!("{}", exp::headline(size));
    println!("{}", exp::ablation_class_conflicts(size));
    println!("{}", exp::ablation_branch_prediction(size));
    println!("{}", exp::grid_measurement(size));
    println!("{}", exp::unrolling_icache(size));
    println!("{}", exp::vector_equivalence());
    println!("{}", exp::complexity_tax(size));
    println!("{}", exp::limit_study(size));
}

/// Times `f` over `iters` runs and prints mean wall-clock per run.
fn time(name: &str, iters: u32, mut f: impl FnMut()) {
    // One warm-up run so first-touch costs don't pollute the mean.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean = start.elapsed() / iters;
    println!("{name:40} {mean:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    print_reproduction();

    println!("--- analytic experiments ---");
    time("fig1_1", 20, || {
        black_box(exp::fig1_1());
    });
    time("fig4_2", 20, || {
        black_box(exp::fig4_2());
    });
    time("fig4_3", 20, || {
        black_box(exp::fig4_3());
    });
    time("fig4_7", 20, || {
        black_box(exp::fig4_7());
    });
    time("sec5_1", 20, || {
        black_box(exp::sec5_1());
    });
    time("fig2_diagrams", 20, || {
        black_box(exp::fig2_diagrams());
    });

    // Simulation-backed experiments: representative drivers at the small
    // size with few samples (each sample compiles and simulates the whole
    // suite; the full set regenerates above and via reproduce_all).
    println!("--- simulation-backed experiments (small size) ---");
    time("table2_1", 3, || {
        black_box(exp::table2_1(Size::Small));
    });
    time("fig4_6", 3, || {
        black_box(exp::fig4_6(Size::Small));
    });
    time("headline", 3, || {
        black_box(exp::headline(Size::Small));
    });
    time("vector_equivalence", 3, || {
        black_box(exp::vector_equivalence());
    });
}
