//! Regenerates every table and figure of Jouppi & Wall (ASPLOS 1989).
//!
//! Running `cargo bench --bench paper` first prints the full set of
//! regenerated tables/figures at the standard workload size — that printed
//! output is the reproduction artifact recorded in EXPERIMENTS.md — and
//! then Criterion-times each experiment driver at the small size so
//! regressions in the simulation pipeline show up as timing changes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use supersym::experiments as exp;
use supersym::workloads::Size;

/// Prints the full paper reproduction (standard size). Runs once.
fn print_reproduction() {
    let size = Size::Standard;
    println!("==========================================================");
    println!(" supersym: reproduction of Jouppi & Wall, ASPLOS 1989");
    println!("==========================================================\n");
    println!("{}", exp::fig1_1());
    println!("{}", exp::fig2_diagrams());
    println!("{}", exp::table2_1(size));
    println!("{}", exp::fig4_1(size));
    println!("{}", exp::fig4_2());
    println!("{}", exp::fig4_3());
    println!("{}", exp::fig4_4(size));
    println!("{}", exp::fig4_5(size));
    println!("{}", exp::fig4_6(size));
    println!("{}", exp::fig4_7());
    println!("{}", exp::fig4_8(size));
    println!("{}", exp::table5_1(size));
    println!("{}", exp::sec5_1());
    println!("{}", exp::headline(size));
    println!("{}", exp::ablation_class_conflicts(size));
    println!("{}", exp::ablation_branch_prediction(size));
    println!("{}", exp::grid_measurement(size));
    println!("{}", exp::unrolling_icache(size));
    println!("{}", exp::vector_equivalence());
    println!("{}", exp::complexity_tax(size));
    println!("{}", exp::limit_study(size));
}

fn bench_figures(c: &mut Criterion) {
    print_reproduction();

    // Cheap analytic experiments: time them directly.
    let mut group = c.benchmark_group("analytic");
    group.bench_function("fig1_1", |b| b.iter(|| black_box(exp::fig1_1())));
    group.bench_function("fig4_2", |b| b.iter(|| black_box(exp::fig4_2())));
    group.bench_function("fig4_3", |b| b.iter(|| black_box(exp::fig4_3())));
    group.bench_function("fig4_7", |b| b.iter(|| black_box(exp::fig4_7())));
    group.bench_function("sec5_1", |b| b.iter(|| black_box(exp::sec5_1())));
    group.bench_function("fig2_diagrams", |b| {
        b.iter(|| black_box(exp::fig2_diagrams()))
    });
    group.finish();

    // Simulation-backed experiments: time representative drivers at the
    // small size with few samples (each sample compiles and simulates the
    // whole suite; the full set regenerates above and via reproduce_all).
    let mut group = c.benchmark_group("experiments_small");
    group.sample_size(10);
    group.bench_function("table2_1", |b| {
        b.iter(|| black_box(exp::table2_1(Size::Small)))
    });
    group.bench_function("fig4_6", |b| b.iter(|| black_box(exp::fig4_6(Size::Small))));
    group.bench_function("headline", |b| {
        b.iter(|| black_box(exp::headline(Size::Small)))
    });
    group.bench_function("vector_equivalence", |b| {
        b.iter(|| black_box(exp::vector_equivalence()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
