//! # supersym-bench
//!
//! Bench harness for the supersym reproduction. The real content lives in
//! `benches/`:
//!
//! * `benches/paper.rs` — regenerates **every table and figure** of the
//!   paper at the standard workload size (the printed output is the
//!   reproduction artifact; see EXPERIMENTS.md) and Criterion-times each
//!   experiment driver at the small size.
//! * `benches/pipeline.rs` — Criterion micro-benchmarks of the system
//!   itself: compilation throughput, functional+timing simulation rate,
//!   scheduling, and cache simulation.
