//! IR lints backed by the dataflow analyses.
//!
//! Three checks, each a thin consumer of an engine fixed point:
//!
//! * **`dead-store`** (warning) — a variable write no execution can ever
//!   observe, from backward variable liveness;
//! * **`oob-load` / `oob-store`** (error) — an array access whose index
//!   range is provably outside the array on every execution reaching it,
//!   from value-range analysis;
//! * **`const-branch`** (warning) — a two-way branch whose condition is
//!   the same constant on every execution, from conditional constant
//!   propagation.
//!
//! Unreachable code is skipped (a fact about an unreached point is
//! vacuous), which also keeps the lints quiet about branches already
//! proven dead.

use crate::consts::{ConstProp, ConstState};
use crate::engine::{solve, Analysis, Direction, Solution};
use crate::lattice::Interval;
use crate::range::Ranges;
use std::collections::BTreeSet;
use supersym_ir::{BlockId, Function, GlobalId, GlobalKind, Inst, Module, Terminator, VarRef};
use supersym_isa::Diagnostic;

/// Runs every lint over every function of `module`.
#[must_use]
pub fn lint_module(module: &Module) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for func in &module.funcs {
        // Conditional constant propagation provides the sharpest
        // reachability (it prunes never-taken branch edges); every lint
        // stays silent about blocks it proves dead.
        let consts = solve(&ConstProp::new(module), func);
        lint_dead_stores(module, func, &consts, &mut out);
        lint_out_of_bounds(module, func, &consts, &mut out);
        lint_const_branches(module, func, &consts, &mut out);
    }
    out
}

fn var_name<'a>(module: &'a Module, func: &'a Function, var: VarRef) -> &'a str {
    match var {
        VarRef::Global(g) => &module.globals[g.0 as usize].name,
        VarRef::Local(l) => &func.vars[l.0 as usize].name,
    }
}

/// Backward may-liveness of variables: which variables might still be read
/// before being overwritten? Globals are live at every function exit (the
/// caller, or the program's final state, observes them) and calls read
/// every global (the callee might).
struct VarLiveness<'m> {
    module: &'m Module,
}

impl VarLiveness<'_> {
    /// One backward step; `state` is the liveness *after* the instruction.
    fn step(&self, state: &mut BTreeSet<VarRef>, inst: &Inst) {
        match inst {
            Inst::WriteVar { var, .. } => {
                state.remove(var);
            }
            Inst::ReadVar { var, .. } => {
                state.insert(*var);
            }
            Inst::Call { .. } => {
                for g in 0..self.module.globals.len() {
                    state.insert(VarRef::Global(GlobalId(g as u32)));
                }
            }
            _ => {}
        }
    }
}

impl Analysis for VarLiveness<'_> {
    type State = BTreeSet<VarRef>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, _func: &Function) -> BTreeSet<VarRef> {
        (0..self.module.globals.len())
            .map(|g| VarRef::Global(GlobalId(g as u32)))
            .collect()
    }

    fn bottom(&self, _func: &Function) -> BTreeSet<VarRef> {
        BTreeSet::new()
    }

    fn transfer(&self, func: &Function, block: BlockId, state: &mut BTreeSet<VarRef>) {
        for inst in func.blocks[block.index()].insts.iter().rev() {
            self.step(state, inst);
        }
    }

    fn join(&self, into: &mut BTreeSet<VarRef>, from: &BTreeSet<VarRef>) -> bool {
        let before = into.len();
        into.extend(from.iter().copied());
        before != into.len()
    }
}

fn lint_dead_stores(
    module: &Module,
    func: &Function,
    consts: &Solution<ConstState>,
    out: &mut Vec<Diagnostic>,
) {
    let analysis = VarLiveness { module };
    let solution = solve(&analysis, func);
    for (block_index, block) in func.blocks.iter().enumerate() {
        let block_id = BlockId(block_index as u32);
        if !consts.is_reached(block_id) {
            continue; // forward-unreachable: nothing here ever runs
        }
        if !solution.is_reached(block_id) {
            continue; // cannot reach an exit; liveness facts are vacuous
        }
        let mut live = solution.exit_of(block_id).clone();
        for (index, inst) in block.insts.iter().enumerate().rev() {
            if let Inst::WriteVar { var, .. } = inst {
                if !live.contains(var) {
                    out.push(
                        Diagnostic::warning(
                            "dead-store",
                            format!(
                                "{block_id}: store to `{}` is never read",
                                var_name(module, func, *var)
                            ),
                        )
                        .in_function(&func.name)
                        .at_instr(index),
                    );
                }
            }
            analysis.step(&mut live, inst);
        }
    }
}

fn lint_out_of_bounds(
    module: &Module,
    func: &Function,
    consts: &Solution<ConstState>,
    out: &mut Vec<Diagnostic>,
) {
    let analysis = Ranges::new(module);
    let solution = solve(&analysis, func);
    for block_index in 0..func.blocks.len() {
        let block_id = BlockId(block_index as u32);
        // The range analysis does not prune branch edges; borrow the
        // sharper reachability from constant propagation.
        if !consts.is_reached(block_id) || !solution.is_reached(block_id) {
            continue;
        }
        let Some(vars_in) = solution.entry_of(block_id).vars.as_ref() else {
            continue;
        };
        analysis.walk_block(func, block_id, vars_in, |index, inst, vregs| {
            let (arr, index_vreg, code) = match inst {
                Inst::ReadElem { arr, index, .. } => (arr, index, "oob-load"),
                Inst::WriteElem { arr, index, .. } => (arr, index, "oob-store"),
                _ => return,
            };
            let GlobalKind::Array { len } = module.globals[arr.0 as usize].kind else {
                return;
            };
            let range = vregs.get(index_vreg).copied().unwrap_or(Interval::FULL);
            if range.disjoint_from(0, len as i64 - 1) {
                out.push(
                    Diagnostic::error(
                        code,
                        format!(
                            "{block_id}: index of `{}` is always outside 0..{len} \
                             (proven range [{}, {}])",
                            module.globals[arr.0 as usize].name, range.lo, range.hi
                        ),
                    )
                    .in_function(&func.name)
                    .at_instr(index),
                );
            }
        });
    }
}

fn lint_const_branches(
    _module: &Module,
    func: &Function,
    solution: &Solution<ConstState>,
    out: &mut Vec<Diagnostic>,
) {
    for (block_index, block) in func.blocks.iter().enumerate() {
        let block_id = BlockId(block_index as u32);
        if !solution.is_reached(block_id) {
            continue;
        }
        let Terminator::Branch {
            then_bb, else_bb, ..
        } = &block.term
        else {
            continue;
        };
        if then_bb == else_bb {
            continue; // degenerate branch, nothing to decide
        }
        if let Some(verdict) = solution.exit_of(block_id).branch {
            out.push(
                Diagnostic::warning(
                    "const-branch",
                    format!(
                        "{block_id}: branch condition is always {verdict}; \
                         the {} edge is dead",
                        if verdict { "else" } else { "then" }
                    ),
                )
                .in_function(&func.name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_ir::{Block, GlobalInfo, IntBinOp, LocalId, VReg, VarInfo};
    use supersym_lang::ast::Ty;

    fn local(i: u32) -> VarRef {
        VarRef::Local(LocalId(i))
    }

    fn int_var(name: &str) -> VarInfo {
        VarInfo {
            name: name.into(),
            ty: Ty::Int,
            param_index: None,
        }
    }

    fn one_block(module_globals: Vec<GlobalInfo>, vars: Vec<VarInfo>, insts: Vec<Inst>) -> Module {
        let n_vregs = insts.iter().filter_map(Inst::dst).map(|v| v.0 + 1).max();
        Module {
            globals: module_globals,
            funcs: vec![Function {
                name: "f".into(),
                vars,
                ret: None,
                blocks: vec![Block {
                    insts,
                    term: Terminator::Return(None),
                }],
                vreg_tys: vec![Ty::Int; n_vregs.unwrap_or(0) as usize],
            }],
            entry: 0,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(Diagnostic::code).collect()
    }

    #[test]
    fn dead_local_store_flagged() {
        // x = 1; x = 2; (never read)
        let module = one_block(
            vec![],
            vec![int_var("x")],
            vec![
                Inst::ConstInt {
                    dst: VReg(0),
                    value: 1,
                },
                Inst::WriteVar {
                    var: local(0),
                    src: VReg(0),
                },
                Inst::ConstInt {
                    dst: VReg(1),
                    value: 2,
                },
                Inst::WriteVar {
                    var: local(0),
                    src: VReg(1),
                },
            ],
        );
        let diags = lint_module(&module);
        assert_eq!(codes(&diags), vec!["dead-store", "dead-store"]);
        assert!(diags[0].to_string().contains("`x`"), "{}", diags[0]);
    }

    #[test]
    fn read_and_global_stores_are_live() {
        let g = GlobalInfo {
            name: "g".into(),
            ty: Ty::Int,
            kind: supersym_ir::GlobalKind::Scalar { init: 0.0 },
        };
        // x = 1; y = x (x is read); g = y (globals live at exit)
        let module = one_block(
            vec![g],
            vec![int_var("x"), int_var("y")],
            vec![
                Inst::ConstInt {
                    dst: VReg(0),
                    value: 1,
                },
                Inst::WriteVar {
                    var: local(0),
                    src: VReg(0),
                },
                Inst::ReadVar {
                    dst: VReg(1),
                    var: local(0),
                },
                Inst::WriteVar {
                    var: local(1),
                    src: VReg(1),
                },
                Inst::ReadVar {
                    dst: VReg(2),
                    var: local(1),
                },
                Inst::WriteVar {
                    var: VarRef::Global(GlobalId(0)),
                    src: VReg(2),
                },
            ],
        );
        assert!(lint_module(&module).is_empty());
    }

    #[test]
    fn overwritten_global_store_flagged_but_call_reads() {
        let g = GlobalInfo {
            name: "g".into(),
            ty: Ty::Int,
            kind: supersym_ir::GlobalKind::Scalar { init: 0.0 },
        };
        // g = 1; g = 2: first store dead. With a call in between it is not.
        let store = |vreg| Inst::WriteVar {
            var: VarRef::Global(GlobalId(0)),
            src: VReg(vreg),
        };
        let konst = |vreg, value| Inst::ConstInt {
            dst: VReg(vreg),
            value,
        };
        let dead = one_block(
            vec![g.clone()],
            vec![],
            vec![konst(0, 1), store(0), konst(1, 2), store(1)],
        );
        assert_eq!(codes(&lint_module(&dead)), vec!["dead-store"]);

        let live = one_block(
            vec![g],
            vec![],
            vec![
                konst(0, 1),
                store(0),
                Inst::Call {
                    dst: None,
                    callee: 0,
                    args: vec![],
                },
                konst(1, 2),
                store(1),
            ],
        );
        assert!(
            lint_module(&live).is_empty(),
            "the callee may read `g` before the overwrite"
        );
    }

    #[test]
    fn provable_out_of_bounds_flagged() {
        let arr = GlobalInfo {
            name: "a".into(),
            ty: Ty::Int,
            kind: GlobalKind::Array { len: 8 },
        };
        let access = |value| {
            vec![
                Inst::ConstInt {
                    dst: VReg(0),
                    value,
                },
                Inst::ConstInt {
                    dst: VReg(1),
                    value: 7,
                },
                Inst::WriteElem {
                    arr: GlobalId(0),
                    index: VReg(0),
                    src: VReg(1),
                    origin: None,
                },
            ]
        };
        let oob = one_block(vec![arr.clone()], vec![], access(8));
        let diags = lint_module(&oob);
        assert_eq!(codes(&diags), vec!["oob-store"]);
        assert!(diags[0].is_error());
        assert!(
            diags[0].to_string().contains("outside 0..8"),
            "{}",
            diags[0]
        );

        let inside = one_block(vec![arr.clone()], vec![], access(7));
        assert!(lint_module(&inside).is_empty());

        // A masked index is provably inside.
        let masked = one_block(
            vec![arr],
            vec![int_var("x")],
            vec![
                Inst::ReadVar {
                    dst: VReg(0),
                    var: local(0),
                },
                Inst::ConstInt {
                    dst: VReg(1),
                    value: 7,
                },
                Inst::IntBin {
                    op: IntBinOp::And,
                    dst: VReg(2),
                    lhs: VReg(0),
                    rhs: VReg(1),
                },
                Inst::ReadElem {
                    dst: VReg(3),
                    arr: GlobalId(0),
                    index: VReg(2),
                    origin: None,
                },
            ],
        );
        assert!(lint_module(&masked).is_empty());
    }

    #[test]
    fn constant_branch_flagged_and_dead_side_skipped() {
        // bb0: branch on 1 -> bb1 / bb2; bb2 contains an OOB store that
        // must stay silent (unreachable).
        let arr = GlobalInfo {
            name: "a".into(),
            ty: Ty::Int,
            kind: GlobalKind::Array { len: 4 },
        };
        let module = Module {
            globals: vec![arr],
            funcs: vec![Function {
                name: "f".into(),
                vars: vec![],
                ret: None,
                blocks: vec![
                    Block {
                        insts: vec![Inst::ConstInt {
                            dst: VReg(0),
                            value: 1,
                        }],
                        term: Terminator::Branch {
                            cond: VReg(0),
                            then_bb: BlockId(1),
                            else_bb: BlockId(2),
                        },
                    },
                    Block::empty(Terminator::Return(None)),
                    Block {
                        insts: vec![
                            Inst::ConstInt {
                                dst: VReg(1),
                                value: 100,
                            },
                            Inst::ConstInt {
                                dst: VReg(2),
                                value: 0,
                            },
                            Inst::WriteElem {
                                arr: GlobalId(0),
                                index: VReg(1),
                                src: VReg(2),
                                origin: None,
                            },
                        ],
                        term: Terminator::Return(None),
                    },
                ],
                vreg_tys: vec![Ty::Int; 3],
            }],
            entry: 0,
        };
        let diags = lint_module(&module);
        assert_eq!(codes(&diags), vec!["const-branch"]);
        assert!(diags[0].to_string().contains("always true"), "{}", diags[0]);
    }

    #[test]
    fn varying_branch_not_flagged() {
        let module = Module {
            globals: vec![],
            funcs: vec![Function {
                name: "f".into(),
                vars: vec![int_var("x")],
                ret: None,
                blocks: vec![
                    Block {
                        insts: vec![Inst::ReadVar {
                            dst: VReg(0),
                            var: local(0),
                        }],
                        term: Terminator::Branch {
                            cond: VReg(0),
                            then_bb: BlockId(1),
                            else_bb: BlockId(1),
                        },
                    },
                    Block::empty(Terminator::Return(None)),
                ],
                vreg_tys: vec![Ty::Int],
            }],
            entry: 0,
        };
        assert!(lint_module(&module).is_empty());
    }
}
