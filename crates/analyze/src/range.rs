//! Value-range analysis of address arithmetic.
//!
//! Bounds every integer variable by an [`Interval`] at each block
//! boundary, following the same transfer structure as constant propagation
//! but over an infinite-height lattice: the join widens once a per-solve
//! budget of changing joins is spent, so loop counters settle at
//! `[init, MAX]`-shaped ranges instead of climbing forever. Masking idioms
//! (`x & 15`) keep their precision regardless of widening because the
//! bound comes from the transfer function, not the join.
//!
//! The out-of-bounds lint uses these intervals: an array access whose
//! index range is provably disjoint from `[0, len)` will fault on every
//! execution that reaches it.

use crate::consts::eval_int;
use crate::engine::{Analysis, Direction};
use crate::lattice::{Interval, JoinSemiLattice};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use supersym_ir::{BlockId, Function, Inst, IntBinOp, Module, VReg, VarRef};
use supersym_lang::ast::Ty;

/// The range state at a block boundary: interval bounds for integer
/// variables. `vars: None` means unreached; an absent variable is
/// unbounded ([`Interval::FULL`]), so the map stores only useful facts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeState {
    /// Bounded integer variables, `None` when unreached.
    pub vars: Option<BTreeMap<VarRef, Interval>>,
}

/// The value-range analysis (forward, widening join).
#[derive(Debug)]
pub struct Ranges<'m> {
    module: &'m Module,
    /// Remaining changing-joins before widening kicks in; refilled at
    /// [`Analysis::boundary`], i.e. once per solve.
    fuel: Cell<usize>,
}

impl<'m> Ranges<'m> {
    /// Creates the analysis for functions of `module`.
    #[must_use]
    pub fn new(module: &'m Module) -> Self {
        Ranges {
            module,
            fuel: Cell::new(0),
        }
    }

    fn var_ty(&self, func: &Function, var: VarRef) -> Ty {
        match var {
            VarRef::Global(g) => self.module.globals[g.0 as usize].ty,
            VarRef::Local(l) => func.vars[l.0 as usize].ty,
        }
    }

    /// Walks `block` from `vars_in`, calling `visit(index, inst, vregs)`
    /// before applying each instruction's effect (`vregs` holds the
    /// intervals of previously-defined vregs; absent means unbounded).
    pub fn walk_block(
        &self,
        func: &Function,
        block: BlockId,
        vars_in: &BTreeMap<VarRef, Interval>,
        mut visit: impl FnMut(usize, &Inst, &HashMap<VReg, Interval>),
    ) -> BTreeMap<VarRef, Interval> {
        let mut vars = vars_in.clone();
        let mut vregs: HashMap<VReg, Interval> = HashMap::new();
        for (index, inst) in func.blocks[block.index()].insts.iter().enumerate() {
            visit(index, inst, &vregs);
            match inst {
                Inst::ConstInt { dst, value } => {
                    vregs.insert(*dst, Interval::constant(*value));
                }
                Inst::IntBin { op, dst, lhs, rhs } => {
                    let a = vregs.get(lhs).copied().unwrap_or(Interval::FULL);
                    let b = vregs.get(rhs).copied().unwrap_or(Interval::FULL);
                    let out = eval_range(*op, &a, &b);
                    if out != Interval::FULL {
                        vregs.insert(*dst, out);
                    }
                }
                Inst::FloatCmp { dst, .. } => {
                    vregs.insert(*dst, Interval::new(0, 1));
                }
                Inst::ReadVar { dst, var } => {
                    if let Some(&iv) = vars.get(var) {
                        vregs.insert(*dst, iv);
                    }
                }
                Inst::WriteVar { var, src } => match vregs.get(src) {
                    Some(&iv) if self.var_ty(func, *var) == Ty::Int => {
                        vars.insert(*var, iv);
                    }
                    _ => {
                        vars.remove(var);
                    }
                },
                Inst::Call { .. } => {
                    vars.retain(|var, _| matches!(var, VarRef::Local(_)));
                }
                Inst::ConstFloat { .. }
                | Inst::FloatBin { .. }
                | Inst::Cast { .. }
                | Inst::ReadElem { .. }
                | Inst::WriteElem { .. } => {}
            }
        }
        vars
    }
}

/// Abstract interpretation of one integer operation over intervals,
/// conservative with respect to [`eval_int`]'s wrapping semantics.
#[must_use]
pub fn eval_range(op: IntBinOp, a: &Interval, b: &Interval) -> Interval {
    // Singleton inputs evaluate exactly — this keeps odd cases (negative
    // shifts, division) correct by construction.
    if let (Some(x), Some(y)) = (a.as_constant(), b.as_constant()) {
        return Interval::constant(eval_int(op, x, y));
    }
    match op {
        IntBinOp::Add => a.add(b),
        IntBinOp::Sub => a.sub(b),
        IntBinOp::Mul => a.mul(b),
        IntBinOp::And => a.and_mask(b),
        IntBinOp::Or | IntBinOp::Xor => a.or_xor(b),
        IntBinOp::Rem => match b.as_constant() {
            Some(divisor) if divisor > 0 => a.rem_const(divisor),
            _ => Interval::FULL,
        },
        IntBinOp::Div => match b.as_constant() {
            // Non-negative dividends divided by a positive constant shrink.
            Some(divisor) if divisor > 0 && a.lo >= 0 => {
                Interval::new(a.lo / divisor, a.hi / divisor)
            }
            _ => Interval::FULL,
        },
        IntBinOp::Cmp(_) => Interval::new(0, 1),
        IntBinOp::Shl | IntBinOp::Shr => Interval::FULL,
    }
}

impl Analysis for Ranges<'_> {
    type State = RangeState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, func: &Function) -> RangeState {
        // Refill the widening budget for this solve: a few rounds of
        // precise joins, then widen.
        self.fuel.set(8 * func.blocks.len().max(4));
        RangeState {
            vars: Some(BTreeMap::new()),
        }
    }

    fn bottom(&self, _func: &Function) -> RangeState {
        RangeState::default()
    }

    fn transfer(&self, func: &Function, block: BlockId, state: &mut RangeState) {
        let Some(vars) = state.vars.take() else {
            return;
        };
        state.vars = Some(self.walk_block(func, block, &vars, |_, _, _| {}));
    }

    fn join(&self, into: &mut RangeState, from: &RangeState) -> bool {
        let Some(from_vars) = &from.vars else {
            return false;
        };
        match &mut into.vars {
            None => {
                into.vars = Some(from_vars.clone());
                true
            }
            Some(into_vars) => {
                let widening = self.fuel.get() == 0;
                let mut changed = false;
                into_vars.retain(|var, iv| {
                    match from_vars.get(var) {
                        Some(other) => {
                            let previous = *iv;
                            if iv.join(other) {
                                changed = true;
                                if widening {
                                    *iv = iv.widen(&previous);
                                }
                            }
                            *iv != Interval::FULL
                        }
                        None => {
                            // Joined with unbounded: the fact dissolves.
                            changed = true;
                            false
                        }
                    }
                });
                if changed && !widening {
                    self.fuel.set(self.fuel.get() - 1);
                }
                changed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::solve;
    use supersym_ir::{Block, CmpOp, LocalId, Terminator, VarInfo};

    fn local(i: u32) -> VarRef {
        VarRef::Local(LocalId(i))
    }

    /// for (i = 0; i < 8; i = i + 1) { } — as blocks:
    /// bb0: i = 0; jump bb1. bb1: c = i < 8; branch bb2/bb3.
    /// bb2: i = i + 1; jump bb1. bb3: return.
    fn counting_loop() -> Function {
        Function {
            name: "f".into(),
            vars: vec![VarInfo {
                name: "i".into(),
                ty: Ty::Int,
                param_index: None,
            }],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::ConstInt {
                            dst: VReg(0),
                            value: 0,
                        },
                        Inst::WriteVar {
                            var: local(0),
                            src: VReg(0),
                        },
                    ],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block {
                    insts: vec![
                        Inst::ReadVar {
                            dst: VReg(1),
                            var: local(0),
                        },
                        Inst::ConstInt {
                            dst: VReg(2),
                            value: 8,
                        },
                        Inst::IntBin {
                            op: IntBinOp::Cmp(CmpOp::Lt),
                            dst: VReg(3),
                            lhs: VReg(1),
                            rhs: VReg(2),
                        },
                    ],
                    term: Terminator::Branch {
                        cond: VReg(3),
                        then_bb: BlockId(2),
                        else_bb: BlockId(3),
                    },
                },
                Block {
                    insts: vec![
                        Inst::ReadVar {
                            dst: VReg(4),
                            var: local(0),
                        },
                        Inst::ConstInt {
                            dst: VReg(5),
                            value: 1,
                        },
                        Inst::IntBin {
                            op: IntBinOp::Add,
                            dst: VReg(6),
                            lhs: VReg(4),
                            rhs: VReg(5),
                        },
                        Inst::WriteVar {
                            var: local(0),
                            src: VReg(6),
                        },
                    ],
                    term: Terminator::Jump(BlockId(1)),
                },
                Block::empty(Terminator::Return(None)),
            ],
            vreg_tys: vec![Ty::Int; 7],
        }
    }

    #[test]
    fn loop_counter_widens_to_termination() {
        let module = Module {
            globals: vec![],
            funcs: vec![counting_loop()],
            entry: 0,
        };
        let analysis = Ranges::new(&module);
        let solution = solve(&analysis, &module.funcs[0]);
        // Widening forces the climbing counter to a fixed point fast
        // instead of stepping the upper bound once per iteration. Under
        // wrapping semantics the widened `[0, MAX]` then loses its floor
        // through `i + 1` (the concrete successor set wraps), so the
        // header fact soundly dissolves to unbounded rather than keeping
        // a floor the machine does not guarantee.
        let header = solution.entry_of(BlockId(1)).vars.as_ref().unwrap();
        let i = header.get(&local(0)).copied().unwrap_or(Interval::FULL);
        assert_eq!(i, Interval::FULL, "no unsound floor: {i:?}");
        assert!(
            solution.iterations < 100,
            "terminated well under the engine budget: {}",
            solution.iterations
        );
        // Straight-line precision is unaffected: the init block still
        // proves i = 0 on its exit edge.
        let init = solution.exit_of(BlockId(0)).vars.as_ref().unwrap();
        assert_eq!(init[&local(0)], Interval::constant(0));
    }

    #[test]
    fn mask_bounds_index() {
        // x = read global (unbounded); i = x & 15.
        let module = Module {
            globals: vec![],
            funcs: vec![Function {
                name: "f".into(),
                vars: vec![
                    VarInfo {
                        name: "x".into(),
                        ty: Ty::Int,
                        param_index: Some(0),
                    },
                    VarInfo {
                        name: "i".into(),
                        ty: Ty::Int,
                        param_index: None,
                    },
                ],
                ret: None,
                blocks: vec![Block {
                    insts: vec![
                        Inst::ReadVar {
                            dst: VReg(0),
                            var: local(0),
                        },
                        Inst::ConstInt {
                            dst: VReg(1),
                            value: 15,
                        },
                        Inst::IntBin {
                            op: IntBinOp::And,
                            dst: VReg(2),
                            lhs: VReg(0),
                            rhs: VReg(1),
                        },
                        Inst::WriteVar {
                            var: local(1),
                            src: VReg(2),
                        },
                    ],
                    term: Terminator::Return(None),
                }],
                vreg_tys: vec![Ty::Int; 3],
            }],
            entry: 0,
        };
        let analysis = Ranges::new(&module);
        let solution = solve(&analysis, &module.funcs[0]);
        let exit = solution.exit_of(BlockId(0)).vars.as_ref().unwrap();
        assert_eq!(exit[&local(1)], Interval::new(0, 15));
    }

    #[test]
    fn exact_singleton_fold() {
        assert_eq!(
            eval_range(
                IntBinOp::Div,
                &Interval::constant(7),
                &Interval::constant(0)
            ),
            Interval::constant(0),
            "singletons use the simulator's exact semantics"
        );
    }
}
