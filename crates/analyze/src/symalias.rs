//! IR-level origin sharpening for memory disambiguation.
//!
//! Array accesses carry an optional [`IndexOrigin`] annotation — the
//! front end's decomposition of the index into *base expression + constant
//! delta* — which the code generator turns into [`MemAlias`] base tags and
//! offsets, and the dependence oracles turn into must-not-alias facts.
//! This pass sharpens those annotations with dataflow evidence the front
//! end (which sees one expression at a time) cannot have:
//!
//! 1. **Constant upgrade.** If conditional constant propagation proves the
//!    index vreg holds the constant `c` on every execution reaching the
//!    access, the origin becomes [`IndexOrigin::Absolute`]`(c)` — even when
//!    the source index was a variable expression, and even when the
//!    constancy is only established across blocks (`i = 0;` in one block,
//!    `a[i]` in another). Two distinct absolute indices of one array can
//!    never collide, so the scheduler may reorder the accesses freely.
//!
//!    The upgrade never loses precision against the `Relative` origin it
//!    replaces: within a scheduling region (straight-line code), if one of
//!    a same-base pair of accesses has a constant index then the shared
//!    base expression is constant at both — any write to a base variable
//!    in between would have changed the base's value, which disambiguation
//!    against the partner already forbids — so the partner's index folds
//!    too and the pair stays disjoint-by-constants.
//!
//! 2. **Linear recovery.** An access the front end left un-annotated (or
//!    one introduced by an optimization) whose index vreg decomposes —
//!    through the block's `ConstInt`/`ReadVar`/add/sub chains — into a sum
//!    of variable reads plus a constant gains a fresh
//!    [`IndexOrigin::Relative`] with a fingerprint of the canonical term
//!    multiset. Recovered fingerprints live in a namespace disjoint from
//!    the front end's expression fingerprints (the hash is salted), so an
//!    equal-fingerprint pair is always two recovered origins with the same
//!    terms: the same runtime value whenever no term variable was written
//!    in between, which is exactly the contract [`IndexOrigin::Relative`]
//!    demands and the code generator's tag invalidation enforces.
//!
//! Deltas use wrapping arithmetic deliberately: the machine computes
//! `base + delta` with wrapping adds, which is injective in `delta` for a
//! fixed base value, so distinct (even wrapped) deltas still prove
//! distinct addresses.
//!
//! [`MemAlias`]: supersym_isa::MemAlias

use crate::consts::ConstProp;
use crate::engine::solve;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use supersym_ir::{BlockId, Function, IndexOrigin, Inst, IntBinOp, Module, VReg, VarRef};

/// Salt distinguishing recovered fingerprints from the front end's
/// expression fingerprints (and from any future scheme).
const RECOVERED_SALT: &str = "supersym-analyze/linear-origin-v1";

/// A block-local linear decomposition of an integer vreg: a multiset of
/// signed variable reads plus a constant. Valid only while none of the
/// read variables has been written since the reads.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LinForm {
    /// Signed terms `(negated, var)`, kept sorted as a canonical multiset.
    terms: Vec<(bool, VarRef)>,
    /// Constant addend (wrapping, matching machine arithmetic).
    delta: i64,
}

/// Cap on term-multiset size; larger forms are abandoned (they would be
/// useless for disambiguation anyway).
const MAX_TERMS: usize = 8;

impl LinForm {
    fn constant(delta: i64) -> Self {
        LinForm {
            terms: Vec::new(),
            delta,
        }
    }

    fn var(var: VarRef) -> Self {
        LinForm {
            terms: vec![(false, var)],
            delta: 0,
        }
    }

    /// `self + sign * other`, or `None` when the result grows too large.
    fn combine(&self, other: &LinForm, negate_other: bool) -> Option<Self> {
        if self.terms.len() + other.terms.len() > MAX_TERMS {
            return None;
        }
        let mut terms = self.terms.clone();
        terms.extend(
            other
                .terms
                .iter()
                .map(|&(neg, var)| (neg != negate_other, var)),
        );
        terms.sort_unstable();
        let delta = if negate_other {
            self.delta.wrapping_sub(other.delta)
        } else {
            self.delta.wrapping_add(other.delta)
        };
        Some(LinForm { terms, delta })
    }

    fn mentions(&self, var: VarRef) -> bool {
        self.terms.iter().any(|&(_, v)| v == var)
    }

    /// The [`IndexOrigin::Relative`] this form denotes, `None` for pure
    /// constants (those are the constant-upgrade pass's job).
    fn to_origin(&self) -> Option<IndexOrigin> {
        if self.terms.is_empty() {
            return None;
        }
        let mut hasher = DefaultHasher::new();
        RECOVERED_SALT.hash(&mut hasher);
        for &(neg, var) in &self.terms {
            neg.hash(&mut hasher);
            match var {
                VarRef::Global(g) => (0_u8, g.0).hash(&mut hasher),
                VarRef::Local(l) => (1_u8, l.0).hash(&mut hasher),
            }
        }
        let mut vars: Vec<VarRef> = self.terms.iter().map(|&(_, v)| v).collect();
        vars.sort_unstable();
        vars.dedup();
        Some(IndexOrigin::Relative {
            base: hasher.finish(),
            vars,
            delta: self.delta,
        })
    }
}

/// Sharpens the [`IndexOrigin`] annotations of every array access in
/// `module` using constant propagation and block-local linear
/// decomposition. Returns the number of annotations improved.
///
/// Run after the optimization pipeline, just before instruction selection:
/// the optimizer both creates the constants this pass exploits and may
/// emit un-annotated accesses this pass re-annotates.
pub fn sharpen_origins(module: &mut Module) -> usize {
    // Plan the edits against the immutable module, then apply them.
    let mut edits: BTreeMap<(usize, BlockId, usize), IndexOrigin> = BTreeMap::new();
    let consts = ConstProp::new(module);
    for (func_index, func) in module.funcs.iter().enumerate() {
        let solution = solve(&consts, func);
        for block_index in 0..func.blocks.len() {
            let block = BlockId(block_index as u32);
            if !solution.is_reached(block) {
                continue;
            }
            let Some(vars_in) = solution.entry_of(block).vars.as_ref() else {
                continue;
            };
            // Constant upgrade: any access whose index vreg is proven
            // constant at the access becomes Absolute.
            consts.walk_block(func, block, vars_in, |index, inst, vregs| {
                let (index_vreg, origin) = match inst {
                    Inst::ReadElem { index, origin, .. } => (index, origin),
                    Inst::WriteElem { index, origin, .. } => (index, origin),
                    _ => return,
                };
                if let Some(&value) = vregs.get(index_vreg) {
                    let sharpened = IndexOrigin::Absolute(value);
                    if origin.as_ref() != Some(&sharpened) {
                        edits.insert((func_index, block, index), sharpened);
                    }
                }
            });
            recover_linear_origins(func_index, func, block, &mut edits);
        }
    }
    let count = edits.len();
    for ((func_index, block, index), origin) in edits {
        match &mut module.funcs[func_index].blocks[block.index()].insts[index] {
            Inst::ReadElem { origin: slot, .. } | Inst::WriteElem { origin: slot, .. } => {
                *slot = Some(origin);
            }
            _ => unreachable!("edit sites are array accesses"),
        }
    }
    count
}

/// The linear-recovery pass over one block: tracks a [`LinForm`] per vreg,
/// killing forms whose variables are written, and annotates un-annotated
/// accesses (skipping sites the constant upgrade already claimed).
fn recover_linear_origins(
    func_index: usize,
    func: &Function,
    block: BlockId,
    edits: &mut BTreeMap<(usize, BlockId, usize), IndexOrigin>,
) {
    let mut forms: HashMap<VReg, LinForm> = HashMap::new();
    for (index, inst) in func.blocks[block.index()].insts.iter().enumerate() {
        // Annotate before applying the def (an access never defines its
        // own index, but the symmetry with the other walks is free).
        let access = match inst {
            Inst::ReadElem { index, origin, .. } => Some((index, origin)),
            Inst::WriteElem { index, origin, .. } => Some((index, origin)),
            _ => None,
        };
        if let Some((index_vreg, origin)) = access {
            let site = (func_index, block, index);
            if origin.is_none() && !edits.contains_key(&site) {
                if let Some(sharpened) = forms.get(index_vreg).and_then(LinForm::to_origin) {
                    edits.insert(site, sharpened);
                }
            }
        }
        match inst {
            Inst::ConstInt { dst, value } => {
                forms.insert(*dst, LinForm::constant(*value));
            }
            Inst::ReadVar { dst, var } => {
                forms.insert(*dst, LinForm::var(*var));
            }
            Inst::IntBin { op, dst, lhs, rhs } if matches!(op, IntBinOp::Add | IntBinOp::Sub) => {
                let combined = match (forms.get(lhs), forms.get(rhs)) {
                    (Some(a), Some(b)) => a.combine(b, *op == IntBinOp::Sub),
                    _ => None,
                };
                match combined {
                    Some(form) => {
                        forms.insert(*dst, form);
                    }
                    None => {
                        forms.remove(dst);
                    }
                }
            }
            Inst::WriteVar { var, .. } => {
                // The old reads no longer denote the variable's value.
                forms.retain(|_, form| !form.mentions(*var));
            }
            Inst::Call { dst, .. } => {
                forms.retain(|_, form| {
                    !form
                        .terms
                        .iter()
                        .any(|&(_, v)| matches!(v, VarRef::Global(_)))
                });
                if let Some(dst) = dst {
                    forms.remove(dst);
                }
            }
            _ => {
                if let Some(dst) = inst.dst() {
                    forms.remove(&dst);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_ir::{Block, GlobalId, GlobalInfo, GlobalKind, LocalId, Terminator, VarInfo};
    use supersym_lang::ast::Ty;

    fn local(i: u32) -> VarRef {
        VarRef::Local(LocalId(i))
    }

    fn array_global(name: &str, len: usize) -> GlobalInfo {
        GlobalInfo {
            name: name.into(),
            ty: Ty::Float,
            kind: GlobalKind::Array { len },
        }
    }

    fn origin_of(module: &Module, func: usize, block: u32, index: usize) -> Option<IndexOrigin> {
        match &module.funcs[func].blocks[block as usize].insts[index] {
            Inst::ReadElem { origin, .. } | Inst::WriteElem { origin, .. } => origin.clone(),
            other => panic!("not an access: {other:?}"),
        }
    }

    /// bb0: i = 2; jump bb1. bb1: a[i] (origin Relative) — the constant
    /// flows across the block boundary and upgrades the origin.
    #[test]
    fn cross_block_constant_upgrade() {
        let relative = IndexOrigin::Relative {
            base: 42,
            vars: vec![local(0)],
            delta: 0,
        };
        let mut module = Module {
            globals: vec![array_global("a", 8)],
            funcs: vec![Function {
                name: "f".into(),
                vars: vec![VarInfo {
                    name: "i".into(),
                    ty: Ty::Int,
                    param_index: None,
                }],
                ret: None,
                blocks: vec![
                    Block {
                        insts: vec![
                            Inst::ConstInt {
                                dst: VReg(0),
                                value: 2,
                            },
                            Inst::WriteVar {
                                var: local(0),
                                src: VReg(0),
                            },
                        ],
                        term: Terminator::Jump(BlockId(1)),
                    },
                    Block {
                        insts: vec![
                            Inst::ReadVar {
                                dst: VReg(1),
                                var: local(0),
                            },
                            Inst::ReadElem {
                                dst: VReg(2),
                                arr: GlobalId(0),
                                index: VReg(1),
                                origin: Some(relative),
                            },
                        ],
                        term: Terminator::Return(None),
                    },
                ],
                vreg_tys: vec![Ty::Int, Ty::Int, Ty::Float],
            }],
            entry: 0,
        };
        assert_eq!(sharpen_origins(&mut module), 1);
        assert_eq!(origin_of(&module, 0, 1, 1), Some(IndexOrigin::Absolute(2)));
        // Idempotent: a second run finds nothing to improve.
        assert_eq!(sharpen_origins(&mut module), 0);
    }

    /// Un-annotated accesses `a[i]` and `a[i + 1]` recover a shared base
    /// fingerprint with deltas 0 and 1; a write to `i` in between kills
    /// the form instead.
    #[test]
    fn linear_recovery_shares_base() {
        let make = |poison_write: bool| {
            let mut insts = vec![
                Inst::ReadVar {
                    dst: VReg(0),
                    var: local(0),
                },
                Inst::ReadElem {
                    dst: VReg(1),
                    arr: GlobalId(0),
                    index: VReg(0),
                    origin: None,
                },
            ];
            if poison_write {
                insts.push(Inst::ConstInt {
                    dst: VReg(5),
                    value: 9,
                });
                insts.push(Inst::WriteVar {
                    var: local(0),
                    src: VReg(5),
                });
            }
            insts.extend([
                Inst::ReadVar {
                    dst: VReg(2),
                    var: local(0),
                },
                Inst::ConstInt {
                    dst: VReg(3),
                    value: 1,
                },
                Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: VReg(4),
                    lhs: VReg(2),
                    rhs: VReg(3),
                },
                Inst::ReadElem {
                    dst: VReg(6),
                    arr: GlobalId(0),
                    index: VReg(4),
                    origin: None,
                },
            ]);
            Module {
                globals: vec![array_global("a", 8)],
                funcs: vec![Function {
                    name: "f".into(),
                    vars: vec![VarInfo {
                        name: "i".into(),
                        ty: Ty::Int,
                        param_index: Some(0),
                    }],
                    ret: None,
                    blocks: vec![Block {
                        insts,
                        term: Terminator::Return(None),
                    }],
                    vreg_tys: vec![
                        Ty::Int,
                        Ty::Float,
                        Ty::Int,
                        Ty::Int,
                        Ty::Int,
                        Ty::Int,
                        Ty::Float,
                    ],
                }],
                entry: 0,
            }
        };

        let mut module = make(false);
        assert_eq!(sharpen_origins(&mut module), 2);
        let first = origin_of(&module, 0, 0, 1).expect("annotated");
        let second = origin_of(&module, 0, 0, 5).expect("annotated");
        let IndexOrigin::Relative {
            base: base_a,
            vars: vars_a,
            delta: 0,
        } = first
        else {
            panic!("unexpected origin {first:?}");
        };
        let IndexOrigin::Relative {
            base: base_b,
            vars: vars_b,
            delta: 1,
        } = second
        else {
            panic!("unexpected origin {second:?}");
        };
        assert_eq!(base_a, base_b, "same base expression, same fingerprint");
        assert_eq!(vars_a, vec![local(0)]);
        assert_eq!(vars_b, vec![local(0)]);

        // With `i` rewritten between the reads the earlier read's form
        // dies; `i + 1` after the write is still recovered (its read
        // postdates the write), and the parameter is no longer constant
        // so the write does not make the accesses Absolute.
        let mut poisoned = make(true);
        sharpen_origins(&mut poisoned);
        assert_eq!(
            origin_of(&poisoned, 0, 0, 1),
            Some(IndexOrigin::Relative {
                base: base_a,
                vars: vec![local(0)],
                delta: 0,
            })
        );
        // The second access reads `i` *after* the write: i is then the
        // constant 9, so the constant upgrade claims it first.
        assert_eq!(
            origin_of(&poisoned, 0, 0, 7),
            Some(IndexOrigin::Absolute(10))
        );
    }

    /// Recovered fingerprints differ between different variables.
    #[test]
    fn different_vars_different_bases() {
        let a = LinForm::var(local(0)).to_origin().unwrap();
        let b = LinForm::var(local(1)).to_origin().unwrap();
        let (IndexOrigin::Relative { base: ba, .. }, IndexOrigin::Relative { base: bb, .. }) =
            (a, b)
        else {
            panic!("expected relative origins");
        };
        assert_ne!(ba, bb);
        // Sign matters: x - y and x + y are different bases.
        let sum = LinForm::var(local(0))
            .combine(&LinForm::var(local(1)), false)
            .unwrap();
        let diff = LinForm::var(local(0))
            .combine(&LinForm::var(local(1)), true)
            .unwrap();
        assert_ne!(sum.to_origin(), diff.to_origin());
    }
}
