//! Human-readable dump of per-block dataflow facts.
//!
//! `titalc analyze` prints this after running the front end: for each
//! function, each block's reachability, the constants and value ranges
//! known at its entry, which definitions reach it, and any provably
//! constant branch verdict at its exit. The format is line-oriented and
//! stable enough to grep, but it is a debugging surface, not a parse
//! target.

use crate::consts::ConstProp;
use crate::engine::solve;
use crate::range::Ranges;
use crate::reaching::{Def, ReachingDefs};
use std::fmt::Write as _;
use supersym_ir::{BlockId, Function, Module, VarRef};

fn var_name<'a>(module: &'a Module, func: &'a Function, var: VarRef) -> &'a str {
    match var {
        VarRef::Global(g) => &module.globals[g.0 as usize].name,
        VarRef::Local(l) => &func.vars[l.0 as usize].name,
    }
}

fn def_name(def: Def) -> String {
    match def {
        Def::Entry => "entry".into(),
        Def::Inst(block, index) => format!("{block}:{index}"),
    }
}

/// Renders every function's per-block dataflow facts as text.
#[must_use]
pub fn dump_module(module: &Module) -> String {
    let mut out = String::new();
    for func in &module.funcs {
        let consts = solve(&ConstProp::new(module), func);
        let ranges = solve(&Ranges::new(module), func);
        let reaching = solve(&ReachingDefs::new(module), func);
        let _ = writeln!(out, "fn {}:", func.name);
        for block_index in 0..func.blocks.len() {
            let block_id = BlockId(block_index as u32);
            if !consts.is_reached(block_id) {
                let _ = writeln!(out, "  {block_id}: unreachable");
                continue;
            }
            let _ = writeln!(out, "  {block_id}:");
            if let Some(vars) = &consts.entry_of(block_id).vars {
                if !vars.is_empty() {
                    let facts: Vec<String> = vars
                        .iter()
                        .map(|(var, value)| format!("{} = {value}", var_name(module, func, *var)))
                        .collect();
                    let _ = writeln!(out, "    const: {}", facts.join(", "));
                }
            }
            if let Some(vars) = &ranges.entry_of(block_id).vars {
                if !vars.is_empty() {
                    let facts: Vec<String> = vars
                        .iter()
                        .map(|(var, iv)| {
                            format!("{} in [{}, {}]", var_name(module, func, *var), iv.lo, iv.hi)
                        })
                        .collect();
                    let _ = writeln!(out, "    range: {}", facts.join(", "));
                }
            }
            let defs = reaching.entry_of(block_id);
            if !defs.is_empty() {
                let facts: Vec<String> = defs
                    .iter()
                    .map(|(var, sites)| {
                        let sites: Vec<String> = sites.iter().map(|d| def_name(*d)).collect();
                        format!(
                            "{} <- {{{}}}",
                            var_name(module, func, *var),
                            sites.join(", ")
                        )
                    })
                    .collect();
                let _ = writeln!(out, "    defs: {}", facts.join("; "));
            }
            if let Some(verdict) = consts.exit_of(block_id).branch {
                let _ = writeln!(out, "    branch: always {verdict}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_ir::{Block, Inst, LocalId, Terminator, VReg, VarInfo};
    use supersym_lang::ast::Ty;

    #[test]
    fn dump_mentions_facts_and_unreachable_blocks() {
        // bb0: x = 3; branch on 1 -> bb1 / bb2 (bb2 unreachable).
        let module = Module {
            globals: vec![],
            funcs: vec![Function {
                name: "main".into(),
                vars: vec![VarInfo {
                    name: "x".into(),
                    ty: Ty::Int,
                    param_index: None,
                }],
                ret: None,
                blocks: vec![
                    Block {
                        insts: vec![
                            Inst::ConstInt {
                                dst: VReg(0),
                                value: 3,
                            },
                            Inst::WriteVar {
                                var: VarRef::Local(LocalId(0)),
                                src: VReg(0),
                            },
                            Inst::ConstInt {
                                dst: VReg(1),
                                value: 1,
                            },
                        ],
                        term: Terminator::Branch {
                            cond: VReg(1),
                            then_bb: BlockId(1),
                            else_bb: BlockId(2),
                        },
                    },
                    Block::empty(Terminator::Return(None)),
                    Block::empty(Terminator::Return(None)),
                ],
                vreg_tys: vec![Ty::Int; 2],
            }],
            entry: 0,
        };
        let text = dump_module(&module);
        assert!(text.contains("fn main:"), "{text}");
        assert!(text.contains("const: x = 3"), "{text}");
        assert!(text.contains("x in [3, 3]"), "{text}");
        assert!(text.contains("x <- {bb0:1}"), "{text}");
        assert!(text.contains("branch: always true"), "{text}");
        assert!(text.contains("bb2: unreachable"), "{text}");
    }
}
