//! Reaching definitions over variables.
//!
//! For every variable ([`VarRef`]) at every block boundary: which writes
//! can be the one whose value is observed here? Definitions are
//! [`Def::Entry`] (the value the function started with) or a
//! [`Def::Inst`] site. Calls *may* define every global (the callee can
//! write it), so they add a definition without killing the old ones.
//!
//! The symbolic alias analysis ([`crate::sharpen_origins`]) uses the
//! reaching set of a variable as its *version*: two index expressions over
//! the same variable denote the same runtime value within a straight-line
//! region exactly when the variable's reaching definitions agree.

use crate::engine::{Analysis, Direction};
use std::collections::{BTreeMap, BTreeSet};
use supersym_ir::{BlockId, Function, GlobalId, Inst, Module, VarRef};

/// One definition site of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Def {
    /// The value the variable held at function entry.
    Entry,
    /// A write site: the instruction at this index of this block (a
    /// `WriteVar`, or a call that may have written the global).
    Inst(BlockId, usize),
}

/// The reaching-definitions state: each tracked variable's possible
/// definition sites. The lattice join is pointwise set union; an absent
/// variable means "no definitions reach" (only possible in unreached
/// code).
pub type ReachState = BTreeMap<VarRef, BTreeSet<Def>>;

/// The reaching-definitions analysis (forward, finite lattice).
#[derive(Debug, Clone, Copy)]
pub struct ReachingDefs<'m> {
    module: &'m Module,
}

impl<'m> ReachingDefs<'m> {
    /// Creates the analysis for functions of `module`.
    #[must_use]
    pub fn new(module: &'m Module) -> Self {
        ReachingDefs { module }
    }

    /// Applies one instruction's effect to `state`.
    pub fn step(&self, state: &mut ReachState, block: BlockId, index: usize, inst: &Inst) {
        match inst {
            Inst::WriteVar { var, .. } => {
                // A strong update: this write is now the only definition.
                state.insert(*var, BTreeSet::from([Def::Inst(block, index)]));
            }
            Inst::Call { .. } => {
                // The callee may write any global: add (do not replace) a
                // definition for each.
                for g in 0..self.module.globals.len() {
                    state
                        .entry(VarRef::Global(GlobalId(g as u32)))
                        .or_default()
                        .insert(Def::Inst(block, index));
                }
            }
            _ => {}
        }
    }
}

impl Analysis for ReachingDefs<'_> {
    type State = ReachState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, func: &Function) -> ReachState {
        let mut state = ReachState::new();
        for g in 0..self.module.globals.len() {
            state.insert(
                VarRef::Global(GlobalId(g as u32)),
                BTreeSet::from([Def::Entry]),
            );
        }
        for l in 0..func.vars.len() {
            state.insert(
                VarRef::Local(supersym_ir::LocalId(l as u32)),
                BTreeSet::from([Def::Entry]),
            );
        }
        state
    }

    fn bottom(&self, _func: &Function) -> ReachState {
        ReachState::new()
    }

    fn transfer(&self, func: &Function, block: BlockId, state: &mut ReachState) {
        for (index, inst) in func.blocks[block.index()].insts.iter().enumerate() {
            self.step(state, block, index, inst);
        }
    }

    fn join(&self, into: &mut ReachState, from: &ReachState) -> bool {
        let mut changed = false;
        for (var, defs) in from {
            let entry = into.entry(*var).or_default();
            for def in defs {
                changed |= entry.insert(*def);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::solve;
    use supersym_ir::{Block, LocalId, Terminator, VReg, VarInfo};
    use supersym_lang::ast::Ty;

    fn write(var: VarRef) -> Inst {
        Inst::WriteVar { var, src: VReg(0) }
    }

    fn const0() -> Inst {
        Inst::ConstInt {
            dst: VReg(0),
            value: 0,
        }
    }

    fn local(i: u32) -> VarRef {
        VarRef::Local(LocalId(i))
    }

    #[test]
    fn writes_kill_and_merge() {
        // bb0: write x; branch bb1/bb2. bb1: write x; jump bb3. bb2: jump
        // bb3. bb3: both definitions reach.
        let func = Function {
            name: "f".into(),
            vars: vec![VarInfo {
                name: "x".into(),
                ty: Ty::Int,
                param_index: None,
            }],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![const0(), write(local(0))],
                    term: Terminator::Branch {
                        cond: VReg(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    insts: vec![const0(), write(local(0))],
                    term: Terminator::Jump(BlockId(3)),
                },
                Block::empty(Terminator::Jump(BlockId(3))),
                Block::empty(Terminator::Return(None)),
            ],
            vreg_tys: vec![Ty::Int],
        };
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        let analysis = ReachingDefs::new(&module);
        let solution = solve(&analysis, &module.funcs[0]);
        let at_join = &solution.entry_of(BlockId(3))[&local(0)];
        assert_eq!(
            at_join,
            &BTreeSet::from([Def::Inst(BlockId(0), 1), Def::Inst(BlockId(1), 1)])
        );
        // Inside bb1 the write killed bb0's: exit has exactly one def.
        assert_eq!(
            solution.exit_of(BlockId(1))[&local(0)],
            BTreeSet::from([Def::Inst(BlockId(1), 1)])
        );
        // Entry sees the boundary definition.
        assert_eq!(
            solution.entry_of(BlockId(0))[&local(0)],
            BTreeSet::from([Def::Entry])
        );
    }
}
