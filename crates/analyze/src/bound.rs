//! Static ILP bounds: what the machine description alone promises.
//!
//! The simulator measures available parallelism as
//! `instructions / base_cycles`. This module derives, **before any
//! simulation**, a sound *lower bound* on the machine cycles any in-order
//! execution must spend — equivalently an upper bound ("ceiling") on the
//! ILP the simulator can possibly report — from three ingredients:
//!
//! 1. **Issue width**: `N` instructions at `w` per cycle need
//!    `ceil(N / w)` cycles.
//! 2. **Functional-unit census**: a unit with `mult` copies, each
//!    reserved `il` cycles per issue, hosts at most `mult·ceil(T / il)`
//!    issues in `T` cycles, so `T >= ceil(count·il / mult) - il + 1`.
//! 3. **Loop recurrences**: for each innermost machine loop, consecutive
//!    iteration headers are separated by at least
//!    `Δ = max(P, ceil(n/w) - 1, Δ_fu, L_rec)` cycles, where `P` is the
//!    in-order critical path through register RAW/WAW edges, `Δ_fu` the
//!    per-iteration unit pressure, and `L_rec` the longest distance-1
//!    register recurrence cycle (carried edge closed by the intra-body
//!    path back to its producer). A loop entered `v` times running `k`
//!    total iterations contributes `k - v` such consecutive pairs, and
//!    the half-open windows `[header_m, header_{m+1})` of all pairs of
//!    all innermost loops are pairwise disjoint in an in-order machine,
//!    so the per-loop terms **sum**. Moreover, strictly inside a window
//!    only that iteration's own body instructions can issue (in-order:
//!    everything dynamically before the opening header issued at or
//!    before it, everything after the closing header at or after it), so
//!    the instructions *outside* all counted iterations still need their
//!    own issue cycles — `ceil((R - pairs·(w-1)) / w)` more, where `R` is
//!    the leftover instruction count and up to `w - 1` of them may share
//!    each window's opening cycle with its header. Loop cost and leftover
//!    cost therefore **add**, not just max.
//!
//! Only register dependences — architectural musts — feed the bound;
//! may-alias memory edges are excluded, so sharpening the oracle can never
//! unsound it. The classic scheduler-facing numbers, recurrence-bound and
//! resource-bound MinII, are computed alongside for reporting.

use supersym_isa::{ClassCensus, Instr, InstrClass, Program};
use supersym_machine::MachineConfig;

use crate::loopdep::{innermost_machine_loops, LoopCarriedOracle};
use crate::oracle::{dependence_edges, DepKind};

/// Static facts about one innermost machine loop under one machine
/// configuration: everything the bound needs except the dynamic iteration
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopStatics {
    /// Index of the owning function in the program.
    pub func: usize,
    /// Instruction index of the loop header within the function.
    pub header: usize,
    /// Instruction index of the latch (backward branch).
    pub latch: usize,
    /// Body length, latch included.
    pub body_len: usize,
    /// In-order critical path `P` through the body (register RAW/WAW
    /// edges, machine cycles).
    pub critical_path: u64,
    /// Sound minimum spacing `Δ` between consecutive iteration starts.
    pub delta: u64,
    /// Longest distance-1 register recurrence cycle folded into `delta`
    /// (0 when the body carries none).
    pub recurrence: u64,
    /// Recurrence-bound MinII: max over loop-carried dependence cycles of
    /// `Σ latency / Σ distance` (includes may-alias memory cycles — a
    /// scheduling constraint, not part of the sound bound).
    pub rec_min_ii: f64,
    /// Resource-bound MinII: max over functional units of
    /// `count·issue_latency / multiplicity` for one iteration.
    pub res_min_ii: f64,
}

/// Dynamic counts for one loop, parallel to [`LoopStatics`]: how many
/// iterations ran in total and across how many separate visits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopCount {
    /// Total header executions.
    pub iterations: u64,
    /// Number of times the loop was entered from outside.
    pub visits: u64,
}

/// The combined static bound for one program × machine × run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticBound {
    /// Sound lower bound on machine cycles.
    pub lower_bound_cycles: u64,
    /// The ILP ceiling: `instructions · pipe_degree / lower_bound_cycles`.
    /// Measured available parallelism can never exceed this.
    pub bound_ilp: f64,
    /// Largest recurrence-bound MinII over the program's innermost loops.
    pub rec_min_ii: f64,
    /// Largest resource-bound MinII over the program's innermost loops.
    pub res_min_ii: f64,
}

fn ceil_div(a: u64, b: u64) -> u64 {
    if b == 0 {
        0
    } else {
        a.div_ceil(b)
    }
}

/// Computes [`LoopStatics`] for every innermost machine loop of `program`
/// under `config`, using `oracle` for the loop-carried facts.
#[must_use]
pub fn program_loop_statics(
    program: &Program,
    config: &MachineConfig,
    oracle: &dyn LoopCarriedOracle,
) -> Vec<LoopStatics> {
    let mut all = Vec::new();
    for (func_index, func) in program.functions().iter().enumerate() {
        for ml in innermost_machine_loops(func) {
            let body = ml.body(func);
            all.push(loop_statics(
                func_index, ml.start, ml.end, body, config, oracle,
            ));
        }
    }
    all
}

fn loop_statics(
    func: usize,
    start: usize,
    end: usize,
    body: &[Instr],
    config: &MachineConfig,
    oracle: &dyn LoopCarriedOracle,
) -> LoopStatics {
    let n = body.len();
    let lat = |i: usize| u64::from(config.latency(body[i].class()));

    // Register RAW/WAW edges are architectural musts: the consumer's issue
    // waits out the producer's full latency (WAR is free in the timing
    // model and the in-order program-order chain already covers it).
    let reg_edges: Vec<(usize, usize)> = dependence_edges(body, oracle)
        .into_iter()
        .filter(|e| matches!(e.kind, DepKind::Raw(_) | DepKind::Waw(_)))
        .map(|e| (e.pred, e.succ))
        .collect();

    // earliest[from][j]: least issue offset of j relative to `from` issuing
    // at 0, following program order (in-order, 0 cycles) and register
    // latency edges. Computed on demand per source.
    let path_from = |from: usize| -> Vec<u64> {
        let mut d = vec![0u64; n];
        for j in from + 1..n {
            d[j] = d[j - 1];
            for &(p, s) in &reg_edges {
                if s == j && p >= from {
                    d[j] = d[j].max(d[p] + lat(p));
                }
            }
        }
        d
    };

    let from_header = path_from(0);
    let critical_path = from_header[n - 1];

    // Per-iteration functional-unit pressure: in the window between two
    // consecutive iteration starts, each of the `mult` copies of a unit
    // accepts at most one issue per `il` cycles.
    let mut unit_counts = vec![0u64; config.functional_units().len()];
    for instr in body {
        unit_counts[config.unit_of(instr.class())] += 1;
    }
    let mut delta_fu = 0u64;
    let mut res_min_ii = 0.0f64;
    for (u, unit) in config.functional_units().iter().enumerate() {
        if unit_counts[u] == 0 {
            continue;
        }
        let il = u64::from(unit.issue_latency().max(1));
        let mult = u64::from(unit.multiplicity());
        delta_fu = delta_fu.max(ceil_div(unit_counts[u] * il, mult).saturating_sub(il));
        res_min_ii = res_min_ii.max(unit_counts[u] as f64 * il as f64 / mult as f64);
    }

    // Loop-carried cycles: a carried edge pred(m) -> succ(m+d) closed by
    // the intra-body path succ -> pred yields a cycle of length
    // `latency(pred) + path(succ -> pred)` per `d` iterations.
    let mut recurrence = 0u64;
    let mut rec_min_ii = 0.0f64;
    for edge in oracle.loop_carried(body) {
        if edge.succ > edge.pred {
            continue; // no intra-body path back: not a cycle
        }
        let cycle = match edge.kind {
            DepKind::War(_) => continue, // WAR costs no latency
            DepKind::Raw(_) | DepKind::Waw(_) | DepKind::Memory => {
                lat(edge.pred) + path_from(edge.succ)[edge.pred]
            }
        };
        rec_min_ii = rec_min_ii.max(cycle as f64 / edge.distance as f64);
        // Only exact register facts may tighten the sound bound; memory
        // edges are may-information.
        if matches!(edge.kind, DepKind::Raw(_) | DepKind::Waw(_)) && edge.distance == 1 {
            recurrence = recurrence.max(cycle);
        }
    }

    let width_term = ceil_div(n as u64, u64::from(config.issue_width())).saturating_sub(1);
    let delta = critical_path.max(width_term).max(delta_fu).max(recurrence);

    LoopStatics {
        func,
        header: start,
        latch: end,
        body_len: n,
        critical_path,
        delta,
        recurrence,
        rec_min_ii,
        res_min_ii,
    }
}

/// Combines the static per-loop facts with one run's dynamic counts into
/// the sound cycle lower bound and ILP ceiling.
///
/// `counts` must be parallel to `statics`; `census` and
/// `total_instructions` describe the whole dynamic run.
#[must_use]
pub fn static_bound(
    config: &MachineConfig,
    statics: &[LoopStatics],
    counts: &[LoopCount],
    total_instructions: u64,
    census: &ClassCensus,
) -> StaticBound {
    assert_eq!(statics.len(), counts.len(), "one count per loop");

    // Global issue-width floor.
    let mut lb = ceil_div(total_instructions, u64::from(config.issue_width()));

    // Global functional-unit floor.
    let mut unit_counts = vec![0u64; config.functional_units().len()];
    for class in InstrClass::ALL {
        unit_counts[config.unit_of(class)] += census.count(class);
    }
    for (u, unit) in config.functional_units().iter().enumerate() {
        if unit_counts[u] == 0 {
            continue;
        }
        let il = u64::from(unit.issue_latency().max(1));
        let mult = u64::from(unit.multiplicity());
        let floor = ceil_div(unit_counts[u] * il, mult)
            .saturating_sub(il)
            .saturating_add(1);
        lb = lb.max(floor);
    }

    // Summed loop floors: each consecutive-iteration pair spans a
    // half-open window of at least `Δ` cycles, and the windows of all
    // pairs of all innermost loops are pairwise disjoint in an in-order
    // machine. Instructions outside the counted iterations need issue
    // cycles of their own — which adds to, rather than maxes against, the
    // loop term. The only cycles they can share with a window are
    // opening cycles whose header they immediately precede dynamically,
    // and within a visit every opening but the first is preceded by
    // counted body instructions — so at most `w - 1` leftovers hide per
    // *visit*, not per pair.
    let width = u64::from(config.issue_width());
    let mut loop_sum = 0u64;
    let mut counted = 0u64;
    let mut visits_total = 0u64;
    let mut rec_min_ii = 0.0f64;
    let mut res_min_ii = 0.0f64;
    for (s, c) in statics.iter().zip(counts) {
        let pairs = c.iterations.saturating_sub(c.visits);
        loop_sum += pairs * s.delta;
        counted += pairs * s.body_len as u64;
        visits_total += c.visits.min(pairs);
        if c.iterations > 0 {
            rec_min_ii = rec_min_ii.max(s.rec_min_ii);
            res_min_ii = res_min_ii.max(s.res_min_ii);
        }
    }
    let leftover = total_instructions.saturating_sub(counted);
    let outside = leftover.saturating_sub(visits_total.saturating_mul(width - 1));
    lb = lb
        .max(loop_sum + ceil_div(outside, width))
        .max(u64::from(total_instructions > 0));

    let bound_ilp = if lb == 0 {
        0.0
    } else {
        total_instructions as f64 * f64::from(config.pipe_degree()) / lb as f64
    };
    StaticBound {
        lower_bound_cycles: lb,
        bound_ilp,
        rec_min_ii,
        res_min_ii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleKind;
    use supersym_isa::{Function, IntOp, IntReg, Label, MemAlias, Operand};
    use supersym_machine::presets;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn chain_body() -> Vec<Instr> {
        // r2 <- [r5]; r3 <- r2 + 1; [r5] <- r3; r5 += 1; br — a serial
        // load/add/store chain plus the induction update.
        vec![
            Instr::Load {
                dst: r(2),
                base: r(5),
                offset: 0,
                alias: MemAlias::unknown(),
            },
            Instr::IntOp {
                op: IntOp::Add,
                dst: r(3),
                lhs: r(2),
                rhs: Operand::Imm(1),
            },
            Instr::Store {
                src: r(3),
                base: r(5),
                offset: 0,
                alias: MemAlias::unknown(),
            },
            Instr::IntOp {
                op: IntOp::Add,
                dst: r(5),
                lhs: r(5),
                rhs: Operand::Imm(1),
            },
            Instr::Br {
                cond: r(1),
                expect: true,
                target: Label::new(0),
            },
        ]
    }

    fn one_loop_program() -> Program {
        let mut program = Program::new();
        program.add_function(Function::new("f", chain_body(), vec![0]));
        program
    }

    #[test]
    fn critical_path_follows_register_latencies() {
        let program = one_loop_program();
        let config = presets::base();
        let statics =
            program_loop_statics(&program, &config, OracleKind::Symbolic.as_loop_oracle());
        assert_eq!(statics.len(), 1);
        let s = &statics[0];
        assert_eq!(s.body_len, 5);
        // load -> add -> store is the serial chain; the branch rides on r1.
        let load = u64::from(config.latency(InstrClass::Load));
        let add = u64::from(config.latency(InstrClass::IntAdd));
        assert_eq!(s.critical_path, load + add);
        // r5's self-update (distance-1 RAW on the add at 3) recurs.
        assert!(s.recurrence >= add);
        assert!(s.delta >= s.critical_path);
        assert!(s.rec_min_ii >= s.recurrence as f64);
    }

    #[test]
    fn bound_sums_loop_visits_and_respects_width() {
        let program = one_loop_program();
        let config = presets::base();
        let statics =
            program_loop_statics(&program, &config, OracleKind::Symbolic.as_loop_oracle());
        let mut census = ClassCensus::new();
        for _ in 0..100 {
            for instr in &chain_body() {
                census.record(instr.class());
            }
        }
        let counts = [LoopCount {
            iterations: 100,
            visits: 1,
        }];
        let bound = static_bound(&config, &statics, &counts, census.total(), &census);
        assert!(bound.lower_bound_cycles >= 99 * statics[0].delta);
        assert!(
            bound.lower_bound_cycles >= census.total().div_ceil(u64::from(config.issue_width()))
        );
        assert!(bound.bound_ilp > 0.0);
        // The ceiling can never fall below what one instruction per cycle
        // trivially achieves being impossible; sanity: ILP <= width·degree.
        assert!(
            bound.bound_ilp
                <= f64::from(config.issue_width()) * f64::from(config.pipe_degree()) + 1e-9
        );
    }

    #[test]
    fn empty_program_is_harmless() {
        let config = presets::base();
        let bound = static_bound(&config, &[], &[], 0, &ClassCensus::new());
        assert_eq!(bound.lower_bound_cycles, 0);
        assert_eq!(bound.bound_ilp, 0.0);
    }
}
