//! Loop-carried dependences at the machine level.
//!
//! The intra-region oracle in [`crate::oracle`] answers "may these two
//! instructions of *one* iteration conflict?". This module answers the
//! cross-iteration question for the innermost machine loops — the single
//! basic blocks ending in a backward branch that the simulator spends
//! nearly all of its cycles in — and tags every loop-carried RAW/WAR/WAW
//! edge with a **distance**: the number of iterations separating producer
//! and consumer.
//!
//! The facts come in two precision tiers, mirroring the intra-region
//! oracles and exposed through one trait so the scheduler, the verifier
//! and the static ILP bound all consume identical answers:
//!
//! * [`ConservativeOracle`]: register edges exactly (they are
//!   architectural, not a may-analysis) plus a distance-1 memory edge for
//!   every annotation-conflicting pair — the "assume the worst every
//!   iteration" model;
//! * [`SymbolicOracle`]: the same register edges, but memory pairs whose
//!   addresses are affine in an induction register (`base + step·i`, the
//!   machine-level chains-of-recurrences form from
//!   [`induction_steps`]) get the exact
//!   minimal distance from the wrapping SIV solver
//!   [`solve_stride`] — including **no edge at
//!   all** when the congruence has no solution (e.g. stride 2 between
//!   odd/even offsets).
//!
//! The symbolic tier only ever *removes or relaxes* edges relative to the
//! conservative tier (same pairs, distances ≥ 1), the subset guarantee the
//! workspace property test checks on every preset.

use std::fmt;
use supersym_isa::{Function, Instr, Reg};

use crate::oracle::{
    annotations_may_conflict, induction_steps, symbolic_addresses, ConservativeOracle, DepKind,
    DependenceOracle, OracleKind, SymAddr, SymbolicOracle,
};
use crate::scev::solve_stride;

/// Cross-iteration distances at or beyond this are reported as independent:
/// no simulated loop comes near `2^32` iterations, and dropping a
/// farther-out dependence only ever weakens (never unsounds) the static
/// bound built from these edges.
pub const CARRIED_DISTANCE_CAP: u64 = 1 << 32;

/// One innermost machine loop: a contiguous body `instrs[start..=end]`
/// whose last instruction branches (or jumps) back to `start`, with no
/// interior entry point and no interior control flow other than
/// conditional exits. Any iteration that reaches the latch executed every
/// body instruction exactly once, in order — the property all
/// cross-iteration reasoning here rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineLoop {
    /// Index of the header (first body instruction, the back edge target).
    pub start: usize,
    /// Index of the latch (the backward `br`), inclusive.
    pub end: usize,
}

impl MachineLoop {
    /// The body slice, header through latch.
    #[must_use]
    pub fn body<'a>(&self, func: &'a Function) -> &'a [Instr] {
        &func.instrs()[self.start..=self.end]
    }

    /// Number of instructions in the body, latch included.
    #[must_use]
    pub fn body_len(&self) -> usize {
        self.end - self.start + 1
    }
}

/// Finds the innermost machine loops of `func`.
///
/// A backward branch or jump at `i` targeting `t <= i` forms one iff
/// every interior control instruction of the candidate body `t..=i` is a
/// conditional branch leaving the body entirely (a loop exit) and no
/// branch anywhere in the function resolves into `t+1..=i` (control can
/// only enter at the header — the ISA has no indirect branches, so
/// unreferenced interior labels are harmless). This covers both
/// bottom-tested loops (`body; br header`) and the front end's top-tested
/// shape (`header: test; br exit; body; jmp header`). Candidates that
/// fail — outer loops, bodies with calls or inner back edges — are simply
/// not reported, which every consumer treats conservatively. Reported
/// bodies never overlap: any overlap pair puts one body's back edge or a
/// branch into the other's header inside the larger candidate,
/// disqualifying it.
#[must_use]
pub fn innermost_machine_loops(func: &Function) -> Vec<MachineLoop> {
    let instrs = func.instrs();
    let mut loops = Vec::new();
    for (i, instr) in instrs.iter().enumerate() {
        let t = match instr {
            Instr::Br { target, .. } | Instr::Jmp { target } => func.resolve(*target),
            _ => continue,
        };
        if t > i {
            continue;
        }
        let interior_ok = instrs[t..i].iter().all(|interior| match interior {
            Instr::Br { target, .. } => {
                let exit = func.resolve(*target);
                exit < t || exit > i
            }
            other => !other.is_control(),
        });
        if !interior_ok {
            continue;
        }
        let entered_inside = instrs.iter().any(|ins| match ins {
            Instr::Br { target, .. } | Instr::Jmp { target } => {
                let entry = func.resolve(*target);
                entry > t && entry <= i
            }
            _ => false,
        });
        if entered_inside {
            continue;
        }
        loops.push(MachineLoop { start: t, end: i });
    }
    loops
}

/// One loop-carried ordering constraint: the instance of `pred` in
/// iteration `m` must stay ordered before the instance of `succ` in
/// iteration `m + distance`, for every `m`. Indices are body-relative
/// (header = 0); `distance >= 1` always.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarriedEdge {
    /// Body-relative index of the earlier-iteration instruction.
    pub pred: usize,
    /// Body-relative index of the later-iteration instruction.
    pub succ: usize,
    /// Why they are ordered.
    pub kind: DepKind,
    /// Iteration distance (`1` = consecutive iterations).
    pub distance: u64,
}

impl fmt::Display for CarriedEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({}, distance {})",
            self.pred, self.succ, self.kind, self.distance
        )
    }
}

/// A [`DependenceOracle`] that additionally answers cross-iteration
/// questions for innermost loop bodies.
///
/// The same object answers both the intra-iteration (`may_alias`) and the
/// cross-iteration (`loop_carried`) forms, so the scheduler, the schedule
/// checker and the static bound can never consume drifting fact sets.
pub trait LoopCarriedOracle: DependenceOracle {
    /// Every loop-carried edge of one innermost loop body (header through
    /// latch, as produced by [`MachineLoop::body`]).
    fn loop_carried(&self, body: &[Instr]) -> Vec<CarriedEdge>;
}

impl LoopCarriedOracle for ConservativeOracle {
    fn loop_carried(&self, body: &[Instr]) -> Vec<CarriedEdge> {
        let mut edges = carried_register_edges(body);
        edges.extend(conservative_carried_memory(body));
        edges
    }
}

impl LoopCarriedOracle for SymbolicOracle {
    fn loop_carried(&self, body: &[Instr]) -> Vec<CarriedEdge> {
        let mut edges = carried_register_edges(body);
        edges.extend(symbolic_carried_memory(body));
        edges
    }
}

impl OracleKind {
    /// The loop-aware oracle this kind names (same instances as
    /// [`OracleKind::as_oracle`], widened to the loop-carried trait).
    #[must_use]
    pub fn as_loop_oracle(self) -> &'static dyn LoopCarriedOracle {
        static CONSERVATIVE: ConservativeOracle = ConservativeOracle;
        static SYMBOLIC: SymbolicOracle = SymbolicOracle;
        match self {
            OracleKind::Conservative => &CONSERVATIVE,
            OracleKind::Symbolic => &SYMBOLIC,
        }
    }
}

/// Register-carried edges are architectural facts, identical for every
/// oracle: the last write of an iteration feeds the next iteration's
/// upward-exposed reads (RAW, distance 1) and its first write (WAW,
/// distance 1), and the downward-exposed reads must complete before the
/// next iteration's first write (WAR, distance 1).
fn carried_register_edges(body: &[Instr]) -> Vec<CarriedEdge> {
    let mut defs: Vec<Vec<usize>> = vec![Vec::new(); Reg::DENSE_SPACE];
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); Reg::DENSE_SPACE];
    let mut reg_of: Vec<Option<Reg>> = vec![None; Reg::DENSE_SPACE];
    for (index, instr) in body.iter().enumerate() {
        instr.uses().iter().for_each(|reg| {
            let slot = reg.dense_index();
            reg_of[slot] = Some(reg);
            reads[slot].push(index);
        });
        if let Some(def) = instr.def() {
            let slot = def.dense_index();
            reg_of[slot] = Some(def);
            defs[slot].push(index);
        }
    }

    let mut edges = Vec::new();
    for slot in 0..Reg::DENSE_SPACE {
        let Some(reg) = reg_of[slot] else {
            continue;
        };
        let (Some(&first), Some(&last)) = (defs[slot].first(), defs[slot].last()) else {
            continue;
        };
        for &read in &reads[slot] {
            // A read at or before the first write sees the previous
            // iteration's final value (operands are read before the same
            // instruction's own write lands).
            if read <= first {
                edges.push(CarriedEdge {
                    pred: last,
                    succ: read,
                    kind: DepKind::Raw(reg),
                    distance: 1,
                });
            }
            // A read at or after the last write must precede the next
            // iteration's overwrite.
            if read >= last {
                edges.push(CarriedEdge {
                    pred: read,
                    succ: first,
                    kind: DepKind::War(reg),
                    distance: 1,
                });
            }
        }
        edges.push(CarriedEdge {
            pred: last,
            succ: first,
            kind: DepKind::Waw(reg),
            distance: 1,
        });
    }
    edges
}

/// Ordered memory pairs (at least one store) worth testing; both `(i, j)`
/// orders and `i == j` are meaningful across iterations.
fn memory_pairs(body: &[Instr]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (i, a) in body.iter().enumerate() {
        let Some((_, store_i)) = a.mem_ref() else {
            continue;
        };
        for (j, b) in body.iter().enumerate() {
            let Some((_, store_j)) = b.mem_ref() else {
                continue;
            };
            if store_i || store_j {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

fn conservative_carried_memory(body: &[Instr]) -> Vec<CarriedEdge> {
    memory_pairs(body)
        .into_iter()
        .filter(|&(i, j)| annotations_may_conflict(body, i, j))
        .map(|(i, j)| CarriedEdge {
            pred: i,
            succ: j,
            kind: DepKind::Memory,
            distance: 1,
        })
        .collect()
}

/// Cross-iteration verdict for one ordered address pair.
enum CarriedDistance {
    /// Provably never the same word, at any iteration distance.
    Never,
    /// First (minimal) conflicting distance.
    At(u64),
    /// No provable relation: assume distance 1.
    Unknown,
}

fn symbolic_carried_memory(body: &[Instr]) -> Vec<CarriedEdge> {
    let addrs = symbolic_addresses(body);
    let steps = induction_steps(body);
    let mut edges = Vec::new();
    for (i, j) in memory_pairs(body) {
        if !annotations_may_conflict(body, i, j) {
            continue;
        }
        let verdict = carried_distance(addrs[i], addrs[j], &steps);
        let distance = match verdict {
            CarriedDistance::Never => continue,
            CarriedDistance::At(d) => d,
            CarriedDistance::Unknown => 1,
        };
        edges.push(CarriedEdge {
            pred: i,
            succ: j,
            kind: DepKind::Memory,
            distance,
        });
    }
    edges
}

/// The minimal `d >= 1` with `addr_pred(iteration m) == addr_succ(m + d)`.
///
/// Both addresses must be affine in the *initial* value `V` of the same
/// induction register (`V + o`), and the register must advance by a known
/// `step` per iteration, so the succ side at distance `d` reads
/// `V + step·d + o_succ`. Conflict is the wrapping congruence
/// `step·d ≡ o_pred − o_succ (mod 2^64)`, handed to
/// [`solve_stride`](crate::scev::solve_stride).
fn carried_distance(
    pred: Option<SymAddr>,
    succ: Option<SymAddr>,
    steps: &[Option<i64>],
) -> CarriedDistance {
    let (Some(pred), Some(succ)) = (pred, succ) else {
        return CarriedDistance::Unknown;
    };
    match (pred, succ) {
        (SymAddr::Abs(a), SymAddr::Abs(b)) => {
            if a == b {
                CarriedDistance::At(1)
            } else {
                CarriedDistance::Never
            }
        }
        (SymAddr::Rel { vn: v1, offset: o1 }, SymAddr::Rel { vn: v2, offset: o2 }) if v1 == v2 => {
            // `vn < NUM_INT_REGS` names the initial value of that register;
            // fresh value numbers have no cross-iteration meaning.
            let Some(step) = steps.get(v1 as usize).copied().flatten() else {
                return CarriedDistance::Unknown;
            };
            match solve_stride(step, o1.wrapping_sub(o2)) {
                None => CarriedDistance::Never,
                Some((first, period)) => {
                    // Minimal d >= 1: `first` if positive, else one period
                    // further (period 0 encodes 2^64, beyond any cap).
                    let d = if first >= 1 {
                        first
                    } else if period != 0 {
                        period
                    } else {
                        return CarriedDistance::Never;
                    };
                    if d < CARRIED_DISTANCE_CAP {
                        CarriedDistance::At(d)
                    } else {
                        CarriedDistance::Never
                    }
                }
            }
        }
        _ => CarriedDistance::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_isa::{IntOp, IntReg, Label, MemAlias, Operand};

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn load(dst: u8, base: u8, offset: i64) -> Instr {
        Instr::Load {
            dst: r(dst),
            base: r(base),
            offset,
            alias: MemAlias::unknown(),
        }
    }

    fn store(src: u8, base: u8, offset: i64) -> Instr {
        Instr::Store {
            src: r(src),
            base: r(base),
            offset,
            alias: MemAlias::unknown(),
        }
    }

    fn addi(dst: u8, lhs: u8, imm: i64) -> Instr {
        Instr::IntOp {
            op: IntOp::Add,
            dst: r(dst),
            lhs: r(lhs),
            rhs: Operand::Imm(imm),
        }
    }

    fn back_branch() -> Instr {
        Instr::Br {
            cond: r(1),
            expect: true,
            target: Label::new(0),
        }
    }

    /// load r2 <- [r5]; store [r5 + write_off] <- r2; r5 += step; br loop.
    fn stride_body(step: i64, read_off: i64, write_off: i64) -> Vec<Instr> {
        vec![
            load(2, 5, read_off),
            store(2, 5, write_off),
            addi(5, 5, step),
            back_branch(),
        ]
    }

    fn memory_edges(oracle: &dyn LoopCarriedOracle, body: &[Instr]) -> Vec<(usize, usize, u64)> {
        oracle
            .loop_carried(body)
            .into_iter()
            .filter(|e| e.kind == DepKind::Memory)
            .map(|e| (e.pred, e.succ, e.distance))
            .collect()
    }

    #[test]
    fn detects_single_block_backward_loop() {
        let body = stride_body(1, 0, 0);
        let func = Function::new("f", body, vec![0]);
        let loops = innermost_machine_loops(&func);
        assert_eq!(loops, vec![MachineLoop { start: 0, end: 3 }]);
        assert_eq!(loops[0].body_len(), 4);
    }

    #[test]
    fn interior_control_or_entry_disqualifies() {
        // A call in the body.
        let with_call = Function::new(
            "f",
            vec![
                load(2, 5, 0),
                Instr::Call {
                    target: supersym_isa::FuncId::new(1),
                },
                back_branch(),
            ],
            vec![0],
        );
        assert!(innermost_machine_loops(&with_call).is_empty());
        // A branch from outside targeting the middle of the body.
        let mut body = vec![Instr::Br {
            cond: r(1),
            expect: false,
            target: Label::new(1),
        }];
        body.extend(stride_body(1, 0, 0));
        let with_entry = Function::new("f", body, vec![1, 3]);
        assert!(innermost_machine_loops(&with_entry).is_empty());
        // The same shape with the interior label unreferenced is fine:
        // nothing can reach it, so the body still runs whole.
        let unreferenced = Function::new("f", stride_body(1, 0, 0), vec![0, 2]);
        assert_eq!(
            innermost_machine_loops(&unreferenced),
            vec![MachineLoop { start: 0, end: 3 }]
        );
    }

    #[test]
    fn detects_top_tested_loop_with_jmp_latch() {
        // The front end's for-loop shape: header tests the bound and
        // conditionally exits forward; the latch is an unconditional jmp.
        //   0: add  r9 <- r5 + 0      (stand-in for the bound compare)
        //   1: bf   r9 -> exit (5)
        //   2: ld   r2 <- [r5]
        //   3: add  r5 <- r5 + 1
        //   4: jmp  header (0)
        //   5: ret
        let body = vec![
            addi(9, 5, 0),
            Instr::Br {
                cond: r(9),
                expect: false,
                target: Label::new(1),
            },
            load(2, 5, 0),
            addi(5, 5, 1),
            Instr::Jmp {
                target: Label::new(0),
            },
            Instr::Ret,
        ];
        let func = Function::new("f", body, vec![0, 5]);
        let loops = innermost_machine_loops(&func);
        assert_eq!(loops, vec![MachineLoop { start: 0, end: 4 }]);
        assert_eq!(loops[0].body_len(), 5);
    }

    #[test]
    fn induction_register_carries_distance_one_edges() {
        let body = stride_body(1, 0, 0);
        let edges = OracleKind::Symbolic.as_loop_oracle().loop_carried(&body);
        // r5: last def is the add at 2; upward-exposed reads at 0, 1, 2.
        assert!(edges.iter().any(|e| e.pred == 2
            && e.succ == 0
            && matches!(e.kind, DepKind::Raw(_))
            && e.distance == 1));
        assert!(edges
            .iter()
            .any(|e| e.pred == 2 && e.succ == 2 && matches!(e.kind, DepKind::Waw(_))));
    }

    #[test]
    fn unit_stride_same_slot_never_conflicts_across_iterations() {
        // store [r5]; r5 += 1: next iteration stores one word further,
        // and no later iteration ever returns (cap-bounded).
        let body = stride_body(1, 0, 0);
        let edges = memory_edges(OracleKind::Symbolic.as_loop_oracle(), &body);
        // In-iteration pair load/store share the address; carried store->
        // load at +1 means next iteration's load reads this iteration's
        // store only if read_off catches up: with equal offsets the load
        // at m+d reads V + d + 0, the store wrote V + 0 — never equal for
        // d >= 1. Self store-store likewise never. The only carried edges
        // are load(m) vs store(m+d): V+0 == V+d+0 has no d >= 1 solution.
        assert!(edges.is_empty(), "unexpected carried edges: {edges:?}");
    }

    #[test]
    fn write_ahead_creates_distance_one_flow() {
        // store [r5+1]; later iterations load [r5]: a[i+1] written, a[i]
        // read — the classic distance-1 recurrence (pred = store at 1,
        // succ = load at 0).
        let body = stride_body(1, 0, 1);
        let edges = memory_edges(OracleKind::Symbolic.as_loop_oracle(), &body);
        assert!(edges.contains(&(1, 0, 1)), "edges: {edges:?}");
        // The opposite direction (load before store catches up) solves
        // 1·d ≡ -1: d = 2^64 - 1, beyond the cap — independent.
        assert!(!edges.iter().any(|&(p, s, _)| (p, s) == (0, 1)));
    }

    #[test]
    fn distance_two_recurrence_found_exactly() {
        let body = stride_body(1, 0, 2);
        let edges = memory_edges(OracleKind::Symbolic.as_loop_oracle(), &body);
        assert!(edges.contains(&(1, 0, 2)), "edges: {edges:?}");
    }

    #[test]
    fn stride_two_proves_odd_even_independence() {
        // store [r5+1]; load [r5]; r5 += 2: stores hit odd slots, loads
        // even slots — 2·d ≡ 1 (mod 2^64) has no solution.
        let body = stride_body(2, 0, 1);
        let edges = memory_edges(OracleKind::Symbolic.as_loop_oracle(), &body);
        assert!(edges.is_empty(), "edges: {edges:?}");
    }

    #[test]
    fn symbolic_carried_edges_subset_of_conservative() {
        for body in [
            stride_body(1, 0, 1),
            stride_body(2, 0, 1),
            stride_body(1, 3, 0),
            vec![load(2, 5, 0), store(2, 6, 0), addi(5, 5, 1), back_branch()],
        ] {
            let conservative = OracleKind::Conservative
                .as_loop_oracle()
                .loop_carried(&body);
            let symbolic = OracleKind::Symbolic.as_loop_oracle().loop_carried(&body);
            for edge in &symbolic {
                assert!(
                    conservative
                        .iter()
                        .any(|c| (c.pred, c.succ) == (edge.pred, edge.succ)
                            && matches!(
                                (c.kind, edge.kind),
                                (DepKind::Memory, DepKind::Memory)
                                    | (DepKind::Raw(_), DepKind::Raw(_))
                                    | (DepKind::War(_), DepKind::War(_))
                                    | (DepKind::Waw(_), DepKind::Waw(_))
                            )),
                    "symbolic edge {edge} not covered conservatively"
                );
                assert!(edge.distance >= 1);
            }
        }
    }

    #[test]
    fn conservative_keeps_every_conflicting_pair_at_distance_one() {
        let body = stride_body(1, 0, 1);
        let edges = memory_edges(OracleKind::Conservative.as_loop_oracle(), &body);
        // load/store, store/load, store/store — all unknown aliases.
        assert!(edges.contains(&(0, 1, 1)));
        assert!(edges.contains(&(1, 0, 1)));
        assert!(edges.contains(&(1, 1, 1)));
    }
}
