//! Scalar evolution and cross-iteration dependence testing.
//!
//! For each loop of the [`crate::loop_forest`], a small chains-of-recurrences
//! analysis expresses every variable's value at any point of the body as
//! *its value at the header entry of the current iteration, plus a constant*
//! ([`Scev`]). A variable whose latch-exit value is `self + c` on every
//! latch is an induction variable with step `c`; array subscripts that
//! evaluate to `induction + offset` are affine ([`Subscript::Linear`]).
//!
//! Cross-iteration dependence testing is then ZIV/SIV subscript testing
//! over those forms, **wrapping-sound**: two subscripts `v + o1` (iteration
//! `m`) and `v + o2` (iteration `m + d`) collide exactly when
//! `step·d ≡ o1 − o2 (mod 2^64)`, a linear congruence solved exactly by
//! [`solve_stride`]. No solution proves independence; a solution yields the
//! *distance* `d` of the loop-carried dependence (`d = 0` is a
//! loop-independent one). Anything non-affine degrades to a conservative
//! dependence at unknown distance — the analysis only ever *removes* edges
//! relative to assuming everything conflicts.

use crate::loops::{loop_forest, LoopForest};
use std::collections::BTreeMap;
use std::fmt;
use supersym_ir::{BlockId, Function, GlobalId, Inst, IntBinOp, VReg, VarRef};

/// A chains-of-recurrences value: what a variable (or vreg) is worth,
/// relative to the loop header entry of the *current* iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scev {
    /// A compile-time constant.
    Const(i64),
    /// The value `var` had when the current iteration entered the header,
    /// plus a wrapping constant.
    Entry {
        /// The variable whose header-entry value anchors this expression.
        var: VarRef,
        /// Wrapping offset from that value.
        offset: i64,
    },
    /// Anything else.
    Unknown,
}

impl Scev {
    fn offset_by(self, k: i64) -> Scev {
        match self {
            Scev::Const(c) => Scev::Const(c.wrapping_add(k)),
            Scev::Entry { var, offset } => Scev::Entry {
                var,
                offset: offset.wrapping_add(k),
            },
            Scev::Unknown => Scev::Unknown,
        }
    }

    fn join(self, other: Scev) -> Scev {
        if self == other {
            self
        } else {
            Scev::Unknown
        }
    }
}

impl fmt::Display for Scev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scev::Const(c) => write!(f, "{c}"),
            Scev::Entry { var, offset } if *offset == 0 => write!(f, "{var}@entry"),
            Scev::Entry { var, offset } => write!(f, "{var}@entry{offset:+}"),
            Scev::Unknown => f.write_str("unknown"),
        }
    }
}

/// An induction variable of one loop: `{base, +, step}` in
/// chains-of-recurrences notation (`step == 0` means loop-invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Induction {
    /// The variable.
    pub var: VarRef,
    /// Its per-iteration (wrapping) step.
    pub step: i64,
}

/// The classified subscript of one array access within a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subscript {
    /// The subscript is a loop-invariant constant (ZIV).
    Ziv(i64),
    /// The subscript is `var@entry + offset` where `var` advances by
    /// `stride` each iteration (SIV; `stride == 0` is a symbolic ZIV).
    Linear {
        /// The induction variable.
        var: VarRef,
        /// The variable's per-iteration step.
        stride: i64,
        /// Constant offset from the variable.
        offset: i64,
    },
    /// Not recognized; the dependence tester assumes the worst.
    Unknown,
}

impl fmt::Display for Subscript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subscript::Ziv(c) => write!(f, "[{c}]"),
            Subscript::Linear {
                var,
                stride,
                offset,
            } => write!(f, "[{var}{offset:+} ; +{stride}/iter]"),
            Subscript::Unknown => f.write_str("[?]"),
        }
    }
}

/// One array access inside a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopAccess {
    /// Block the access is in.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
    /// The array.
    pub arr: GlobalId,
    /// Whether it writes (`WriteElem`) or reads (`ReadElem`).
    pub is_write: bool,
    /// The classified subscript.
    pub subscript: Subscript,
}

/// The dependence distance between two accesses, in iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// Proven exact distance (`0` = loop-independent, `d > 0` = carried
    /// across `d` iterations; direction `<` in vector notation).
    Exact(u64),
    /// Unknown — the conservative `*` direction.
    Any,
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distance::Exact(0) => f.write_str("= (loop-independent)"),
            Distance::Exact(d) => write!(f, "< distance {d}"),
            Distance::Any => f.write_str("* (unknown)"),
        }
    }
}

/// The kind of a memory dependence between two accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemDepKind {
    /// Write then read (RAW).
    Flow,
    /// Read then write (WAR).
    Anti,
    /// Write then write (WAW).
    Output,
}

impl fmt::Display for MemDepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemDepKind::Flow => "flow",
            MemDepKind::Anti => "anti",
            MemDepKind::Output => "output",
        })
    }
}

/// One dependence between two accesses of a loop ([`LoopScev::accesses`]
/// indices): the access at `src` in iteration `m` conflicts with the one at
/// `dst` in iteration `m + distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDep {
    /// Source access index.
    pub src: usize,
    /// Destination access index.
    pub dst: usize,
    /// Flow/anti/output, as seen from `src`.
    pub kind: MemDepKind,
    /// Distance in iterations.
    pub distance: Distance,
}

/// Scalar-evolution facts for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopScev {
    /// Index of the loop in the [`LoopForest`].
    pub loop_index: usize,
    /// Induction variables (including loop-invariant ones, `step == 0`),
    /// sorted by variable.
    pub inductions: Vec<Induction>,
    /// Array accesses in the body, in block/instruction order.
    pub accesses: Vec<LoopAccess>,
    /// Cross- and same-iteration dependences between those accesses.
    pub deps: Vec<LoopDep>,
}

/// Scalar evolution over every loop of a function: the forest plus one
/// [`LoopScev`] per loop (same order as [`LoopForest::loops`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionScev {
    /// The loop forest.
    pub forest: LoopForest,
    /// Per-loop facts, parallel to `forest.loops`.
    pub loops: Vec<LoopScev>,
}

/// Runs loop discovery and scalar evolution over one function.
#[must_use]
pub fn function_scev(func: &Function) -> FunctionScev {
    let forest = loop_forest(func);
    let loops = (0..forest.loops.len())
        .map(|i| analyze_loop(func, &forest, i))
        .collect();
    FunctionScev { forest, loops }
}

/// The exact solution set of the wrapping congruence
/// `stride · d ≡ delta (mod 2^64)`: the smallest non-negative solution and
/// the period (solutions are `first + k·period` for all `k ≥ 0`; a period
/// of `0` encodes 2^64).
///
/// `stride == 0` has solutions (every `d`) only when `delta == 0`.
/// Otherwise, with `t = stride.trailing_zeros()`, solutions exist iff
/// `2^t` divides `delta`, and the period is `2^(64−t)`.
#[must_use]
pub fn solve_stride(stride: i64, delta: i64) -> Option<(u64, u64)> {
    let (s, d) = (stride as u64, delta as u64);
    if s == 0 {
        return (d == 0).then_some((0, 1));
    }
    let t = s.trailing_zeros();
    if t > 0 && d & ((1u64 << t) - 1) != 0 {
        return None;
    }
    let odd = s >> t;
    // Inverse of an odd number mod 2^64 by Newton iteration:
    // x_{k+1} = x_k (2 − odd·x_k) doubles the number of correct low bits.
    let mut inv: u64 = 1;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(odd.wrapping_mul(inv)));
    }
    debug_assert_eq!(odd.wrapping_mul(inv), 1);
    let first = (d >> t).wrapping_mul(inv);
    if t == 0 {
        Some((first, 0)) // period 2^64
    } else {
        let period = 1u64 << (64 - t);
        Some((first & (period - 1), period))
    }
}

/// A variable state during the loop walk. Absent entries mean *identity*
/// (the variable still holds its header-entry value) — unless a call has
/// run, which clobbers every global scalar the map does not pin explicitly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VarState {
    vars: BTreeMap<VarRef, Scev>,
    globals_clobbered: bool,
}

impl VarState {
    fn value(&self, var: VarRef) -> Scev {
        match self.vars.get(&var) {
            Some(&v) => v,
            None if self.globals_clobbered && matches!(var, VarRef::Global(_)) => Scev::Unknown,
            None => Scev::Entry { var, offset: 0 },
        }
    }

    fn set(&mut self, var: VarRef, value: Scev) {
        self.vars.insert(var, value);
    }

    fn clobber_globals(&mut self) {
        self.globals_clobbered = true;
        let globals: Vec<VarRef> = self
            .vars
            .keys()
            .copied()
            .filter(|v| matches!(v, VarRef::Global(_)))
            .collect();
        for var in globals {
            self.vars.insert(var, Scev::Unknown);
        }
    }

    fn join(&self, other: &VarState) -> VarState {
        let mut out = VarState {
            vars: BTreeMap::new(),
            globals_clobbered: self.globals_clobbered || other.globals_clobbered,
        };
        let keys: Vec<VarRef> = self.vars.keys().chain(other.vars.keys()).copied().collect();
        for var in keys {
            out.vars.insert(var, self.value(var).join(other.value(var)));
        }
        // A clobber on either side must also degrade globals the *other*
        // side never mentioned; `value` handles that lazily through the
        // flag, so nothing more to materialize here.
        out
    }
}

fn analyze_loop(func: &Function, forest: &LoopForest, loop_index: usize) -> LoopScev {
    let info = &forest.loops[loop_index];
    let header = info.header;

    // Per-block entry states, fixpointed over in-loop edges only. The
    // header's entry state is the identity by definition (each variable is
    // its own header-entry value); back edges are deliberately not joined
    // into it — they describe the *next* iteration.
    let mut entry: BTreeMap<BlockId, VarState> = BTreeMap::new();
    entry.insert(header, VarState::default());
    let mut changed = true;
    while changed {
        changed = false;
        for &block in &info.body {
            let Some(state) = entry.get(&block).cloned() else {
                continue; // not yet reached from the header
            };
            let out = transfer_block(func, block, state);
            for succ in func.blocks[block.index()].term.successors() {
                if succ == header || !info.contains(succ) {
                    continue;
                }
                let merged = match entry.get(&succ) {
                    None => out.clone(),
                    Some(existing) => existing.join(&out),
                };
                if entry.get(&succ) != Some(&merged) {
                    entry.insert(succ, merged);
                    changed = true;
                }
            }
        }
    }

    // Induction variables: consistent `self + step` on every latch exit.
    // `Some(step)` = induction so far, `None` = disqualified.
    let mut steps: BTreeMap<VarRef, Option<i64>> = BTreeMap::new();
    let mut any_clobber = false;
    for (latch_index, &latch) in info.latches.iter().enumerate() {
        let state = entry.get(&latch).cloned().unwrap_or_default();
        let out = transfer_block(func, latch, state);
        any_clobber |= out.globals_clobbered;
        let mut vars: Vec<VarRef> = out.vars.keys().copied().collect();
        vars.extend(steps.keys().copied());
        vars.sort_unstable();
        vars.dedup();
        for var in vars {
            let step = match out.value(var) {
                Scev::Entry { var: v, offset } if v == var => Some(offset),
                _ => None,
            };
            match steps.get(&var) {
                // Unseen by earlier latches means identity (step 0) there.
                None if latch_index == 0 => {
                    steps.insert(var, step);
                }
                None => {
                    steps.insert(var, step.filter(|&s| s == 0));
                }
                Some(&prev) => {
                    steps.insert(var, prev.filter(|&p| step == Some(p)));
                }
            }
        }
    }
    let step_of = |var: VarRef| -> Option<i64> {
        match steps.get(&var) {
            Some(&s) => s,
            // Untouched by every latch path: invariant — unless it is a
            // global and some call may have rewritten it.
            None if any_clobber && matches!(var, VarRef::Global(_)) => None,
            None => Some(0),
        }
    };
    let inductions: Vec<Induction> = steps
        .iter()
        .filter_map(|(&var, &step)| step.map(|step| Induction { var, step }))
        .collect();

    // Classify every array access in the body.
    let mut accesses = Vec::new();
    for &block in &info.body {
        let facts = entry
            .get(&block)
            .cloned()
            .map(|state| eval_block(func, block, state));
        for (inst_index, inst) in func.blocks[block.index()].insts.iter().enumerate() {
            let (arr, index, is_write) = match inst {
                Inst::ReadElem { arr, index, .. } => (*arr, *index, false),
                Inst::WriteElem { arr, index, .. } => (*arr, *index, true),
                _ => continue,
            };
            let value = facts
                .as_ref()
                .and_then(|f| f.get(&(inst_index, index)).copied())
                .unwrap_or(Scev::Unknown);
            let subscript = match value {
                Scev::Const(c) => Subscript::Ziv(c),
                Scev::Entry { var, offset } => match step_of(var) {
                    Some(stride) => Subscript::Linear {
                        var,
                        stride,
                        offset,
                    },
                    None => Subscript::Unknown,
                },
                Scev::Unknown => Subscript::Unknown,
            };
            accesses.push(LoopAccess {
                block,
                inst: inst_index,
                arr,
                is_write,
                subscript,
            });
        }
    }

    // Pairwise ZIV/SIV testing.
    let mut deps = Vec::new();
    for i in 0..accesses.len() {
        for j in (i + 1)..accesses.len() {
            test_pair(&accesses, i, j, &mut deps);
        }
    }

    LoopScev {
        loop_index,
        inductions,
        accesses,
        deps,
    }
}

/// Largest carried distance worth reporting individually; congruence
/// solutions beyond it cannot occur in any simulated loop (iteration counts
/// are far below 2^32), so proven-distant is as good as proven-independent.
const DISTANCE_CAP: u64 = 1 << 32;

fn test_pair(accesses: &[LoopAccess], i: usize, j: usize, deps: &mut Vec<LoopDep>) {
    let (a, b) = (&accesses[i], &accesses[j]);
    if a.arr != b.arr || (!a.is_write && !b.is_write) {
        return;
    }
    let kind = |src: &LoopAccess, dst: &LoopAccess| match (src.is_write, dst.is_write) {
        (true, false) => MemDepKind::Flow,
        (false, true) => MemDepKind::Anti,
        (true, true) => MemDepKind::Output,
        (false, false) => unreachable!("filtered above"),
    };
    // A dependence src -> dst at distance d means the access at src in
    // iteration m and the one at dst in iteration m+d collide; for
    // subscripts `v + o_src` and `v + o_dst` that is
    // `stride·d ≡ o_src − o_dst (mod 2^64)`.
    let mut push = |src: usize, dst: usize, distance: Distance| {
        deps.push(LoopDep {
            src,
            dst,
            kind: kind(&accesses[src], &accesses[dst]),
            distance,
        });
    };
    match (a.subscript, b.subscript) {
        (Subscript::Ziv(c1), Subscript::Ziv(c2)) => {
            if c1 == c2 {
                // The same word every iteration: dependences at every
                // distance; report the loop-independent one and the
                // tightest carried one in each direction.
                push(i, j, Distance::Exact(0));
                push(i, j, Distance::Exact(1));
                push(j, i, Distance::Exact(1));
            }
        }
        (
            Subscript::Linear {
                var: v1,
                stride,
                offset: o1,
            },
            Subscript::Linear {
                var: v2,
                stride: s2,
                offset: o2,
            },
        ) if v1 == v2 && stride == s2 => {
            let mut direction = |src: usize, dst: usize, delta: i64| {
                if let Some((first, period)) = solve_stride(stride, delta) {
                    if first == 0 {
                        if src < dst {
                            push(src, dst, Distance::Exact(0));
                        }
                        if period != 0 && period < DISTANCE_CAP {
                            push(src, dst, Distance::Exact(period));
                        }
                    } else if first < DISTANCE_CAP {
                        push(src, dst, Distance::Exact(first));
                    }
                }
            };
            direction(i, j, o1.wrapping_sub(o2));
            direction(j, i, o2.wrapping_sub(o1));
        }
        _ => {
            // Non-affine or unrelated bases: assume everything.
            push(i, j, Distance::Any);
            push(j, i, Distance::Any);
        }
    }
}

/// Applies a block's instructions to a variable state.
fn transfer_block(func: &Function, block: BlockId, mut state: VarState) -> VarState {
    let mut vregs: BTreeMap<VReg, Scev> = BTreeMap::new();
    for inst in &func.blocks[block.index()].insts {
        step_inst(inst, &mut state, &mut vregs);
    }
    state
}

/// Like [`transfer_block`], but records the value of every subscript vreg
/// at its access instruction — evaluated *before* the instruction runs.
fn eval_block(
    func: &Function,
    block: BlockId,
    mut state: VarState,
) -> BTreeMap<(usize, VReg), Scev> {
    let mut vregs: BTreeMap<VReg, Scev> = BTreeMap::new();
    let mut facts = BTreeMap::new();
    for (index, inst) in func.blocks[block.index()].insts.iter().enumerate() {
        if let Inst::ReadElem { index: sub, .. } | Inst::WriteElem { index: sub, .. } = inst {
            let value = vregs.get(sub).copied().unwrap_or(Scev::Unknown);
            facts.insert((index, *sub), value);
        }
        step_inst(inst, &mut state, &mut vregs);
    }
    facts
}

fn step_inst(inst: &Inst, state: &mut VarState, vregs: &mut BTreeMap<VReg, Scev>) {
    let value = match inst {
        Inst::ConstInt { value, .. } => Scev::Const(*value),
        Inst::ReadVar { var, .. } => state.value(*var),
        Inst::IntBin { op, lhs, rhs, .. } => {
            let l = vregs.get(lhs).copied().unwrap_or(Scev::Unknown);
            let r = vregs.get(rhs).copied().unwrap_or(Scev::Unknown);
            match (op, l, r) {
                (IntBinOp::Add, Scev::Const(a), Scev::Const(b)) => Scev::Const(a.wrapping_add(b)),
                (IntBinOp::Add, v, Scev::Const(k)) | (IntBinOp::Add, Scev::Const(k), v) => {
                    v.offset_by(k)
                }
                (IntBinOp::Sub, Scev::Const(a), Scev::Const(b)) => Scev::Const(a.wrapping_sub(b)),
                (IntBinOp::Sub, v, Scev::Const(k)) => v.offset_by(k.wrapping_neg()),
                (IntBinOp::Mul, Scev::Const(a), Scev::Const(b)) => Scev::Const(a.wrapping_mul(b)),
                _ => Scev::Unknown,
            }
        }
        Inst::WriteVar { var, src } => {
            let value = vregs.get(src).copied().unwrap_or(Scev::Unknown);
            state.set(*var, value);
            return;
        }
        Inst::Call { dst, .. } => {
            // The callee may write any global scalar; locals are private.
            state.clobber_globals();
            if let Some(dst) = dst {
                vregs.insert(*dst, Scev::Unknown);
            }
            return;
        }
        _ => Scev::Unknown,
    };
    if let Some(dst) = inst.dst() {
        vregs.insert(dst, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_ir::{Block, LocalId, Terminator};
    use supersym_lang::ast::Ty;

    fn local(i: u32) -> VarRef {
        VarRef::Local(LocalId(i))
    }

    /// `for (i = 0; …; i = i + step) { a[i + read_off] (read); a[i + write_off] = … }`
    /// as a two-block loop: header/body block 1 with the accesses and the
    /// induction update, latched back to itself.
    fn strided_loop(step: i64, read_off: i64, write_off: i64) -> Function {
        let body = Block {
            insts: vec![
                // %0 = i
                Inst::ReadVar {
                    dst: VReg(0),
                    var: local(0),
                },
                // %1 = read_off; %2 = i + read_off; %3 = a[%2]
                Inst::ConstInt {
                    dst: VReg(1),
                    value: read_off,
                },
                Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: VReg(2),
                    lhs: VReg(0),
                    rhs: VReg(1),
                },
                Inst::ReadElem {
                    dst: VReg(3),
                    arr: GlobalId(0),
                    index: VReg(2),
                    origin: None,
                },
                // %4 = write_off; %5 = i + write_off; a[%5] = %3
                Inst::ConstInt {
                    dst: VReg(4),
                    value: write_off,
                },
                Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: VReg(5),
                    lhs: VReg(0),
                    rhs: VReg(4),
                },
                Inst::WriteElem {
                    arr: GlobalId(0),
                    index: VReg(5),
                    src: VReg(3),
                    origin: None,
                },
                // i = i + step
                Inst::ConstInt {
                    dst: VReg(6),
                    value: step,
                },
                Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: VReg(7),
                    lhs: VReg(0),
                    rhs: VReg(6),
                },
                Inst::WriteVar {
                    var: local(0),
                    src: VReg(7),
                },
                // loop condition
                Inst::ConstInt {
                    dst: VReg(8),
                    value: 1,
                },
            ],
            term: Terminator::Branch {
                cond: VReg(8),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            },
        };
        Function {
            name: "f".into(),
            vars: vec![supersym_ir::VarInfo {
                name: "i".into(),
                ty: Ty::Int,
                param_index: None,
            }],
            ret: None,
            blocks: vec![
                Block::empty(Terminator::Jump(BlockId(1))),
                body,
                Block::empty(Terminator::Return(None)),
            ],
            vreg_tys: vec![Ty::Int; 9],
        }
    }

    #[test]
    fn induction_variable_found_with_step() {
        let scev = function_scev(&strided_loop(3, 0, 1));
        assert_eq!(scev.loops.len(), 1);
        let facts = &scev.loops[0];
        assert!(facts
            .inductions
            .iter()
            .any(|iv| iv.var == local(0) && iv.step == 3));
    }

    #[test]
    fn affine_subscripts_classified() {
        let scev = function_scev(&strided_loop(1, 0, 1));
        let facts = &scev.loops[0];
        assert_eq!(facts.accesses.len(), 2);
        assert_eq!(
            facts.accesses[0].subscript,
            Subscript::Linear {
                var: local(0),
                stride: 1,
                offset: 0
            }
        );
        assert_eq!(
            facts.accesses[1].subscript,
            Subscript::Linear {
                var: local(0),
                stride: 1,
                offset: 1
            }
        );
    }

    #[test]
    fn unit_stride_distance_one() {
        // read a[i], write a[i+1]: the write in iteration m collides with
        // the read in iteration m+1 — a carried anti... no: write at m hits
        // read at m+1's address? a[i_m + 1] == a[i_{m+1} + 0] — yes:
        // write (access 1) -> read (access 0) at distance 1 (flow).
        let scev = function_scev(&strided_loop(1, 0, 1));
        let deps = &scev.loops[0].deps;
        assert!(
            deps.iter().any(|d| d.src == 1
                && d.dst == 0
                && d.kind == MemDepKind::Flow
                && d.distance == Distance::Exact(1)),
            "{deps:?}"
        );
        // The opposite direction (read then write hitting the same word
        // d iterations later) has no small solution: 1·d ≡ −1 has only the
        // huge wrap-around solution, which the cap suppresses.
        assert!(
            !deps
                .iter()
                .any(|d| d.src == 0 && d.dst == 1 && matches!(d.distance, Distance::Exact(_))),
            "{deps:?}"
        );
    }

    #[test]
    fn distance_two_resolved() {
        // read a[i], write a[i+2], stride 1: distance 2.
        let scev = function_scev(&strided_loop(1, 0, 2));
        let deps = &scev.loops[0].deps;
        assert!(deps
            .iter()
            .any(|d| d.src == 1 && d.dst == 0 && d.distance == Distance::Exact(2)));
    }

    #[test]
    fn strided_accesses_proven_independent() {
        // read a[i], write a[i+1], stride 2: 2·d ≡ ±1 (mod 2^64) has no
        // solution — provably no dependence at any distance.
        let scev = function_scev(&strided_loop(2, 0, 1));
        assert!(scev.loops[0].deps.is_empty());
    }

    #[test]
    fn same_location_dependence_is_loop_independent_and_carried() {
        // read a[i], write a[i]: distance 0 (same iteration) and the
        // stride-periodic wrap is beyond the cap for stride 1.
        let scev = function_scev(&strided_loop(1, 0, 0));
        let deps = &scev.loops[0].deps;
        assert!(deps
            .iter()
            .any(|d| d.src == 0 && d.dst == 1 && d.distance == Distance::Exact(0)));
    }

    #[test]
    fn solve_stride_cases() {
        // 1·d ≡ 5: d = 5, period 2^64.
        assert_eq!(solve_stride(1, 5), Some((5, 0)));
        // 2·d ≡ 1: no solution.
        assert_eq!(solve_stride(2, 1), None);
        // 2·d ≡ 6: d = 3, period 2^63.
        assert_eq!(solve_stride(2, 6), Some((3, 1u64 << 63)));
        // 0·d ≡ 0: every d.
        assert_eq!(solve_stride(0, 0), Some((0, 1)));
        // 0·d ≡ 3: none.
        assert_eq!(solve_stride(0, 3), None);
        // Negative stride: −1·d ≡ 1 → d = 2^64 − 1 (wrapping exact).
        assert_eq!(solve_stride(-1, 1), Some((u64::MAX, 0)));
        // 4·d ≡ 2: no solution (2 not divisible by 4's power of two).
        assert_eq!(solve_stride(4, 2), None);
        // 12·d ≡ 36: d = 3 is the smallest solution.
        let (first, period) = solve_stride(12, 36).unwrap();
        assert_eq!(first % period, 3 % period);
        assert_eq!(first, 3);
    }

    #[test]
    fn call_clobbers_global_scev() {
        // A loop body that calls another function loses track of globals.
        let g = VarRef::Global(GlobalId(0));
        let body = Block {
            insts: vec![
                Inst::Call {
                    dst: None,
                    callee: 1,
                    args: vec![],
                },
                Inst::ReadVar {
                    dst: VReg(0),
                    var: g,
                },
                Inst::ReadElem {
                    dst: VReg(1),
                    arr: GlobalId(1),
                    index: VReg(0),
                    origin: None,
                },
                Inst::ConstInt {
                    dst: VReg(2),
                    value: 1,
                },
            ],
            term: Terminator::Branch {
                cond: VReg(2),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            },
        };
        let func = Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![
                Block::empty(Terminator::Jump(BlockId(1))),
                body,
                Block::empty(Terminator::Return(None)),
            ],
            vreg_tys: vec![Ty::Int; 3],
        };
        let scev = function_scev(&func);
        assert_eq!(
            scev.loops[0].accesses[0].subscript,
            Subscript::Unknown,
            "a global read after a call must not classify"
        );
    }
}
