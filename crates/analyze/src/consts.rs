//! Conditional constant propagation.
//!
//! Tracks which integer variables hold compile-time constants at each block
//! boundary, *pruning provably-dead CFG edges as it goes*: when a block's
//! branch condition evaluates to a constant, facts only flow down the taken
//! edge, and blocks reachable solely through untaken edges never pollute
//! the solution (the "conditional" in Wegman–Zadeck's conditional constant
//! propagation, here over block-local vreg evaluation instead of SSA).
//!
//! Integer evaluation mirrors the simulator exactly ([`eval_int`] — the
//! wrapping semantics, division by zero yielding 0, remainder by zero
//! yielding the dividend), so a folded fact is precisely what the machine
//! would compute.

use crate::engine::{Analysis, Direction};
use std::collections::{BTreeMap, HashMap};
use supersym_ir::{BlockId, CmpOp, Function, Inst, IntBinOp, Module, Terminator, VReg, VarRef};
use supersym_lang::ast::Ty;

/// The constant-propagation state at a block boundary.
///
/// `vars: None` means the point is unreached (lattice bottom). In a
/// reached state, a variable mapped to `v` is *known equal to `v`*; an
/// absent variable is varying (lattice top), so the map only stores
/// positive facts and the pointwise join is key intersection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConstState {
    /// Known-constant integer variables, `None` when unreached.
    pub vars: Option<BTreeMap<VarRef, i64>>,
    /// For exit states of blocks ending in a two-way branch: the branch
    /// verdict when the condition is provably constant. Always `None` on
    /// entry states.
    pub branch: Option<bool>,
}

/// The conditional constant propagation analysis (forward).
#[derive(Debug, Clone, Copy)]
pub struct ConstProp<'m> {
    module: &'m Module,
}

impl<'m> ConstProp<'m> {
    /// Creates the analysis for functions of `module`.
    #[must_use]
    pub fn new(module: &'m Module) -> Self {
        ConstProp { module }
    }

    fn var_ty(&self, func: &Function, var: VarRef) -> Ty {
        match var {
            VarRef::Global(g) => self.module.globals[g.0 as usize].ty,
            VarRef::Local(l) => func.vars[l.0 as usize].ty,
        }
    }

    /// Walks `block` from `vars_in`, calling `visit(index, inst, vregs)`
    /// before applying each instruction's effect (`vregs` maps every
    /// previously-defined known-constant vreg to its value). Returns the
    /// variable map at block exit and the branch verdict, if any.
    pub fn walk_block(
        &self,
        func: &Function,
        block: BlockId,
        vars_in: &BTreeMap<VarRef, i64>,
        mut visit: impl FnMut(usize, &Inst, &HashMap<VReg, i64>),
    ) -> (BTreeMap<VarRef, i64>, Option<bool>) {
        let mut vars = vars_in.clone();
        let mut vregs: HashMap<VReg, i64> = HashMap::new();
        let block_data = &func.blocks[block.index()];
        for (index, inst) in block_data.insts.iter().enumerate() {
            visit(index, inst, &vregs);
            match inst {
                Inst::ConstInt { dst, value } => {
                    vregs.insert(*dst, *value);
                }
                Inst::IntBin { op, dst, lhs, rhs } => {
                    if let (Some(&a), Some(&b)) = (vregs.get(lhs), vregs.get(rhs)) {
                        vregs.insert(*dst, eval_int(*op, a, b));
                    }
                }
                Inst::ReadVar { dst, var } => {
                    if let Some(&v) = vars.get(var) {
                        vregs.insert(*dst, v);
                    }
                }
                Inst::WriteVar { var, src } => match vregs.get(src) {
                    Some(&v) if self.var_ty(func, *var) == Ty::Int => {
                        vars.insert(*var, v);
                    }
                    _ => {
                        vars.remove(var);
                    }
                },
                Inst::Call { .. } => {
                    // The callee may write any global.
                    vars.retain(|var, _| matches!(var, VarRef::Local(_)));
                }
                // Floats, casts and array reads are not tracked: their
                // destinations stay varying.
                Inst::ConstFloat { .. }
                | Inst::FloatBin { .. }
                | Inst::FloatCmp { .. }
                | Inst::Cast { .. }
                | Inst::ReadElem { .. }
                | Inst::WriteElem { .. } => {}
            }
        }
        let branch = match &block_data.term {
            Terminator::Branch { cond, .. } => vregs.get(cond).map(|&v| v != 0),
            _ => None,
        };
        (vars, branch)
    }
}

impl Analysis for ConstProp<'_> {
    type State = ConstState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _func: &Function) -> ConstState {
        // Nothing is known at entry: parameters and globals are varying.
        ConstState {
            vars: Some(BTreeMap::new()),
            branch: None,
        }
    }

    fn bottom(&self, _func: &Function) -> ConstState {
        ConstState::default()
    }

    fn transfer(&self, func: &Function, block: BlockId, state: &mut ConstState) {
        let Some(vars) = state.vars.take() else {
            return; // unreached; nothing to transfer
        };
        let (vars, branch) = self.walk_block(func, block, &vars, |_, _, _| {});
        state.vars = Some(vars);
        state.branch = branch;
    }

    fn join(&self, into: &mut ConstState, from: &ConstState) -> bool {
        into.branch = None;
        let Some(from_vars) = &from.vars else {
            return false;
        };
        match &mut into.vars {
            None => {
                into.vars = Some(from_vars.clone());
                true
            }
            Some(into_vars) => {
                let before = into_vars.len();
                into_vars.retain(|var, value| from_vars.get(var) == Some(value));
                before != into_vars.len()
            }
        }
    }

    fn edge_is_live(&self, func: &Function, from: BlockId, to: BlockId, exit: &ConstState) -> bool {
        let Some(taken) = exit.branch else {
            return true;
        };
        match &func.blocks[from.index()].term {
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    return true;
                }
                if taken {
                    to == *then_bb
                } else {
                    to == *else_bb
                }
            }
            _ => true,
        }
    }
}

/// Integer evaluation matching the simulator's semantics exactly: wrapping
/// arithmetic, `x / 0 = 0`, `x rem 0 = x`, shift counts modulo 64.
#[must_use]
pub fn eval_int(op: IntBinOp, a: i64, b: i64) -> i64 {
    match op {
        IntBinOp::Add => a.wrapping_add(b),
        IntBinOp::Sub => a.wrapping_sub(b),
        IntBinOp::Mul => a.wrapping_mul(b),
        IntBinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        IntBinOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        IntBinOp::And => a & b,
        IntBinOp::Or => a | b,
        IntBinOp::Xor => a ^ b,
        IntBinOp::Shl => a.wrapping_shl(b as u32 & 63),
        IntBinOp::Shr => a.wrapping_shr(b as u32 & 63),
        IntBinOp::Cmp(cmp) => i64::from(match cmp {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::solve;
    use supersym_ir::{Block, GlobalId, LocalId, VarInfo};

    fn local(i: u32) -> VarRef {
        VarRef::Local(LocalId(i))
    }

    fn int_var(name: &str) -> VarInfo {
        VarInfo {
            name: name.into(),
            ty: Ty::Int,
            param_index: None,
        }
    }

    /// bb0: x = 5; if (x > 3) goto bb1 else bb2.
    /// bb1: y = x + 1; return. bb2 (dead): y = 0; return.
    fn constant_branch_func() -> Function {
        Function {
            name: "f".into(),
            vars: vec![int_var("x"), int_var("y")],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::ConstInt {
                            dst: VReg(0),
                            value: 5,
                        },
                        Inst::WriteVar {
                            var: local(0),
                            src: VReg(0),
                        },
                        Inst::ConstInt {
                            dst: VReg(1),
                            value: 3,
                        },
                        Inst::IntBin {
                            op: IntBinOp::Cmp(CmpOp::Gt),
                            dst: VReg(2),
                            lhs: VReg(0),
                            rhs: VReg(1),
                        },
                    ],
                    term: Terminator::Branch {
                        cond: VReg(2),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    insts: vec![
                        Inst::ReadVar {
                            dst: VReg(3),
                            var: local(0),
                        },
                        Inst::ConstInt {
                            dst: VReg(4),
                            value: 1,
                        },
                        Inst::IntBin {
                            op: IntBinOp::Add,
                            dst: VReg(5),
                            lhs: VReg(3),
                            rhs: VReg(4),
                        },
                        Inst::WriteVar {
                            var: local(1),
                            src: VReg(5),
                        },
                    ],
                    term: Terminator::Return(None),
                },
                Block {
                    insts: vec![
                        Inst::ConstInt {
                            dst: VReg(6),
                            value: 0,
                        },
                        Inst::WriteVar {
                            var: local(1),
                            src: VReg(6),
                        },
                    ],
                    term: Terminator::Return(None),
                },
            ],
            vreg_tys: vec![Ty::Int; 7],
        }
    }

    #[test]
    fn constant_branch_prunes_dead_edge() {
        let module = Module {
            globals: vec![],
            funcs: vec![constant_branch_func()],
            entry: 0,
        };
        let analysis = ConstProp::new(&module);
        let solution = solve(&analysis, &module.funcs[0]);
        // bb2 is only reachable through the untaken edge.
        assert!(solution.is_reached(BlockId(1)));
        assert!(!solution.is_reached(BlockId(2)));
        // x = 5 flows into bb1; y = 6 at its exit.
        assert_eq!(
            solution.entry_of(BlockId(1)).vars.as_ref().unwrap()[&local(0)],
            5
        );
        assert_eq!(
            solution.exit_of(BlockId(1)).vars.as_ref().unwrap()[&local(1)],
            6
        );
        // The branch verdict is recorded on bb0's exit.
        assert_eq!(solution.exit_of(BlockId(0)).branch, Some(true));
    }

    #[test]
    fn join_intersects_disagreeing_facts() {
        let mut a = ConstState {
            vars: Some(BTreeMap::from([(local(0), 1), (local(1), 7)])),
            branch: Some(true),
        };
        let b = ConstState {
            vars: Some(BTreeMap::from([(local(0), 2), (local(1), 7)])),
            branch: None,
        };
        let module = Module::default();
        let analysis = ConstProp::new(&module);
        assert!(analysis.join(&mut a, &b));
        assert_eq!(a.vars, Some(BTreeMap::from([(local(1), 7)])));
        assert_eq!(a.branch, None, "entry states carry no branch verdict");
    }

    #[test]
    fn eval_matches_simulator_edge_cases() {
        assert_eq!(eval_int(IntBinOp::Div, 5, 0), 0);
        assert_eq!(eval_int(IntBinOp::Rem, 5, 0), 5);
        assert_eq!(eval_int(IntBinOp::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(eval_int(IntBinOp::Div, i64::MIN, -1), i64::MIN);
        assert_eq!(eval_int(IntBinOp::Rem, i64::MIN, -1), 0);
        assert_eq!(eval_int(IntBinOp::Shl, 1, 64), 1, "shift counts wrap at 64");
        assert_eq!(eval_int(IntBinOp::Cmp(CmpOp::Le), 3, 3), 1);
    }

    #[test]
    fn calls_invalidate_globals_only() {
        let module = Module {
            globals: vec![supersym_ir::GlobalInfo {
                name: "g".into(),
                ty: Ty::Int,
                kind: supersym_ir::GlobalKind::Scalar { init: 0.0 },
            }],
            funcs: vec![Function {
                name: "f".into(),
                vars: vec![int_var("x")],
                ret: None,
                blocks: vec![Block {
                    insts: vec![
                        Inst::ConstInt {
                            dst: VReg(0),
                            value: 9,
                        },
                        Inst::WriteVar {
                            var: local(0),
                            src: VReg(0),
                        },
                        Inst::WriteVar {
                            var: VarRef::Global(GlobalId(0)),
                            src: VReg(0),
                        },
                        Inst::Call {
                            dst: None,
                            callee: 0,
                            args: vec![],
                        },
                    ],
                    term: Terminator::Return(None),
                }],
                vreg_tys: vec![Ty::Int],
            }],
            entry: 0,
        };
        let analysis = ConstProp::new(&module);
        let solution = solve(&analysis, &module.funcs[0]);
        let exit = solution.exit_of(BlockId(0)).vars.as_ref().unwrap();
        assert_eq!(exit.get(&local(0)), Some(&9), "locals survive calls");
        assert_eq!(
            exit.get(&VarRef::Global(GlobalId(0))),
            None,
            "globals are clobbered by calls"
        );
    }
}
