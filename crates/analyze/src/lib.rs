//! # supersym-analyze
//!
//! Static analysis for the supersym compiler: a generic lattice-based
//! dataflow framework over the IR control-flow graph, four concrete
//! analyses built on it, and the *dependence oracle* that the instruction
//! scheduler (`supersym-codegen`) and the schedule legality checker
//! (`supersym-verify`) both consume.
//!
//! Jouppi & Wall observe that the parallelism a scheduler can expose is
//! bounded by how well it disambiguates memory references: "provided that
//! the compile-time disambiguation works well, loads from early copies of
//! the loop can be moved above stores from previous copies" (§4.4). This
//! crate is where that disambiguation lives.
//!
//! ## The pieces
//!
//! * [`engine`] — a worklist fixed-point solver for forward and backward
//!   dataflow problems ([`Analysis`], [`solve`]), with executable-edge
//!   tracking for conditional analyses.
//! * [`lattice`] — the join-semilattice trait and the [`Interval`] domain.
//! * Four analyses:
//!   [`ReachingDefs`] (which writes reach each use),
//!   [`ConstProp`] (conditional constant propagation with executable-edge
//!   pruning), [`Ranges`] (value ranges of address arithmetic with
//!   widening), and the symbolic base+offset analysis behind
//!   [`sharpen_origins`], which proves must-not-alias facts and records
//!   them on `ReadElem`/`WriteElem` origins for the back end.
//! * [`oracle`] — the shared [`DependenceOracle`] trait plus the one
//!   [`dependence_edges`] construction both the scheduler and the legality
//!   checker call, with a [`ConservativeOracle`] (alias annotations only)
//!   and a [`SymbolicOracle`] (region-level symbolic addresses over
//!   machine registers).
//! * [`lint_module`] — IR lints surfaced through `titalc lint` /
//!   `titalc analyze`: dead stores, provably out-of-bounds array accesses,
//!   and branches on provably-constant conditions.
//! * [`dump_module`] — the per-block fact dump behind `titalc analyze`.
//! * The loop-nest layer: [`loops`] (natural-loop forest over the IR CFG),
//!   [`scev`] (scalar evolution / chains-of-recurrences with ZIV/SIV
//!   distance-vector tests), [`loopdep`] (machine-level loop-carried edges
//!   behind the [`LoopCarriedOracle`] trait), and [`bound`] (sound static
//!   ILP ceilings per innermost loop, surfaced by `titalc bound`).

#![deny(missing_docs)]

pub mod bound;
pub mod consts;
pub mod dump;
pub mod engine;
pub mod lattice;
pub mod lint;
pub mod loopdep;
pub mod loops;
pub mod oracle;
pub mod range;
pub mod reaching;
pub mod scev;
pub mod symalias;

pub use bound::{program_loop_statics, static_bound, LoopCount, LoopStatics, StaticBound};
pub use consts::{ConstProp, ConstState};
pub use dump::dump_module;
pub use engine::{solve, Analysis, Direction, Solution};
pub use lattice::{Interval, JoinSemiLattice};
pub use lint::lint_module;
pub use loopdep::{
    innermost_machine_loops, CarriedEdge, LoopCarriedOracle, MachineLoop, CARRIED_DISTANCE_CAP,
};
pub use loops::{loop_forest, LoopForest, LoopInfo};
pub use oracle::{
    dependence_edges, induction_steps, scheduling_regions, ConservativeOracle, DepEdge, DepKind,
    DependenceOracle, OracleKind, RegionFacts, SymbolicOracle,
};
pub use range::{RangeState, Ranges};
pub use reaching::{Def, ReachState, ReachingDefs};
pub use scev::{
    function_scev, solve_stride, Distance, FunctionScev, Induction, LoopAccess, LoopDep, LoopScev,
    MemDepKind, Scev, Subscript,
};
pub use symalias::sharpen_origins;
