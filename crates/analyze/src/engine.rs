//! The worklist fixed-point solver.
//!
//! One engine serves every analysis in this crate: an [`Analysis`] supplies
//! the lattice operations (bottom, join, boundary) and a per-block transfer
//! function; [`solve`] iterates blocks to a fixed point in reverse postorder
//! (forward) or postorder (backward).
//!
//! Two refinements beyond the textbook loop:
//!
//! * **executable-edge tracking** — a forward analysis may veto CFG edges
//!   via [`Analysis::edge_is_live`] (the conditional part of conditional
//!   constant propagation); successors only receive facts, and only become
//!   reachable, through live edges;
//! * **reachability** — the returned [`Solution`] records which blocks ever
//!   received facts, so clients can skip provably-dead code.

use supersym_ir::{predecessors, reverse_postorder, BlockId, Function, Terminator};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry toward returns.
    Forward,
    /// Facts flow from returns toward the entry.
    Backward,
}

/// A dataflow problem the engine can solve.
///
/// `State` is the per-program-point fact. The engine keeps one state per
/// block boundary and calls [`Analysis::transfer`] to push a copy through a
/// block's instructions (and terminator) in the analysis direction.
pub trait Analysis {
    /// The lattice of facts.
    type State: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The state at the analysis boundary: the function entry for forward
    /// analyses, every function exit for backward ones.
    fn boundary(&self, func: &Function) -> Self::State;

    /// The least state ("unreached"). Interior blocks start here.
    fn bottom(&self, func: &Function) -> Self::State;

    /// Transfers `state` through `block` in the analysis direction.
    fn transfer(&self, func: &Function, block: BlockId, state: &mut Self::State);

    /// Joins `from` into `into`, returning whether `into` changed. Must be
    /// monotone; for infinite-height lattices it must widen eventually.
    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool;

    /// Whether facts flow along the CFG edge `from -> to`, given the state
    /// at `from`'s exit. Forward analyses only; defaults to every edge.
    fn edge_is_live(
        &self,
        _func: &Function,
        _from: BlockId,
        _to: BlockId,
        _exit: &Self::State,
    ) -> bool {
        true
    }
}

/// The fixed point computed by [`solve`].
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// State at each block's entry (in execution order, regardless of the
    /// analysis direction).
    pub entry: Vec<S>,
    /// State at each block's exit.
    pub exit: Vec<S>,
    /// Blocks that received facts. For forward analyses this is
    /// reachability from the entry through live edges; for backward ones,
    /// ability to reach a function exit.
    pub reached: Vec<bool>,
    /// Number of block transfers performed (a convergence metric for
    /// tests and the fact dump).
    pub iterations: usize,
}

impl<S> Solution<S> {
    /// The entry state of `block`.
    #[must_use]
    pub fn entry_of(&self, block: BlockId) -> &S {
        &self.entry[block.index()]
    }

    /// The exit state of `block`.
    #[must_use]
    pub fn exit_of(&self, block: BlockId) -> &S {
        &self.exit[block.index()]
    }

    /// Whether `block` ever received facts.
    #[must_use]
    pub fn is_reached(&self, block: BlockId) -> bool {
        self.reached[block.index()]
    }
}

/// Solves `analysis` over `func` to a fixed point.
///
/// # Panics
///
/// Panics if the analysis fails to converge within a generous budget —
/// possible only for a non-monotone or non-widening [`Analysis`], i.e. a
/// bug in the analysis, never in the input program.
pub fn solve<A: Analysis>(analysis: &A, func: &Function) -> Solution<A::State> {
    match analysis.direction() {
        Direction::Forward => solve_forward(analysis, func),
        Direction::Backward => solve_backward(analysis, func),
    }
}

fn iteration_budget(blocks: usize) -> usize {
    10_000 + 1_000 * blocks
}

fn solve_forward<A: Analysis>(analysis: &A, func: &Function) -> Solution<A::State> {
    let n = func.blocks.len();
    if n == 0 {
        return Solution {
            entry: Vec::new(),
            exit: Vec::new(),
            reached: Vec::new(),
            iterations: 0,
        };
    }
    let mut entry: Vec<A::State> = (0..n).map(|_| analysis.bottom(func)).collect();
    let mut exit: Vec<A::State> = (0..n).map(|_| analysis.bottom(func)).collect();
    let mut reached = vec![false; n];
    let mut queued = vec![false; n];

    // Seed the entry block; iterate in reverse postorder for fast
    // convergence on reducible graphs (irreducible ones just take more
    // passes).
    let order = reverse_postorder(func);
    let mut priority = vec![usize::MAX; n];
    for (rank, &block) in order.iter().enumerate() {
        priority[block.index()] = rank;
    }
    let boundary = analysis.boundary(func);
    analysis.join(&mut entry[0], &boundary);
    reached[0] = true;
    queued[0] = true;
    let mut worklist = vec![BlockId(0)];
    let mut iterations = 0usize;

    while let Some(block) = pop_best(&mut worklist, &priority) {
        queued[block.index()] = false;
        iterations += 1;
        assert!(
            iterations <= iteration_budget(n),
            "dataflow analysis failed to converge (non-monotone transfer or join?)"
        );
        let mut state = entry[block.index()].clone();
        analysis.transfer(func, block, &mut state);
        exit[block.index()] = state;
        for succ in func.blocks[block.index()].term.successors() {
            if !analysis.edge_is_live(func, block, succ, &exit[block.index()]) {
                continue;
            }
            let changed = analysis.join(&mut entry[succ.index()], &exit[block.index()]);
            let newly_reached = !reached[succ.index()];
            reached[succ.index()] = true;
            if (changed || newly_reached) && !queued[succ.index()] {
                queued[succ.index()] = true;
                worklist.push(succ);
            }
        }
    }
    Solution {
        entry,
        exit,
        reached,
        iterations,
    }
}

fn solve_backward<A: Analysis>(analysis: &A, func: &Function) -> Solution<A::State> {
    let n = func.blocks.len();
    let preds = predecessors(func);
    let mut entry: Vec<A::State> = (0..n).map(|_| analysis.bottom(func)).collect();
    let mut exit: Vec<A::State> = (0..n).map(|_| analysis.bottom(func)).collect();
    let mut reached = vec![false; n];
    let mut queued = vec![false; n];

    // Postorder priority: process later blocks first.
    let order = reverse_postorder(func);
    let mut priority = vec![usize::MAX; n];
    for (rank, &block) in order.iter().enumerate() {
        priority[block.index()] = order.len() - rank;
    }
    let boundary = analysis.boundary(func);
    let mut worklist = Vec::new();
    for (index, block) in func.blocks.iter().enumerate() {
        if matches!(block.term, Terminator::Return(_)) {
            analysis.join(&mut exit[index], &boundary);
            reached[index] = true;
            queued[index] = true;
            worklist.push(BlockId(index as u32));
        }
    }
    let mut iterations = 0usize;

    while let Some(block) = pop_best(&mut worklist, &priority) {
        queued[block.index()] = false;
        iterations += 1;
        assert!(
            iterations <= iteration_budget(n),
            "dataflow analysis failed to converge (non-monotone transfer or join?)"
        );
        let mut state = exit[block.index()].clone();
        analysis.transfer(func, block, &mut state);
        entry[block.index()] = state;
        for &pred in &preds[block.index()] {
            let changed = analysis.join(&mut exit[pred.index()], &entry[block.index()]);
            let newly_reached = !reached[pred.index()];
            reached[pred.index()] = true;
            if (changed || newly_reached) && !queued[pred.index()] {
                queued[pred.index()] = true;
                worklist.push(pred);
            }
        }
    }
    Solution {
        entry,
        exit,
        reached,
        iterations,
    }
}

/// Pops the highest-priority (lowest rank) block from the worklist.
fn pop_best(worklist: &mut Vec<BlockId>, priority: &[usize]) -> Option<BlockId> {
    let best = worklist
        .iter()
        .enumerate()
        .min_by_key(|(_, b)| priority[b.index()])?
        .0;
    Some(worklist.swap_remove(best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reaching::ReachingDefs;
    use supersym_ir::{Block, Inst, Module, VReg};
    use supersym_lang::ast::Ty;

    /// A function whose CFG is given by (successor lists as terminators).
    fn func_with(blocks: Vec<Block>) -> Function {
        Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks,
            vreg_tys: vec![Ty::Int],
        }
    }

    fn const_block(term: Terminator) -> Block {
        Block {
            insts: vec![Inst::ConstInt {
                dst: VReg(0),
                value: 1,
            }],
            term,
        }
    }

    #[test]
    fn irreducible_cfg_converges() {
        // 0 -> {1, 2}, 1 -> 2, 2 -> 1: a cycle entered at two points, so
        // no natural-loop structure. The solver must still reach a fixed
        // point over the finite reaching-defs lattice.
        let func = func_with(vec![
            const_block(Terminator::Branch {
                cond: VReg(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }),
            Block::empty(Terminator::Jump(BlockId(2))),
            Block::empty(Terminator::Jump(BlockId(1))),
        ]);
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        let analysis = ReachingDefs::new(&module);
        let solution = solve(&analysis, &module.funcs[0]);
        assert!(solution.reached.iter().all(|&r| r));
        assert!(solution.iterations >= 3);
        // Re-solving is deterministic.
        let again = solve(&analysis, &module.funcs[0]);
        assert_eq!(solution.entry, again.entry);
        assert_eq!(solution.exit, again.exit);
    }

    #[test]
    fn unreachable_blocks_stay_bottom() {
        let func = func_with(vec![
            const_block(Terminator::Return(None)),
            Block::empty(Terminator::Jump(BlockId(1))), // orphan self-loop
        ]);
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        let analysis = ReachingDefs::new(&module);
        let solution = solve(&analysis, &module.funcs[0]);
        assert!(solution.is_reached(BlockId(0)));
        assert!(!solution.is_reached(BlockId(1)));
    }
}
