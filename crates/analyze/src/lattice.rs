//! Join-semilattices for the dataflow engine.
//!
//! Every analysis state forms a join-semilattice: a partial order with a
//! least element (`bottom`, "no information / unreached") and a least upper
//! bound (`join`). The engine only ever moves states *up* the lattice, so a
//! finite-height lattice (or a widening `join`, as in [`Interval`])
//! guarantees the worklist terminates.

/// A join-semilattice: bottom element plus in-place least upper bound.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// The least element ("unreached", no information).
    fn bottom() -> Self;

    /// In-place least upper bound; returns `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// A closed integer interval `[lo, hi]`, the abstract domain of the
/// value-range analysis.
///
/// The empty interval is the lattice bottom and [`Interval::FULL`] is top.
/// Arithmetic is conservative with respect to the simulator's *wrapping*
/// semantics: any operation whose exact result could leave `i64` returns
/// [`Interval::FULL`] rather than a wrapped (and therefore wrong) range.
///
/// ```
/// use supersym_analyze::Interval;
/// let idx = Interval::constant(3).add(&Interval::new(0, 4));
/// assert_eq!(idx, Interval::new(3, 7));
/// assert!(Interval::FULL.and_mask(&Interval::constant(15)).within(0, 15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Interval {
    /// The full range, `[i64::MIN, i64::MAX]` — the lattice top.
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The empty interval — the lattice bottom. `lo > hi` by convention.
    pub const EMPTY: Interval = Interval {
        lo: i64::MAX,
        hi: i64::MIN,
    };

    /// The interval `[lo, hi]` (empty if `lo > hi`).
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// The singleton interval `[v, v]`.
    #[must_use]
    pub fn constant(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Whether the interval contains no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether every value lies in `[lo, hi]`.
    #[must_use]
    pub fn within(&self, lo: i64, hi: i64) -> bool {
        self.is_empty() || (self.lo >= lo && self.hi <= hi)
    }

    /// Whether the interval shares no value with `[lo, hi]`.
    #[must_use]
    pub fn disjoint_from(&self, lo: i64, hi: i64) -> bool {
        self.is_empty() || self.hi < lo || self.lo > hi
    }

    /// The single value, if the interval is a singleton.
    #[must_use]
    pub fn as_constant(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    fn from_i128(lo: i128, hi: i128) -> Self {
        if lo < i128::from(i64::MIN) || hi > i128::from(i64::MAX) {
            // The exact result can wrap; claim nothing.
            Interval::FULL
        } else {
            Interval::new(lo as i64, hi as i64)
        }
    }

    /// Abstract wrapping addition.
    #[must_use]
    pub fn add(&self, other: &Interval) -> Self {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Self::from_i128(
            i128::from(self.lo) + i128::from(other.lo),
            i128::from(self.hi) + i128::from(other.hi),
        )
    }

    /// Abstract wrapping subtraction.
    #[must_use]
    pub fn sub(&self, other: &Interval) -> Self {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Self::from_i128(
            i128::from(self.lo) - i128::from(other.hi),
            i128::from(self.hi) - i128::from(other.lo),
        )
    }

    /// Abstract wrapping multiplication.
    #[must_use]
    pub fn mul(&self, other: &Interval) -> Self {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let products = [
            i128::from(self.lo) * i128::from(other.lo),
            i128::from(self.lo) * i128::from(other.hi),
            i128::from(self.hi) * i128::from(other.lo),
            i128::from(self.hi) * i128::from(other.hi),
        ];
        let lo = *products.iter().min().expect("non-empty");
        let hi = *products.iter().max().expect("non-empty");
        Self::from_i128(lo, hi)
    }

    /// Abstract bitwise and. Precise enough for the index-masking idiom
    /// `x & 15`: a non-negative mask bounds the result to `[0, mask]`.
    #[must_use]
    pub fn and_mask(&self, other: &Interval) -> Self {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        // `a & m` with 0 <= m has a zero sign bit and is at most m.
        let bound = |iv: &Interval| iv.as_constant().filter(|&m| m >= 0);
        match (bound(self), bound(other)) {
            (Some(m), _) | (_, Some(m)) => Interval::new(0, m),
            _ if self.lo >= 0 && other.lo >= 0 => Interval::new(0, self.hi.min(other.hi)),
            _ => Interval::FULL,
        }
    }

    /// Abstract bitwise or/xor: non-negative operands stay below the next
    /// power of two covering both upper bounds.
    #[must_use]
    pub fn or_xor(&self, other: &Interval) -> Self {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0 && other.lo >= 0 {
            let max = self.hi.max(other.hi);
            let bits = 64 - max.leading_zeros();
            if bits >= 63 {
                Interval::FULL
            } else {
                Interval::new(0, (1_i64 << bits) - 1)
            }
        } else {
            Interval::FULL
        }
    }

    /// Abstract remainder by a constant positive divisor (the simulator
    /// defines `x rem 0 = x`, so zero divisors are excluded by the caller).
    #[must_use]
    pub fn rem_const(&self, divisor: i64) -> Self {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if divisor <= 0 {
            return Interval::FULL;
        }
        if self.lo >= 0 {
            Interval::new(0, (divisor - 1).min(self.hi.max(0)))
        } else {
            Interval::new(-(divisor - 1), divisor - 1)
        }
    }

    /// Widens `self` against the previous iterate: bounds that are still
    /// moving jump straight to the corresponding infinity. Applied by the
    /// range analysis once a join budget is exhausted, this caps the
    /// ascending-chain length and forces termination on loops.
    #[must_use]
    pub fn widen(&self, previous: &Interval) -> Self {
        if previous.is_empty() {
            return *self;
        }
        Interval {
            lo: if self.lo < previous.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if self.hi > previous.hi {
                i64::MAX
            } else {
                self.hi
            },
        }
    }
}

impl JoinSemiLattice for Interval {
    fn bottom() -> Self {
        Interval::EMPTY
    }

    fn join(&mut self, other: &Self) -> bool {
        if other.is_empty() {
            return false;
        }
        if self.is_empty() {
            *self = *other;
            return true;
        }
        let hull = Interval::new(self.lo.min(other.lo), self.hi.max(other.hi));
        let changed = hull != *self;
        *self = hull;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_hull() {
        let mut a = Interval::new(0, 3);
        assert!(a.join(&Interval::new(5, 9)));
        assert_eq!(a, Interval::new(0, 9));
        assert!(!a.join(&Interval::new(2, 4)));
    }

    #[test]
    fn bottom_is_identity() {
        let mut a = Interval::EMPTY;
        assert!(a.join(&Interval::constant(7)));
        assert_eq!(a, Interval::constant(7));
        assert!(!a.join(&Interval::EMPTY));
    }

    #[test]
    fn overflowing_arithmetic_goes_to_full() {
        let near_max = Interval::constant(i64::MAX - 1);
        assert_eq!(near_max.add(&Interval::constant(5)), Interval::FULL);
        assert_eq!(
            near_max.mul(&Interval::constant(2)),
            Interval::FULL,
            "doubling near-max wraps"
        );
        assert_eq!(
            Interval::constant(4).add(&Interval::constant(5)),
            Interval::constant(9)
        );
    }

    #[test]
    fn mask_bounds_survive_full_input() {
        let masked = Interval::FULL.and_mask(&Interval::constant(15));
        assert_eq!(masked, Interval::new(0, 15));
        let negative_mask = Interval::FULL.and_mask(&Interval::constant(-1));
        assert_eq!(negative_mask, Interval::FULL);
    }

    #[test]
    fn widening_pins_moving_bounds() {
        let grown = Interval::new(0, 10).widen(&Interval::new(0, 5));
        assert_eq!(grown, Interval::new(0, i64::MAX));
        let stable = Interval::new(0, 5).widen(&Interval::new(0, 5));
        assert_eq!(stable, Interval::new(0, 5));
        let shrunk_lo = Interval::new(-3, 5).widen(&Interval::new(0, 5));
        assert_eq!(shrunk_lo, Interval::new(i64::MIN, 5));
    }

    #[test]
    fn disjointness_and_membership() {
        assert!(Interval::new(8, 9).disjoint_from(0, 7));
        assert!(!Interval::new(7, 9).disjoint_from(0, 7));
        assert!(Interval::new(0, 7).within(0, 7));
        assert!(Interval::EMPTY.within(0, 0));
        assert!(Interval::EMPTY.disjoint_from(i64::MIN, i64::MAX));
    }

    #[test]
    fn rem_const_ranges() {
        assert_eq!(Interval::new(0, 100).rem_const(8), Interval::new(0, 7));
        assert_eq!(Interval::new(-5, 100).rem_const(8), Interval::new(-7, 7));
        assert_eq!(Interval::new(0, 3).rem_const(8), Interval::new(0, 3));
        assert_eq!(Interval::FULL.rem_const(0), Interval::FULL);
    }
}
