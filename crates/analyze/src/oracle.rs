//! The shared dependence oracle.
//!
//! Both the pipeline scheduler (`supersym-codegen`) and the schedule
//! legality checker (`supersym-verify`) must decide, for every pair of
//! memory operations in a straight-line region, whether they might touch
//! the same word. This module is the single source of those answers: one
//! region-walking edge builder ([`dependence_edges`]), one region
//! partitioner ([`scheduling_regions`]), and a [`DependenceOracle`] trait
//! with two implementations the caller chooses between —
//!
//! * [`ConservativeOracle`] consults only the per-instruction [`MemAlias`](supersym_isa::MemAlias)
//!   annotations (the front end's verdicts), exactly the model the seed
//!   scheduler and checker each implemented privately;
//! * [`SymbolicOracle`] additionally runs a symbolic value numbering over
//!   the region's integer registers, proving `mem[rA + 0]` and
//!   `mem[rA + 1]` disjoint even when the aliases say nothing — the §4.4
//!   disambiguation ("their effective heads could be compared") applied at
//!   the machine level, where unrolled induction updates
//!   (`r7 <- r7 + 1`) are plain register arithmetic.
//!
//! The symbolic oracle only ever *removes* edges relative to the
//! conservative one (it is consulted after [`MemAlias::may_conflict`](supersym_isa::MemAlias::may_conflict)
//! already said "maybe"), so any schedule legal under the conservative
//! oracle is legal under the symbolic one. The reverse is checked
//! dynamically by the differential property test in the workspace test
//! suite: sharpened schedules execute to the same architectural state.

use std::fmt;
use supersym_isa::{Function, Instr, Operand, Reg, NUM_INT_REGS};

/// The kind of an ordering constraint between two instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write of a register: the reader needs the writer's value.
    Raw(Reg),
    /// Write-after-read of a register: the overwrite must wait for the
    /// reader.
    War(Reg),
    /// Write-after-write of a register: two writes must stay ordered.
    Waw(Reg),
    /// A memory dependence (at least one store; disjointness unproven).
    Memory,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Raw(reg) => write!(f, "RAW on {reg}"),
            DepKind::War(reg) => write!(f, "WAR on {reg}"),
            DepKind::Waw(reg) => write!(f, "WAW on {reg}"),
            DepKind::Memory => f.write_str("memory dependence"),
        }
    }
}

/// One ordering constraint: `pred` must issue no later than `succ`
/// (region-relative indices, `pred < succ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// The earlier instruction.
    pub pred: usize,
    /// The later instruction.
    pub succ: usize,
    /// Why they are ordered.
    pub kind: DepKind,
}

/// A symbolic address: a region-local value number plus a wrapping word
/// offset, or a fully-constant address.
///
/// Since the machine computes every effective address as
/// `int_reg(base).wrapping_add(offset)`, the map `offset -> address` is
/// injective for any fixed base value: equal bases with distinct offsets
/// can never collide, wrap or no wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymAddr {
    /// The address is this constant.
    Abs(i64),
    /// The address is (the runtime value numbered `vn`) + `offset`.
    Rel {
        /// Region-local value number of the base value.
        vn: u32,
        /// Wrapping word offset from that value.
        offset: i64,
    },
}

impl SymAddr {
    /// Whether the two addresses are provably distinct on every execution.
    #[must_use]
    pub fn must_not_alias(&self, other: &SymAddr) -> bool {
        match (self, other) {
            (SymAddr::Abs(a), SymAddr::Abs(b)) => a != b,
            (SymAddr::Rel { vn: v1, offset: o1 }, SymAddr::Rel { vn: v2, offset: o2 }) => {
                v1 == v2 && o1 != o2
            }
            _ => false,
        }
    }
}

/// Per-region facts computed once by [`DependenceOracle::prepare`] and
/// consulted for every instruction pair.
#[derive(Debug, Clone, Default)]
pub struct RegionFacts {
    /// Symbolic address of each instruction's memory access (`None` for
    /// non-memory instructions, vector accesses, and the conservative
    /// oracle, which computes nothing).
    addrs: Vec<Option<SymAddr>>,
}

impl RegionFacts {
    /// The symbolic address of the access at region-relative index `i`,
    /// if one was derived.
    #[must_use]
    pub fn addr(&self, i: usize) -> Option<SymAddr> {
        self.addrs.get(i).copied().flatten()
    }
}

/// A memory-disambiguation policy for dependence-DAG construction.
///
/// `prepare` is called once per region; `may_alias` must return `false`
/// only when the accesses at `i` and `j` (both known to reference memory)
/// are provably disjoint on every execution reaching the region.
pub trait DependenceOracle: Sync {
    /// Computes whatever per-region facts `may_alias` will need.
    fn prepare(&self, region: &[Instr]) -> RegionFacts;

    /// Whether the memory accesses at `i` and `j` may touch the same word.
    fn may_alias(&self, facts: &RegionFacts, region: &[Instr], i: usize, j: usize) -> bool;
}

/// The seed model: trusts only the [`MemAlias`](supersym_isa::MemAlias) annotations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConservativeOracle;

impl DependenceOracle for ConservativeOracle {
    fn prepare(&self, _region: &[Instr]) -> RegionFacts {
        RegionFacts::default()
    }

    fn may_alias(&self, _facts: &RegionFacts, region: &[Instr], i: usize, j: usize) -> bool {
        annotations_may_conflict(region, i, j)
    }
}

/// The sharpened model: [`MemAlias`](supersym_isa::MemAlias) annotations plus symbolic base+offset
/// value numbering of the region's address arithmetic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SymbolicOracle;

impl DependenceOracle for SymbolicOracle {
    fn prepare(&self, region: &[Instr]) -> RegionFacts {
        RegionFacts {
            addrs: symbolic_addresses(region),
        }
    }

    fn may_alias(&self, facts: &RegionFacts, region: &[Instr], i: usize, j: usize) -> bool {
        if !annotations_may_conflict(region, i, j) {
            return false;
        }
        match (facts.addr(i), facts.addr(j)) {
            (Some(a), Some(b)) => !a.must_not_alias(&b),
            _ => true,
        }
    }
}

pub(crate) fn annotations_may_conflict(region: &[Instr], i: usize, j: usize) -> bool {
    let (alias_i, _) = region[i].mem_ref().expect("caller guarantees a memory op");
    let (alias_j, _) = region[j].mem_ref().expect("caller guarantees a memory op");
    alias_i.may_conflict(alias_j)
}

/// Which oracle to use, as a configuration value for the compile pipeline
/// and command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleKind {
    /// [`ConservativeOracle`]: annotations only.
    Conservative,
    /// [`SymbolicOracle`]: annotations plus symbolic value numbering.
    #[default]
    Symbolic,
}

impl OracleKind {
    /// The oracle this kind names.
    #[must_use]
    pub fn as_oracle(self) -> &'static dyn DependenceOracle {
        static CONSERVATIVE: ConservativeOracle = ConservativeOracle;
        static SYMBOLIC: SymbolicOracle = SymbolicOracle;
        match self {
            OracleKind::Conservative => &CONSERVATIVE,
            OracleKind::Symbolic => &SYMBOLIC,
        }
    }
}

/// Symbolic value of an integer register during the region walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymVal {
    /// A known constant.
    Abs(i64),
    /// An unknown value (numbered) plus a wrapping constant offset.
    Rel { vn: u32, offset: i64 },
}

impl SymVal {
    fn offset_by(self, k: i64) -> SymVal {
        match self {
            SymVal::Abs(c) => SymVal::Abs(c.wrapping_add(k)),
            SymVal::Rel { vn, offset } => SymVal::Rel {
                vn,
                offset: offset.wrapping_add(k),
            },
        }
    }
}

/// Runs the symbolic value numbering over one straight-line region,
/// returning each instruction's address (for scalar loads and stores).
///
/// Every integer register starts at its own value number (`r0` starts at
/// the constant 0). `movi` makes a register constant; additions and
/// subtractions of constants slide the offset; every other definition of
/// an integer register gets a fresh value number. Vector accesses span a
/// runtime-dependent range of words, so they never receive an address.
#[must_use]
pub fn symbolic_addresses(region: &[Instr]) -> Vec<Option<SymAddr>> {
    symbolic_walk(region).0
}

/// The per-pass increment of each integer register, for loop bodies.
///
/// Entry `r` is `Some(step)` when one pass over `region` provably leaves
/// register `r` at exactly its initial value plus `step` (wrapping), the
/// affine-update shape of an induction register; `Some(0)` covers registers
/// the region never redefines. `None` means the final value has no provable
/// relation to the initial one (reloaded from memory, multiplied, set to a
/// constant — whose first-iteration initial value still differs).
#[must_use]
pub fn induction_steps(region: &[Instr]) -> Vec<Option<i64>> {
    symbolic_walk(region)
        .1
        .iter()
        .enumerate()
        .map(|(reg, val)| match val {
            SymVal::Rel { vn, offset } if *vn == reg as u32 => Some(*offset),
            // r0 is hardwired: constant zero before and after any pass.
            SymVal::Abs(0) if reg == 0 => Some(0),
            _ => None,
        })
        .collect()
}

fn symbolic_walk(region: &[Instr]) -> (Vec<Option<SymAddr>>, Vec<SymVal>) {
    let mut sym: Vec<SymVal> = (0..NUM_INT_REGS as u32)
        .map(|r| SymVal::Rel { vn: r, offset: 0 })
        .collect();
    sym[0] = SymVal::Abs(0); // r0 is hardwired to zero
    let mut next_vn = NUM_INT_REGS as u32;
    let mut fresh = || {
        let vn = next_vn;
        next_vn += 1;
        SymVal::Rel { vn, offset: 0 }
    };

    let mut addrs = Vec::with_capacity(region.len());
    for instr in region {
        // The access's address uses the base register's value *before*
        // this instruction's definition takes effect (a load may clobber
        // its own base).
        let addr = match instr {
            Instr::Load { base, offset, .. }
            | Instr::LoadF { base, offset, .. }
            | Instr::Store { base, offset, .. }
            | Instr::StoreF { base, offset, .. } => {
                Some(match sym[base.index() as usize].offset_by(*offset) {
                    SymVal::Abs(c) => SymAddr::Abs(c),
                    SymVal::Rel { vn, offset } => SymAddr::Rel { vn, offset },
                })
            }
            _ => None,
        };
        addrs.push(addr);

        match instr {
            Instr::MovI { dst, imm } if !dst.is_zero() => {
                sym[dst.index() as usize] = SymVal::Abs(*imm);
            }
            Instr::IntOp { op, dst, lhs, rhs } if !dst.is_zero() => {
                use supersym_isa::IntOp::{Add, Sub};
                let lhs_val = sym[lhs.index() as usize];
                let rhs_val = match rhs {
                    Operand::Imm(k) => Some(SymVal::Abs(*k)),
                    Operand::Reg(r) => Some(sym[r.index() as usize]),
                };
                let result = match (*op, lhs_val, rhs_val) {
                    (Add, v, Some(SymVal::Abs(k))) => Some(v.offset_by(k)),
                    (Add, SymVal::Abs(c), Some(v)) => Some(v.offset_by(c)),
                    (Sub, v, Some(SymVal::Abs(k))) => Some(v.offset_by(k.wrapping_neg())),
                    _ => None,
                };
                sym[dst.index() as usize] = result.unwrap_or_else(&mut fresh);
            }
            _ => {
                // Any other definition of an integer register — a load, an
                // FP compare, a conversion — is an unknown value.
                if let Some(Reg::Int(dst)) = instr.def() {
                    sym[dst.index() as usize] = fresh();
                }
            }
        }
    }
    (addrs, sym)
}

/// The scheduling regions of a function: maximal runs of non-control
/// instructions not crossed by any label target. The scheduler may permute
/// instructions within these ranges and nowhere else; the legality checker
/// holds it to exactly that contract.
#[must_use]
pub fn scheduling_regions(func: &Function) -> Vec<(usize, usize)> {
    let is_boundary = |index: usize| func.label_targets().contains(&index);
    let mut regions = Vec::new();
    let mut start = 0;
    for (index, instr) in func.instrs().iter().enumerate() {
        if index > start && is_boundary(index) {
            regions.push((start, index));
            start = index;
        }
        if instr.is_control() {
            regions.push((start, index));
            start = index + 1;
        }
    }
    if start < func.instrs().len() {
        regions.push((start, func.instrs().len()));
    }
    regions
}

/// Every ordering constraint within a straight-line region, with memory
/// pairs filtered through `oracle`.
///
/// For instructions `i < j`:
///
/// * **RAW**: `j` reads a register whose nearest earlier write is `i`;
/// * **WAW**: `j` writes a register whose nearest earlier write is `i`;
/// * **WAR**: `j` writes a register that `i` reads, with no write between
///   them (an intervening write would already order `i` via its own WAR);
/// * **memory**: both touch memory, at least one is a store, and the
///   oracle cannot prove the accesses disjoint (loads commute freely).
#[must_use]
pub fn dependence_edges(region: &[Instr], oracle: &dyn DependenceOracle) -> Vec<DepEdge> {
    let n = region.len();
    let mut edges = Vec::new();

    // Register edges by last-writer / readers-since-write tracking.
    let mut last_writer: Vec<Option<usize>> = vec![None; Reg::DENSE_SPACE];
    let mut readers_since_write: Vec<Vec<usize>> = vec![Vec::new(); Reg::DENSE_SPACE];
    for (index, instr) in region.iter().enumerate() {
        instr.uses().iter().for_each(|reg| {
            let slot = reg.dense_index();
            if let Some(writer) = last_writer[slot] {
                edges.push(DepEdge {
                    pred: writer,
                    succ: index,
                    kind: DepKind::Raw(reg),
                });
            }
            readers_since_write[slot].push(index);
        });
        if let Some(def) = instr.def() {
            let slot = def.dense_index();
            if let Some(writer) = last_writer[slot] {
                edges.push(DepEdge {
                    pred: writer,
                    succ: index,
                    kind: DepKind::Waw(def),
                });
            }
            for &reader in &readers_since_write[slot] {
                if reader != index {
                    edges.push(DepEdge {
                        pred: reader,
                        succ: index,
                        kind: DepKind::War(def),
                    });
                }
            }
            last_writer[slot] = Some(index);
            readers_since_write[slot].clear();
        }
    }

    // Memory edges through the oracle.
    let facts = oracle.prepare(region);
    for i in 0..n {
        let Some((_, store_i)) = region[i].mem_ref() else {
            continue;
        };
        for (j, other) in region.iter().enumerate().skip(i + 1) {
            let Some((_, store_j)) = other.mem_ref() else {
                continue;
            };
            if !store_i && !store_j {
                continue; // loads commute
            }
            if oracle.may_alias(&facts, region, i, j) {
                edges.push(DepEdge {
                    pred: i,
                    succ: j,
                    kind: DepKind::Memory,
                });
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_isa::{IntOp, IntReg, MemAlias};

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn load_at(dst: u8, base: u8, offset: i64) -> Instr {
        Instr::Load {
            dst: r(dst),
            base: r(base),
            offset,
            alias: MemAlias::unknown(),
        }
    }

    fn store_at(src: u8, base: u8, offset: i64) -> Instr {
        Instr::Store {
            src: r(src),
            base: r(base),
            offset,
            alias: MemAlias::unknown(),
        }
    }

    fn memory_edges(region: &[Instr], oracle: &dyn DependenceOracle) -> Vec<(usize, usize)> {
        dependence_edges(region, oracle)
            .into_iter()
            .filter(|e| e.kind == DepKind::Memory)
            .map(|e| (e.pred, e.succ))
            .collect()
    }

    #[test]
    fn same_base_distinct_offsets_disambiguated() {
        // store [r5+0]; load [r5+1] — unknown aliases, same base register.
        let region = vec![store_at(1, 5, 0), load_at(2, 5, 1)];
        assert_eq!(
            memory_edges(&region, &ConservativeOracle),
            vec![(0, 1)],
            "the annotation-only model must keep the edge"
        );
        assert!(
            memory_edges(&region, &SymbolicOracle).is_empty(),
            "symbolic base+offset proves the words disjoint"
        );
        // Same offset: possibly the same word under both models.
        let clash = vec![store_at(1, 5, 2), load_at(2, 5, 2)];
        assert_eq!(memory_edges(&clash, &SymbolicOracle), vec![(0, 1)]);
    }

    #[test]
    fn induction_update_links_offsets() {
        // store [r5+1]; r5 <- r5 + 1; store [r5+0] — both address r5_old+1.
        let region = vec![
            store_at(1, 5, 1),
            Instr::IntOp {
                op: IntOp::Add,
                dst: r(5),
                lhs: r(5),
                rhs: Operand::Imm(1),
            },
            store_at(2, 5, 0),
        ];
        assert_eq!(
            memory_edges(&region, &SymbolicOracle),
            vec![(0, 2)],
            "offset tracking must see through the induction update"
        );
        // With distinct final offsets the accesses separate.
        let disjoint = vec![
            store_at(1, 5, 0),
            Instr::IntOp {
                op: IntOp::Add,
                dst: r(5),
                lhs: r(5),
                rhs: Operand::Imm(1),
            },
            store_at(2, 5, 0), // r5_old + 1
        ];
        assert!(memory_edges(&disjoint, &SymbolicOracle).is_empty());
    }

    #[test]
    fn unknown_redefinition_breaks_the_link() {
        // r5 reloaded from memory between the stores: no relation provable.
        let region = vec![store_at(1, 5, 0), load_at(5, 6, 0), store_at(2, 5, 1)];
        let edges = memory_edges(&region, &SymbolicOracle);
        assert!(edges.contains(&(0, 2)), "fresh base value: edge kept");
    }

    #[test]
    fn constant_addresses_compare_absolutely() {
        // movi r5, 100; store [r5+0]; movi r5, 101; store [r5+0].
        let region = vec![
            Instr::MovI {
                dst: r(5),
                imm: 100,
            },
            store_at(1, 5, 0),
            Instr::MovI {
                dst: r(5),
                imm: 101,
            },
            store_at(2, 5, 0),
        ];
        assert!(memory_edges(&region, &SymbolicOracle).is_empty());
        // Same constant address: ordered.
        let clash = vec![
            Instr::MovI {
                dst: r(5),
                imm: 100,
            },
            store_at(1, 5, 0),
            Instr::MovI { dst: r(6), imm: 95 },
            Instr::IntOp {
                op: IntOp::Add,
                dst: r(6),
                lhs: r(6),
                rhs: Operand::Imm(5),
            },
            store_at(2, 6, 0),
        ];
        assert_eq!(memory_edges(&clash, &SymbolicOracle), vec![(1, 4)]);
    }

    #[test]
    fn load_clobbering_its_own_base_uses_old_value() {
        // load r5 <- [r5+0]; store [r5+0]: the store's base is the loaded
        // value, unrelated to the load's address.
        let region = vec![load_at(5, 5, 0), store_at(1, 5, 0)];
        let addrs = symbolic_addresses(&region);
        let (Some(a), Some(b)) = (addrs[0], addrs[1]) else {
            panic!("both are scalar accesses");
        };
        assert!(!a.must_not_alias(&b), "no relation between old and new r5");
        assert_ne!(a, b);
    }

    #[test]
    fn zero_register_is_constant_zero() {
        // store [r0+4] and movi r5,4; store [r5+0] hit the same word.
        let region = vec![
            store_at(1, 0, 4),
            Instr::MovI { dst: r(5), imm: 4 },
            store_at(2, 5, 0),
        ];
        assert_eq!(memory_edges(&region, &SymbolicOracle), vec![(0, 2)]);
        let addrs = symbolic_addresses(&region);
        assert_eq!(addrs[0], Some(SymAddr::Abs(4)));
    }

    #[test]
    fn subtraction_and_register_constants_fold() {
        // r6 <- r5 - 2; store [r6+2] aliases store [r5+0] exactly.
        let region = vec![
            Instr::IntOp {
                op: IntOp::Sub,
                dst: r(6),
                lhs: r(5),
                rhs: Operand::Imm(2),
            },
            store_at(1, 6, 2),
            store_at(2, 5, 0),
        ];
        let addrs = symbolic_addresses(&region);
        assert_eq!(addrs[1], addrs[2], "r6+2 == r5-2+2 == r5");
        assert_eq!(memory_edges(&region, &SymbolicOracle), vec![(1, 2)]);
    }

    #[test]
    fn vector_accesses_never_get_addresses() {
        let region = vec![Instr::VLoad {
            dst: supersym_isa::VecReg::new(0).unwrap(),
            base: r(5),
            offset: 0,
            alias: MemAlias::unknown(),
        }];
        assert_eq!(symbolic_addresses(&region), vec![None]);
    }

    #[test]
    fn symbolic_edges_subset_of_conservative() {
        let region = vec![
            store_at(1, 5, 0),
            load_at(2, 5, 1),
            store_at(2, 6, 0),
            Instr::IntOp {
                op: IntOp::Add,
                dst: r(5),
                lhs: r(5),
                rhs: Operand::Imm(1),
            },
            store_at(3, 5, 0),
            load_at(4, 7, 3),
        ];
        let conservative = memory_edges(&region, &ConservativeOracle);
        let symbolic = memory_edges(&region, &SymbolicOracle);
        for edge in &symbolic {
            assert!(
                conservative.contains(edge),
                "symbolic oracle may only remove edges, never add: {edge:?}"
            );
        }
        assert!(symbolic.len() < conservative.len());
    }

    #[test]
    fn register_edges_oracle_independent() {
        let region = vec![
            load_at(1, 5, 0),
            Instr::IntOp {
                op: IntOp::Add,
                dst: r(2),
                lhs: r(1),
                rhs: Operand::Imm(1),
            },
            Instr::MovI { dst: r(1), imm: 0 },
        ];
        let keep_regs = |edges: Vec<DepEdge>| {
            edges
                .into_iter()
                .filter(|e| e.kind != DepKind::Memory)
                .map(|e| (e.pred, e.succ, e.kind))
                .collect::<Vec<_>>()
        };
        let a = keep_regs(dependence_edges(&region, &ConservativeOracle));
        let b = keep_regs(dependence_edges(&region, &SymbolicOracle));
        assert_eq!(a, b);
        assert!(a
            .iter()
            .any(|&(p, s, k)| p == 0 && s == 1 && matches!(k, DepKind::Raw(_))));
        assert!(a
            .iter()
            .any(|&(p, s, k)| p == 1 && s == 2 && matches!(k, DepKind::War(_))));
        assert!(a
            .iter()
            .any(|&(p, s, k)| p == 0 && s == 2 && matches!(k, DepKind::Waw(_))));
    }
}
