//! The loop forest: natural loops of the IR CFG arranged by nesting.
//!
//! [`supersym_ir::natural_loops`] finds one [`Loop`](supersym_ir::Loop)
//! per back-edge header; this module arranges them into a forest by body
//! containment (a loop is nested in another exactly when its body is a
//! subset of the other's), annotates each with its depth and children, and
//! flags the innermost loops — the ones the scalar-evolution and
//! dependence analyses in [`crate::scev`] reason about one iteration at a
//! time.

use supersym_ir::{natural_loops, BlockId, Function};

/// One natural loop with its position in the nesting forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the body, header included, sorted by block id.
    pub body: Vec<BlockId>,
    /// Back-edge sources.
    pub latches: Vec<BlockId>,
    /// Index (into [`LoopForest::loops`]) of the innermost enclosing loop.
    pub parent: Option<usize>,
    /// Indices of the loops nested directly inside this one.
    pub children: Vec<usize>,
    /// Nesting depth: `1` for an outermost loop.
    pub depth: u32,
}

impl LoopInfo {
    /// Whether the loop contains no other loop.
    #[must_use]
    pub fn is_innermost(&self) -> bool {
        self.children.is_empty()
    }

    /// Whether `block` belongs to the loop body.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.body.binary_search(&block).is_ok()
    }
}

/// The loop forest of one function, ordered outer-before-inner (parents
/// always precede their children) with headers as the tiebreak.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopForest {
    /// The loops; indices are stable and used for `parent`/`children`.
    pub loops: Vec<LoopInfo>,
}

impl LoopForest {
    /// Indices of the innermost loops.
    #[must_use]
    pub fn innermost(&self) -> Vec<usize> {
        (0..self.loops.len())
            .filter(|&i| self.loops[i].is_innermost())
            .collect()
    }

    /// The innermost loop containing `block`, if any.
    #[must_use]
    pub fn innermost_containing(&self, block: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(block))
            .max_by_key(|(_, l)| l.depth)
            .map(|(i, _)| i)
    }
}

/// Builds the loop forest of `func`.
///
/// Nesting is decided purely by body containment, which is well defined for
/// natural loops sharing no header: two loop bodies are either disjoint or
/// one contains the other.
#[must_use]
pub fn loop_forest(func: &Function) -> LoopForest {
    let mut raw = natural_loops(func);
    for l in &mut raw {
        l.body.sort_unstable();
    }
    // Sort outer loops first (larger bodies), headers as tiebreak, so
    // parents precede children and the order is deterministic.
    raw.sort_by(|a, b| {
        b.body
            .len()
            .cmp(&a.body.len())
            .then(a.header.cmp(&b.header))
    });

    let contains = |outer: &[BlockId], inner: &[BlockId]| -> bool {
        inner.iter().all(|b| outer.binary_search(b).is_ok())
    };
    let mut loops: Vec<LoopInfo> = raw
        .iter()
        .map(|l| LoopInfo {
            header: l.header,
            body: l.body.clone(),
            latches: l.latches.clone(),
            parent: None,
            children: Vec::new(),
            depth: 1,
        })
        .collect();
    for i in 0..loops.len() {
        // The innermost enclosing loop is the *smallest* strict superset;
        // scanning previous (larger-or-equal) entries from the end finds it
        // first.
        for j in (0..i).rev() {
            let strict = loops[j].body.len() > loops[i].body.len();
            if strict && contains(&loops[j].body, &loops[i].body) {
                loops[i].parent = Some(j);
                loops[i].depth = loops[j].depth + 1;
                loops[j].children.push(i);
                break;
            }
        }
    }
    LoopForest { loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_ir::{Block, Function, Inst, Terminator, VReg};
    use supersym_lang::ast::Ty;

    fn block(term: Terminator) -> Block {
        Block {
            insts: vec![Inst::ConstInt {
                dst: VReg(0),
                value: 1,
            }],
            term,
        }
    }

    /// entry -> outer header -> inner header -> inner body -> (inner header
    /// | outer latch) -> (outer header | exit).
    fn nested() -> Function {
        Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![
                block(Terminator::Jump(BlockId(1))), // 0 entry
                block(Terminator::Branch {
                    cond: VReg(0),
                    then_bb: BlockId(2),
                    else_bb: BlockId(5),
                }), // 1 outer header
                block(Terminator::Branch {
                    cond: VReg(0),
                    then_bb: BlockId(3),
                    else_bb: BlockId(4),
                }), // 2 inner header
                block(Terminator::Jump(BlockId(2))), // 3 inner latch
                block(Terminator::Jump(BlockId(1))), // 4 outer latch
                block(Terminator::Return(None)),     // 5 exit
            ],
            vreg_tys: vec![Ty::Int],
        }
    }

    #[test]
    fn nested_loops_form_a_chain() {
        let forest = loop_forest(&nested());
        assert_eq!(forest.loops.len(), 2);
        let outer = &forest.loops[0];
        let inner = &forest.loops[1];
        assert_eq!(outer.header, BlockId(1));
        assert_eq!(inner.header, BlockId(2));
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(0));
        assert_eq!(outer.children, vec![1]);
        assert!(inner.is_innermost());
        assert!(!outer.is_innermost());
        assert_eq!(forest.innermost(), vec![1]);
    }

    #[test]
    fn innermost_containing_picks_the_deepest() {
        let forest = loop_forest(&nested());
        assert_eq!(forest.innermost_containing(BlockId(3)), Some(1));
        assert_eq!(forest.innermost_containing(BlockId(4)), Some(0));
        assert_eq!(forest.innermost_containing(BlockId(0)), None);
        assert_eq!(forest.innermost_containing(BlockId(5)), None);
    }

    #[test]
    fn straight_line_has_empty_forest() {
        let func = Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![block(Terminator::Return(None))],
            vreg_tys: vec![Ty::Int],
        };
        assert!(loop_forest(&func).loops.is_empty());
    }
}
