//! # supersym-regalloc
//!
//! Register allocation for the supersym compiler, in the paper's two-part
//! style (§3): the register file is split into **expression temporaries**
//! (assigned to block-local vregs by the code generator, drawing from
//! [`TempPool`]s) and **home locations** for variables (this crate's
//! [`allocate`], the paper's *global register allocation* in the style of
//! Wall's intermodule allocator \[16\]).
//!
//! Home allocation is usage-driven: every global scalar and every local of a
//! function not involved in recursion is a candidate; candidates are ranked
//! by loop-depth-weighted static reference counts, and the top candidates
//! get dedicated registers (one each — registers are never shared between
//! variables, which is what makes the allocation safe interprocedurally).
//! Everything else lives in memory: global scalars and arrays in the global
//! data region, locals in the function's frame.
//!
//! ## Example
//!
//! ```
//! use supersym_machine::RegisterSplit;
//!
//! let ast = supersym_lang::parse(
//!     "global var g; fn main() -> int { g = g + 1; return g; }",
//! )?;
//! supersym_lang::check(&ast)?;
//! let ir = supersym_ir::lower(&ast)?;
//! let homes = supersym_regalloc::allocate(&ir, RegisterSplit::paper_default(), true);
//! // The hot global got a register:
//! assert!(matches!(
//!     homes.global_home(supersym_ir::GlobalId(0)),
//!     supersym_regalloc::Home::IntReg(_)
//! ));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{HashMap, HashSet};
use supersym_ir::{natural_loops, GlobalId, GlobalKind, Inst, LocalId, Module, VarRef};
use supersym_isa::{FpReg, IntReg, NUM_FP_REGS, NUM_INT_REGS};
use supersym_lang::ast::Ty;
use supersym_machine::RegisterSplit;

/// Number of integer/FP registers reserved for argument passing (`r1..r8`
/// and `f1..f8`; `r1`/`f1` also carry return values).
pub const NUM_ARG_REGS: usize = 8;

/// Integer registers available as temporaries or homes, in allocation
/// order: `r9..r28`, then `r32..r63` (skipping zero, args, sp, gp, at).
#[must_use]
pub fn usable_int_regs() -> Vec<IntReg> {
    let mut regs = Vec::new();
    for index in 9..29 {
        regs.push(IntReg::new_unchecked(index));
    }
    for index in 32..NUM_INT_REGS as u8 {
        regs.push(IntReg::new_unchecked(index));
    }
    regs
}

/// FP registers available as temporaries or homes: `f0`, then `f9..f63`
/// (skipping args `f1..f8`).
#[must_use]
pub fn usable_fp_regs() -> Vec<FpReg> {
    let mut regs = vec![FpReg::new_unchecked(0)];
    for index in 9..NUM_FP_REGS as u8 {
        regs.push(FpReg::new_unchecked(index));
    }
    regs
}

/// Where a variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Home {
    /// A dedicated integer register.
    IntReg(IntReg),
    /// A dedicated FP register.
    FpReg(FpReg),
    /// A word in the global data region (absolute address).
    GlobalMem(usize),
    /// A slot in the owning function's frame (sp-relative word).
    Frame(usize),
}

/// A pool of temporary registers handed to the code generator.
///
/// Allocation is **round-robin** (FIFO): a just-released register goes to
/// the back of the queue, so consecutive values land in different
/// registers and the reuse distance approaches the pool size. This is what
/// makes the *number* of temporaries matter, exactly as in the paper:
/// "using the same temporary register for two different values in the same
/// basic block introduces an artificial dependency that can interfere with
/// pipeline scheduling" (§3) — a larger pool means fewer such reuses. When
/// the pool runs dry the code generator must spill (§4.4).
#[derive(Debug, Clone)]
pub struct TempPool<R: Copy + Eq> {
    free: std::collections::VecDeque<R>,
    all: Vec<R>,
}

impl<R: Copy + Eq + std::fmt::Debug> TempPool<R> {
    /// Creates a pool over the given registers.
    #[must_use]
    pub fn new(regs: Vec<R>) -> Self {
        TempPool {
            free: regs.iter().copied().collect(),
            all: regs,
        }
    }

    /// Takes a register, or `None` when the pool is dry.
    pub fn alloc(&mut self) -> Option<R> {
        self.free.pop_front()
    }

    /// Returns a register to the back of the pool.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not part of this pool or is already free
    /// (double free).
    pub fn release(&mut self, reg: R) {
        assert!(self.all.contains(&reg), "release of foreign register");
        assert!(!self.free.contains(&reg), "double release of {reg:?}");
        self.free.push_back(reg);
    }

    /// Resets the pool to fully free (used at scheduling-region boundaries).
    pub fn reset(&mut self) {
        self.free = self.all.iter().copied().collect();
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.all.len()
    }

    /// Currently free count.
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

/// The result of home allocation.
#[derive(Debug, Clone)]
pub struct HomeAllocation {
    global_homes: Vec<Home>,
    local_homes: Vec<Vec<Home>>,
    frame_words: Vec<usize>,
    globals_words: usize,
    int_temps: Vec<IntReg>,
    fp_temps: Vec<FpReg>,
}

impl HomeAllocation {
    /// Home of a global (arrays report their base address).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the allocated module.
    #[must_use]
    pub fn global_home(&self, id: GlobalId) -> Home {
        self.global_homes[id.0 as usize]
    }

    /// Home of a local of function `func_index`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn local_home(&self, func_index: usize, id: LocalId) -> Home {
        self.local_homes[func_index][id.0 as usize]
    }

    /// Home of any variable reference in the context of `func_index`.
    #[must_use]
    pub fn home(&self, func_index: usize, var: VarRef) -> Home {
        match var {
            VarRef::Global(g) => self.global_home(g),
            VarRef::Local(l) => self.local_home(func_index, l),
        }
    }

    /// Words of frame (memory-resident locals) for function `func_index`;
    /// the code generator appends spill slots after these.
    #[must_use]
    pub fn frame_words(&self, func_index: usize) -> usize {
        self.frame_words[func_index]
    }

    /// Size of the global data region in words.
    #[must_use]
    pub fn globals_words(&self) -> usize {
        self.globals_words
    }

    /// Integer temporaries available to the code generator.
    #[must_use]
    pub fn int_temps(&self) -> &[IntReg] {
        &self.int_temps
    }

    /// FP temporaries available to the code generator.
    #[must_use]
    pub fn fp_temps(&self) -> &[FpReg] {
        &self.fp_temps
    }

    /// All home registers in use (needed by the code generator to know what
    /// a call preserves).
    #[must_use]
    pub fn home_registers(&self) -> (Vec<IntReg>, Vec<FpReg>) {
        let mut ints = Vec::new();
        let mut fps = Vec::new();
        let all = self
            .global_homes
            .iter()
            .chain(self.local_homes.iter().flatten());
        for home in all {
            match home {
                Home::IntReg(r) => ints.push(*r),
                Home::FpReg(r) => fps.push(*r),
                _ => {}
            }
        }
        ints.sort_unstable();
        ints.dedup();
        fps.sort_unstable();
        fps.dedup();
        (ints, fps)
    }
}

/// One candidate for a home register.
#[derive(Debug)]
struct Candidate {
    var: CandidateVar,
    ty: Ty,
    score: f64,
}

#[derive(Debug, Clone, Copy)]
enum CandidateVar {
    Global(GlobalId),
    Local { func: usize, id: LocalId },
}

/// Computes home locations for every variable in the module.
///
/// With `promote` false (optimization levels below the paper's "global
/// register allocation"), every variable lives in memory and the *entire*
/// usable register budget (`temps + globals` of `split`) is handed to the
/// temporaries pool — matching the paper's description of the two disjoint
/// parts.
#[must_use]
pub fn allocate(module: &Module, split: RegisterSplit, promote: bool) -> HomeAllocation {
    // Global data layout: every global gets an address (promoted scalars
    // keep theirs unused, so data initialization stays uniform).
    let mut globals_words = 0_usize;
    let mut global_addrs = Vec::with_capacity(module.globals.len());
    for global in &module.globals {
        global_addrs.push(globals_words);
        globals_words += match global.kind {
            GlobalKind::Scalar { .. } => 1,
            GlobalKind::Array { len } => len,
        };
    }

    let usable_int = usable_int_regs();
    let usable_fp = usable_fp_regs();
    let n_int_temps = (split.int_temps as usize).min(usable_int.len());
    let n_fp_temps = (split.fp_temps as usize).min(usable_fp.len());
    let (int_temps, int_home_regs) = usable_int.split_at(n_int_temps);
    let (fp_temps, fp_home_regs) = usable_fp.split_at(n_fp_temps);
    let n_int_homes = (split.int_globals as usize).min(int_home_regs.len());
    let n_fp_homes = (split.fp_globals as usize).min(fp_home_regs.len());

    let (mut int_temps, mut fp_temps) = (int_temps.to_vec(), fp_temps.to_vec());
    let (int_home_regs, fp_home_regs) = if promote {
        (
            int_home_regs[..n_int_homes].to_vec(),
            fp_home_regs[..n_fp_homes].to_vec(),
        )
    } else {
        // Without global register allocation, hand the whole budget to the
        // temporaries (the paper's levels 0-3 still schedule expressions).
        int_temps.extend_from_slice(&int_home_regs[..n_int_homes]);
        fp_temps.extend_from_slice(&fp_home_regs[..n_fp_homes]);
        (Vec::new(), Vec::new())
    };

    // Candidate scoring.
    let recursive = recursive_functions(module);
    let mut scores: HashMap<u64, f64> = HashMap::new();
    for (func_index, func) in module.funcs.iter().enumerate() {
        let depth = block_loop_depths(func);
        for (block_index, block) in func.blocks.iter().enumerate() {
            let weight = 10_f64.powi(depth[block_index].min(4) as i32);
            for inst in &block.insts {
                let var = match inst {
                    Inst::ReadVar { var, .. } | Inst::WriteVar { var, .. } => Some(*var),
                    _ => None,
                };
                if let Some(var) = var {
                    *scores.entry(candidate_key(func_index, var)).or_insert(0.0) += weight;
                }
            }
        }
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for (index, global) in module.globals.iter().enumerate() {
        if let GlobalKind::Scalar { .. } = global.kind {
            let id = GlobalId(index as u32);
            let score = *scores
                .get(&candidate_key(usize::MAX, VarRef::Global(id)))
                .unwrap_or(&0.0);
            if score > 0.0 {
                candidates.push(Candidate {
                    var: CandidateVar::Global(id),
                    ty: global.ty,
                    score,
                });
            }
        }
    }
    for (func_index, func) in module.funcs.iter().enumerate() {
        if recursive.contains(&func_index) {
            continue; // re-entrant frames cannot share a fixed register
        }
        for (local_index, var) in func.vars.iter().enumerate() {
            let id = LocalId(local_index as u32);
            let score = *scores
                .get(&candidate_key(func_index, VarRef::Local(id)))
                .unwrap_or(&0.0);
            if score > 0.0 {
                candidates.push(Candidate {
                    var: CandidateVar::Local {
                        func: func_index,
                        id,
                    },
                    ty: var.ty,
                    score,
                });
            }
        }
    }
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));

    // Assign registers to the best candidates.
    let mut int_iter = int_home_regs.into_iter();
    let mut fp_iter = fp_home_regs.into_iter();
    let mut global_reg: HashMap<u32, Home> = HashMap::new();
    let mut local_reg: HashMap<(usize, u32), Home> = HashMap::new();
    for candidate in candidates {
        let home = match candidate.ty {
            Ty::Int => int_iter.next().map(Home::IntReg),
            Ty::Float => fp_iter.next().map(Home::FpReg),
        };
        let Some(home) = home else { continue };
        match candidate.var {
            CandidateVar::Global(g) => {
                global_reg.insert(g.0, home);
            }
            CandidateVar::Local { func, id } => {
                local_reg.insert((func, id.0), home);
            }
        }
    }

    // Materialize homes.
    let global_homes: Vec<Home> = module
        .globals
        .iter()
        .enumerate()
        .map(|(index, global)| match global.kind {
            GlobalKind::Scalar { .. } => global_reg
                .get(&(index as u32))
                .copied()
                .unwrap_or(Home::GlobalMem(global_addrs[index])),
            GlobalKind::Array { .. } => Home::GlobalMem(global_addrs[index]),
        })
        .collect();
    let mut local_homes = Vec::with_capacity(module.funcs.len());
    let mut frame_words = Vec::with_capacity(module.funcs.len());
    for (func_index, func) in module.funcs.iter().enumerate() {
        let mut homes = Vec::with_capacity(func.vars.len());
        let mut next_slot = 0_usize;
        for (local_index, _) in func.vars.iter().enumerate() {
            if let Some(&home) = local_reg.get(&(func_index, local_index as u32)) {
                homes.push(home);
            } else {
                homes.push(Home::Frame(next_slot));
                next_slot += 1;
            }
        }
        local_homes.push(homes);
        frame_words.push(next_slot);
    }

    HomeAllocation {
        global_homes,
        local_homes,
        frame_words,
        globals_words,
        int_temps,
        fp_temps,
    }
}

fn candidate_key(func_index: usize, var: VarRef) -> u64 {
    match var {
        VarRef::Global(g) => u64::from(g.0),
        VarRef::Local(l) => ((func_index as u64 + 1) << 32) | u64::from(l.0),
    }
}

/// Loop-nesting depth of each block.
fn block_loop_depths(func: &supersym_ir::Function) -> Vec<u32> {
    let mut depth = vec![0_u32; func.blocks.len()];
    for l in natural_loops(func) {
        for block in &l.body {
            depth[block.index()] += 1;
        }
    }
    depth
}

/// Indices of functions that can be live twice on the call stack (members of
/// call-graph cycles, including self-recursion).
#[must_use]
pub fn recursive_functions(module: &Module) -> HashSet<usize> {
    let n = module.funcs.len();
    let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (index, func) in module.funcs.iter().enumerate() {
        for block in &func.blocks {
            for inst in &block.insts {
                if let Inst::Call { callee, .. } = inst {
                    edges[index].insert(*callee as usize);
                }
            }
        }
    }
    // Reachability-based cycle membership: f is recursive if f can reach f.
    let mut result = HashSet::new();
    for start in 0..n {
        let mut seen = HashSet::new();
        let mut work: Vec<usize> = edges[start].iter().copied().collect();
        while let Some(next) = work.pop() {
            if next == start {
                result.insert(start);
                break;
            }
            if seen.insert(next) {
                work.extend(edges[next].iter().copied());
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepare(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        supersym_ir::lower(&ast).unwrap()
    }

    #[test]
    fn register_pools_disjoint() {
        let ints = usable_int_regs();
        assert!(!ints.contains(&IntReg::ZERO));
        assert!(!ints.contains(&IntReg::SP));
        assert!(!ints.contains(&IntReg::GP));
        assert!(!ints.contains(&IntReg::AT));
        for arg in 1..=NUM_ARG_REGS as u8 {
            assert!(!ints.contains(&IntReg::new_unchecked(arg)));
        }
        assert_eq!(ints.len(), 52);
        let fps = usable_fp_regs();
        assert_eq!(fps.len(), 56);
    }

    #[test]
    fn paper_split_fits() {
        let split = RegisterSplit::paper_default();
        let module = prepare("fn main() { }");
        let homes = allocate(&module, split, true);
        assert_eq!(homes.int_temps().len(), 16);
        assert_eq!(homes.fp_temps().len(), 16);
    }

    #[test]
    fn no_promotion_hands_all_registers_to_temps() {
        let module = prepare("global var g; fn main() { g = 1; }");
        let homes = allocate(&module, RegisterSplit::paper_default(), false);
        assert_eq!(homes.int_temps().len(), 16 + 26);
        assert!(matches!(homes.global_home(GlobalId(0)), Home::GlobalMem(0)));
    }

    #[test]
    fn hot_global_promoted() {
        let module = prepare(
            "global var hot; global var cold;
             fn main() {
                 cold = 1;
                 for (i = 0; i < 100; i = i + 1) { hot = hot + i; }
             }",
        );
        let homes = allocate(&module, RegisterSplit::paper_default(), true);
        assert!(matches!(homes.global_home(GlobalId(0)), Home::IntReg(_)));
    }

    #[test]
    fn arrays_never_promoted() {
        let module = prepare(
            "global arr a[16];
             fn main() { for (i = 0; i < 16; i = i + 1) { a[i] = i; } }",
        );
        let homes = allocate(&module, RegisterSplit::paper_default(), true);
        assert!(matches!(homes.global_home(GlobalId(0)), Home::GlobalMem(0)));
        assert_eq!(homes.globals_words(), 16);
    }

    #[test]
    fn recursive_function_locals_stay_in_frame() {
        let module = prepare(
            "fn fib(int n) -> int {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }
             fn main() -> int { return fib(10); }",
        );
        let fib_index = module.func_index("fib").unwrap();
        assert!(recursive_functions(&module).contains(&fib_index));
        let homes = allocate(&module, RegisterSplit::paper_default(), true);
        // fib's parameter n must be in the frame.
        assert!(matches!(
            homes.local_home(fib_index, LocalId(0)),
            Home::Frame(_)
        ));
        // main's locals (if any) could be promoted; main is not recursive.
        assert!(!recursive_functions(&module).contains(&module.entry));
    }

    #[test]
    fn mutual_recursion_detected() {
        let module = prepare(
            "fn even(int n) -> int { if (n == 0) { return 1; } return odd(n - 1); }
             fn odd(int n) -> int { if (n == 0) { return 0; } return even(n - 1); }
             fn main() -> int { return even(8); }",
        );
        let recursive = recursive_functions(&module);
        assert!(recursive.contains(&0));
        assert!(recursive.contains(&1));
        assert!(!recursive.contains(&2));
    }

    #[test]
    fn float_variables_get_fp_homes() {
        let module = prepare(
            "global fvar x;
             fn main() { for (i = 0; i < 50; i = i + 1) { x = x + 1.0; } }",
        );
        let homes = allocate(&module, RegisterSplit::paper_default(), true);
        assert!(matches!(homes.global_home(GlobalId(0)), Home::FpReg(_)));
    }

    #[test]
    fn home_registers_unique() {
        let module = prepare(
            "global var a; global var b; global fvar c;
             fn main() {
                 for (i = 0; i < 9; i = i + 1) { a = a + 1; b = b + 2; c = c + 1.0; }
             }",
        );
        let homes = allocate(&module, RegisterSplit::paper_default(), true);
        let (ints, fps) = homes.home_registers();
        let unique_ints: HashSet<_> = ints.iter().collect();
        assert_eq!(unique_ints.len(), ints.len());
        assert!(!fps.is_empty());
        // Home registers never overlap the temp pools.
        for r in &ints {
            assert!(!homes.int_temps().contains(r));
        }
    }

    #[test]
    fn limited_budget_promotes_by_score() {
        // Two integer home registers: the induction variable and `hot`
        // out-score `cold`.
        let split = RegisterSplit {
            int_temps: 4,
            int_globals: 2,
            fp_temps: 4,
            fp_globals: 0,
        };
        let module = prepare(
            "global var hot; global var cold;
             fn main() {
                 cold = 1;
                 for (i = 0; i < 100; i = i + 1) { hot = hot + i; }
             }",
        );
        let homes = allocate(&module, split, true);
        assert!(matches!(homes.global_home(GlobalId(0)), Home::IntReg(_)));
        assert!(matches!(homes.global_home(GlobalId(1)), Home::GlobalMem(_)));
    }

    #[test]
    fn temp_pool_lifo_and_guards() {
        let mut pool = TempPool::new(vec![1, 2, 3]);
        assert_eq!(pool.capacity(), 3);
        let a = pool.alloc().unwrap();
        assert_eq!(pool.available(), 2);
        pool.release(a);
        assert_eq!(pool.available(), 3);
        pool.reset();
        assert_eq!(pool.available(), 3);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn temp_pool_double_free_panics() {
        let mut pool = TempPool::new(vec![1]);
        let a = pool.alloc().unwrap();
        pool.release(a);
        pool.release(a);
    }

    #[test]
    fn frame_slots_compact() {
        let module = prepare(
            "fn fib(int n) -> int {
                 var a = 1; var b = 2;
                 if (n < 2) { return n; }
                 return fib(n - 1) + a + b;
             }
             fn main() -> int { return fib(5); }",
        );
        let homes = allocate(&module, RegisterSplit::paper_default(), true);
        let fib = module.func_index("fib").unwrap();
        assert_eq!(homes.frame_words(fib), 3); // n, a, b
        let slots: Vec<Home> = (0..3).map(|i| homes.local_home(fib, LocalId(i))).collect();
        assert_eq!(slots, vec![Home::Frame(0), Home::Frame(1), Home::Frame(2)]);
    }
}

#[cfg(test)]
mod pool_behavior_tests {
    use super::*;

    #[test]
    fn round_robin_spreads_allocations() {
        // FIFO: consecutive alloc/release cycles should walk the whole
        // pool before reusing a register (the anti-WAW property).
        let mut pool = TempPool::new(vec![1, 2, 3, 4]);
        let mut seen = Vec::new();
        for _ in 0..8 {
            let r = pool.alloc().unwrap();
            seen.push(r);
            pool.release(r);
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = TempPool::new(vec![1, 2]);
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_none());
    }

    #[test]
    fn promotion_respects_type_budgets() {
        // Only FP home registers available: the int candidate stays in
        // memory while the float one is promoted.
        let src = "global var ihot; global fvar fhot;
             fn main() {
                 for (i = 0; i < 50; i = i + 1) {
                     ihot = ihot + 1;
                     fhot = fhot + 1.0;
                 }
             }";
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        let module = supersym_ir::lower(&ast).unwrap();
        let split = RegisterSplit {
            int_temps: 8,
            int_globals: 0,
            fp_temps: 8,
            fp_globals: 4,
        };
        let homes = allocate(&module, split, true);
        assert!(matches!(homes.global_home(GlobalId(0)), Home::GlobalMem(_)));
        assert!(matches!(homes.global_home(GlobalId(1)), Home::FpReg(_)));
    }

    #[test]
    fn no_promotion_zero_candidates() {
        let src = "fn main() { }";
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        let module = supersym_ir::lower(&ast).unwrap();
        let homes = allocate(&module, RegisterSplit::paper_default(), true);
        let (ints, fps) = homes.home_registers();
        assert!(ints.is_empty());
        assert!(fps.is_empty());
        assert_eq!(homes.globals_words(), 0);
    }
}
