//! Semantic analysis: name resolution and type checking.

use crate::ast::*;
use crate::error::LangError;
use std::collections::HashMap;

/// Checks a module: all names defined, no duplicate definitions, all
/// expressions well-typed, `return` statements consistent with signatures.
///
/// # Errors
///
/// Returns the first semantic error found.
pub fn check(module: &Module) -> Result<(), LangError> {
    let mut checker = Checker::new(module)?;
    for func in &module.funcs {
        checker.check_function(func)?;
    }
    Ok(())
}

/// Signature of a function as seen by callers.
struct FnSig {
    params: Vec<Ty>,
    ret: Option<Ty>,
}

/// Maximum AST depth (statements + expressions) the checker accepts.
///
/// The parser's own limit bounds *parenthesized* nesting, but a left-
/// associated operator chain (`a + a + ... + a`) parses iteratively while
/// building an AST whose depth equals the chain length — and `check`,
/// IR lowering, the printers, and the unroller all recurse over that
/// depth. Gating here keeps every downstream recursion bounded, for
/// parsed source and for modules assembled directly from AST nodes alike.
pub const MAX_AST_DEPTH: u32 = 512;

struct Checker<'m> {
    scalars: HashMap<&'m str, Ty>,
    arrays: HashMap<&'m str, Ty>,
    funcs: HashMap<&'m str, FnSig>,
    /// Lexical scopes for the function currently being checked.
    scopes: Vec<HashMap<String, Ty>>,
    current_ret: Option<Ty>,
    /// Current recursion depth over the AST (see [`MAX_AST_DEPTH`]).
    depth: u32,
}

impl<'m> Checker<'m> {
    fn new(module: &'m Module) -> Result<Self, LangError> {
        let mut scalars = HashMap::new();
        let mut arrays = HashMap::new();
        for global in &module.globals {
            let duplicate = match global.kind {
                GlobalKind::Scalar { .. } => {
                    scalars.insert(global.name.as_str(), global.ty).is_some()
                }
                GlobalKind::Array { .. } => {
                    arrays.insert(global.name.as_str(), global.ty).is_some()
                }
            };
            if duplicate
                || (scalars.contains_key(global.name.as_str())
                    && arrays.contains_key(global.name.as_str()))
            {
                return Err(LangError::Redefined {
                    name: global.name.clone(),
                });
            }
        }
        let mut funcs = HashMap::new();
        for func in &module.funcs {
            let sig = FnSig {
                params: func.params.iter().map(|(_, t)| *t).collect(),
                ret: func.ret,
            };
            if funcs.insert(func.name.as_str(), sig).is_some() {
                return Err(LangError::Redefined {
                    name: func.name.clone(),
                });
            }
        }
        Ok(Checker {
            scalars,
            arrays,
            funcs,
            scopes: Vec::new(),
            current_ret: None,
            depth: 0,
        })
    }

    /// Bumps the AST recursion depth, failing with [`LangError::TooDeep`]
    /// at the limit.
    fn enter(&mut self) -> Result<(), LangError> {
        if self.depth >= MAX_AST_DEPTH {
            return Err(LangError::TooDeep {
                limit: MAX_AST_DEPTH,
                line: 0,
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn check_function(&mut self, func: &FnDecl) -> Result<(), LangError> {
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        for (name, ty) in &func.params {
            if self.scopes[0].insert(name.clone(), *ty).is_some() {
                return Err(LangError::Redefined { name: name.clone() });
            }
        }
        self.current_ret = func.ret;
        self.check_block(&func.body)
    }

    fn check_block(&mut self, block: &Block) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lookup_var(&self, name: &str) -> Option<Ty> {
        for scope in self.scopes.iter().rev() {
            if let Some(&ty) = scope.get(name) {
                return Some(ty);
            }
        }
        self.scalars.get(name).copied()
    }

    fn declare(&mut self, name: &str, ty: Ty) -> Result<(), LangError> {
        let scope = self.scopes.last_mut().expect("inside a function");
        if scope.insert(name.to_string(), ty).is_some() {
            return Err(LangError::Redefined {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        self.enter()?;
        let result = self.check_stmt_inner(stmt);
        self.leave();
        result
    }

    fn check_stmt_inner(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Let { name, ty, init } => {
                let init_ty = self.expect_value(init)?;
                if init_ty != *ty {
                    return Err(LangError::TypeMismatch {
                        context: format!("initializer of `{name}` is {init_ty}, declared {ty}"),
                    });
                }
                self.declare(name, *ty)
            }
            Stmt::Assign { name, value } => {
                let Some(var_ty) = self.lookup_var(name) else {
                    return Err(LangError::Undefined {
                        name: name.clone(),
                        line: 0,
                    });
                };
                let value_ty = self.expect_value(value)?;
                if value_ty != var_ty {
                    return Err(LangError::TypeMismatch {
                        context: format!("assigning {value_ty} to `{name}` of type {var_ty}"),
                    });
                }
                Ok(())
            }
            Stmt::AssignElem { arr, index, value } => {
                let Some(&elem_ty) = self.arrays.get(arr.as_str()) else {
                    return Err(LangError::Undefined {
                        name: arr.clone(),
                        line: 0,
                    });
                };
                let index_ty = self.expect_value(index)?;
                if index_ty != Ty::Int {
                    return Err(LangError::TypeMismatch {
                        context: format!("index into `{arr}` must be int"),
                    });
                }
                let value_ty = self.expect_value(value)?;
                if value_ty != elem_ty {
                    return Err(LangError::TypeMismatch {
                        context: format!("storing {value_ty} into {elem_ty} array `{arr}`"),
                    });
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expect_int(cond, "if condition")?;
                self.check_block(then_blk)?;
                if let Some(else_blk) = else_blk {
                    self.check_block(else_blk)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.expect_int(cond, "while condition")?;
                self.check_block(body)
            }
            Stmt::For {
                var,
                init,
                cond,
                step: _,
                body,
            } => {
                let init_ty = self.expect_value(init)?;
                if init_ty != Ty::Int {
                    return Err(LangError::TypeMismatch {
                        context: format!("for initializer of `{var}` must be int"),
                    });
                }
                self.scopes.push(HashMap::new());
                self.declare(var, Ty::Int)?;
                self.expect_int(cond, "for condition")?;
                self.check_block(body)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value) => match (self.current_ret, value) {
                (None, None) => Ok(()),
                (Some(expected), Some(value)) => {
                    let ty = self.expect_value(value)?;
                    if ty != expected {
                        Err(LangError::TypeMismatch {
                            context: format!("returning {ty} from a function returning {expected}"),
                        })
                    } else {
                        Ok(())
                    }
                }
                (None, Some(_)) => Err(LangError::TypeMismatch {
                    context: "returning a value from a void function".into(),
                }),
                (Some(expected), None) => Err(LangError::TypeMismatch {
                    context: format!("empty return in a function returning {expected}"),
                }),
            },
            Stmt::ExprStmt(expr) => {
                self.check_expr(expr)?;
                Ok(())
            }
        }
    }

    fn expect_int(&mut self, expr: &Expr, context: &str) -> Result<(), LangError> {
        let ty = self.expect_value(expr)?;
        if ty != Ty::Int {
            return Err(LangError::TypeMismatch {
                context: format!("{context} must be int, found {ty}"),
            });
        }
        Ok(())
    }

    fn expect_value(&mut self, expr: &Expr) -> Result<Ty, LangError> {
        self.check_expr(expr)?
            .ok_or_else(|| LangError::TypeMismatch {
                context: "void call used as a value".into(),
            })
    }

    fn check_expr(&mut self, expr: &Expr) -> Result<Option<Ty>, LangError> {
        self.enter()?;
        let result = self.check_expr_inner(expr);
        self.leave();
        result
    }

    fn check_expr_inner(&mut self, expr: &Expr) -> Result<Option<Ty>, LangError> {
        match expr {
            Expr::IntLit(_) => Ok(Some(Ty::Int)),
            Expr::FloatLit(_) => Ok(Some(Ty::Float)),
            Expr::Var(name) => {
                self.lookup_var(name)
                    .map(Some)
                    .ok_or_else(|| LangError::Undefined {
                        name: name.clone(),
                        line: 0,
                    })
            }
            Expr::Elem { arr, index } => {
                let Some(&elem_ty) = self.arrays.get(arr.as_str()) else {
                    return Err(LangError::Undefined {
                        name: arr.clone(),
                        line: 0,
                    });
                };
                let index_ty = self.expect_value(index)?;
                if index_ty != Ty::Int {
                    return Err(LangError::TypeMismatch {
                        context: format!("index into `{arr}` must be int"),
                    });
                }
                Ok(Some(elem_ty))
            }
            Expr::Unary { op, expr } => {
                let ty = self.expect_value(expr)?;
                match op {
                    UnOp::Neg => Ok(Some(ty)),
                    UnOp::Not => {
                        if ty != Ty::Int {
                            Err(LangError::TypeMismatch {
                                context: "`!` needs an int operand".into(),
                            })
                        } else {
                            Ok(Some(Ty::Int))
                        }
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs_ty = self.expect_value(lhs)?;
                let rhs_ty = self.expect_value(rhs)?;
                if lhs_ty != rhs_ty {
                    return Err(LangError::TypeMismatch {
                        context: format!("operands are {lhs_ty} and {rhs_ty}"),
                    });
                }
                if op.is_int_only() && lhs_ty != Ty::Int {
                    return Err(LangError::TypeMismatch {
                        context: "integer-only operator applied to floats".into(),
                    });
                }
                if op.is_comparison() {
                    Ok(Some(Ty::Int))
                } else {
                    Ok(Some(lhs_ty))
                }
            }
            Expr::Call { name, args } => {
                let Some(sig) = self.funcs.get(name.as_str()) else {
                    return Err(LangError::Undefined {
                        name: name.clone(),
                        line: 0,
                    });
                };
                if sig.params.len() != args.len() {
                    return Err(LangError::ArityMismatch {
                        name: name.clone(),
                        expected: sig.params.len(),
                        found: args.len(),
                    });
                }
                let params = sig.params.clone();
                let ret = sig.ret;
                for (arg, expected) in args.iter().zip(params) {
                    let ty = self.expect_value(arg)?;
                    if ty != expected {
                        return Err(LangError::TypeMismatch {
                            context: format!("argument to `{name}` is {ty}, expected {expected}"),
                        });
                    }
                }
                Ok(ret)
            }
            Expr::Cast { to, expr } => {
                let from = self.expect_value(expr)?;
                match (from, to) {
                    (Ty::Int, Ty::Float) | (Ty::Float, Ty::Int) => Ok(Some(*to)),
                    _ => Err(LangError::TypeMismatch {
                        context: format!("cast from {from} to {to}"),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check_src(src: &str) -> Result<(), LangError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn well_typed_program() {
        check_src(
            "global arr a[8];
             global fvar total = 0.0;
             fn sum(int n) -> int {
                 var s = 0;
                 for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
                 return s;
             }
             fn main() { total = itof(sum(8)); }",
        )
        .unwrap();
    }

    #[test]
    fn undefined_variable() {
        let err = check_src("fn f() { x = 1; }").unwrap_err();
        assert!(matches!(err, LangError::Undefined { .. }));
    }

    #[test]
    fn type_mismatch_assignment() {
        let err = check_src("fn f() { var x = 1; x = 2.0; }").unwrap_err();
        assert!(matches!(err, LangError::TypeMismatch { .. }));
    }

    #[test]
    fn float_index_rejected() {
        let err = check_src("global arr a[4]; fn f() { a[1.5] = 0; }").unwrap_err();
        assert!(matches!(err, LangError::TypeMismatch { .. }));
    }

    #[test]
    fn arity_mismatch() {
        let err = check_src("fn g(int a) { } fn f() { g(); }").unwrap_err();
        assert!(matches!(err, LangError::ArityMismatch { .. }));
    }

    #[test]
    fn void_call_as_value_rejected() {
        let err = check_src("fn g() { } fn f() { var x = g(); }").unwrap_err();
        assert!(matches!(err, LangError::TypeMismatch { .. }));
    }

    #[test]
    fn return_type_checked() {
        assert!(check_src("fn f() -> int { return 1.0; }").is_err());
        assert!(check_src("fn f() -> int { return; }").is_err());
        assert!(check_src("fn f() { return 1; }").is_err());
        assert!(check_src("fn f() { return; }").is_ok());
    }

    #[test]
    fn deep_operator_chain_rejected() {
        // A left-associated chain parses iteratively (the parser never
        // recurses), but the checker walks the left spine — depth must be
        // gated here, not just at parse time.
        use crate::ast::{BinOp, Block, Expr, FnDecl, Module, Stmt};
        let chain = |terms: u32| {
            let mut e = Expr::IntLit(1);
            for _ in 0..terms {
                e = Expr::binary(BinOp::Add, e, Expr::IntLit(1));
            }
            Module {
                globals: vec![],
                funcs: vec![FnDecl {
                    name: "main".into(),
                    params: vec![],
                    ret: Some(Ty::Int),
                    body: Block {
                        stmts: vec![Stmt::Return(Some(e))],
                    },
                }],
            }
        };
        assert!(check(&chain(100)).is_ok());
        assert!(matches!(
            check(&chain(MAX_AST_DEPTH + 1)),
            Err(LangError::TooDeep { .. })
        ));
    }

    #[test]
    fn duplicate_definitions() {
        assert!(matches!(
            check_src("fn f() { } fn f() { }"),
            Err(LangError::Redefined { .. })
        ));
        assert!(matches!(
            check_src("global var x; global var x;"),
            Err(LangError::Redefined { .. })
        ));
        assert!(matches!(
            check_src("fn f(int a, int a) { }"),
            Err(LangError::Redefined { .. })
        ));
    }

    #[test]
    fn scoping_allows_reuse_across_blocks() {
        check_src(
            "fn f() {
                 if (1) { var x = 1; x = x + 1; } else { var x = 2; x = x; }
                 var x = 3;
                 x = x;
             }",
        )
        .unwrap();
    }

    #[test]
    fn for_var_scoped_to_loop() {
        // `i` can be reused by consecutive loops.
        check_src(
            "fn f() {
                 for (i = 0; i < 4; i = i + 1) { }
                 for (i = 0; i < 4; i = i + 1) { }
             }",
        )
        .unwrap();
        // ... but is not visible after the loop.
        assert!(check_src("fn f() { for (i = 0; i < 4; i = i + 1) { } i = 0; }").is_err());
    }

    #[test]
    fn int_only_ops_reject_float() {
        assert!(check_src("fn f(float a) -> float { return a % a; }").is_err());
        assert!(check_src("fn f(int a) -> int { return a % a; }").is_ok());
    }

    #[test]
    fn recursion_allowed() {
        check_src(
            "fn fib(int n) -> int {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }",
        )
        .unwrap();
    }

    #[test]
    fn mixed_operand_types_rejected() {
        assert!(check_src("fn f(int a, float b) -> int { return a + b; }").is_err());
    }
}
