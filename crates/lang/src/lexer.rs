//! The Tital lexer.

use crate::error::LangError;
use std::fmt;

/// Kinds of token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// An identifier or keyword.
    Ident(String),
    /// A punctuation or operator token, stored as its source text.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Punct(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

const PUNCTS: &[&str] = &[
    // Two-character tokens first (maximal munch).
    "==", "!=", "<=", ">=", "<<", ">>", "->", "&&", "||", "(", ")", "{", "}", "[", "]", ";", ",",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "!",
];

/// Tokenizes Tital source text.
///
/// Comments run from `//` to end of line.
///
/// # Errors
///
/// Returns [`LangError::UnexpectedChar`] or [`LangError::BadNumber`].
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && (bytes[i + 1] as char).is_ascii_digit()
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &source[start..i];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| LangError::BadNumber {
                    text: text.to_string(),
                    line,
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| LangError::BadNumber {
                    text: text.to_string(),
                    line,
                })?)
            };
            tokens.push(Token { kind, line });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(source[start..i].to_string()),
                line,
            });
            continue;
        }
        let rest = &source[i..];
        let mut matched = false;
        for punct in PUNCTS {
            if rest.starts_with(punct) {
                tokens.push(Token {
                    kind: TokenKind::Punct(punct),
                    line,
                });
                i += punct.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LangError::UnexpectedChar { ch: c, line });
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 2.5e-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("foo = a1 + _b;"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Punct("="),
                TokenKind::Ident("a1".into()),
                TokenKind::Punct("+"),
                TokenKind::Ident("_b".into()),
                TokenKind::Punct(";"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            kinds("<= < << ->"),
            vec![
                TokenKind::Punct("<="),
                TokenKind::Punct("<"),
                TokenKind::Punct("<<"),
                TokenKind::Punct("->"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let tokens = lex("a // comment\nb").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
    }

    #[test]
    fn unexpected_char() {
        assert!(matches!(
            lex("a @ b"),
            Err(LangError::UnexpectedChar { ch: '@', line: 1 })
        ));
    }

    #[test]
    fn int_dot_not_followed_by_digit_is_not_float() {
        // `1.` would be `1` then an unexpected `.`; we simply don't lex
        // a trailing dot as part of the number.
        assert!(lex("1.").is_err());
    }

    #[test]
    fn big_integer_literal() {
        assert_eq!(kinds("9223372036854775807")[0], TokenKind::Int(i64::MAX));
        assert!(lex("99999999999999999999999").is_err());
    }
}
