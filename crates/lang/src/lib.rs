//! # supersym-lang
//!
//! The front end for **Tital**, the small imperative language the supersym
//! benchmarks are written in. Tital stands in for the Modula-2 the paper's
//! benchmarks used: two scalar types (`int` = 64-bit integer, `float` =
//! 64-bit IEEE), global scalars and fixed-size global arrays, functions with
//! parameters and recursion, `if`/`while`/`for` control flow.
//!
//! ```text
//! global arr a[64];
//! global var total = 0;
//!
//! fn sum(int n) -> int {
//!     var s = 0;
//!     for (i = 0; i < n; i = i + 1) {
//!         s = s + a[i];
//!     }
//!     return s;
//! }
//!
//! fn main() {
//!     total = sum(64);
//! }
//! ```
//!
//! The crate provides the [`lex`]er, the [`parse`]r producing an [`ast`],
//! and [`check`] — the semantic analysis that later pipeline stages
//! (`supersym-ir` lowering, `supersym-opt` source-level unrolling) rely on.
//!
//! ## Example
//!
//! ```
//! let source = "fn main() -> int { return 6 * 7; }";
//! let module = supersym_lang::parse(source)?;
//! supersym_lang::check(&module)?;
//! assert_eq!(module.funcs.len(), 1);
//! # Ok::<(), supersym_lang::LangError>(())
//! ```

pub mod ast;
mod error;
mod lexer;
mod parser;
mod printer;
mod sema;

pub use error::LangError;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;
pub use printer::{print_expr, print_module};
pub use sema::{check, MAX_AST_DEPTH};
