//! Front-end error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the lexer, parser, or semantic checker.
///
/// Every variant carries the 1-based source line it was detected on.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LangError {
    /// An unrecognized character in the source.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Source line.
        line: u32,
    },
    /// A malformed numeric literal.
    BadNumber {
        /// The offending text.
        text: String,
        /// Source line.
        line: u32,
    },
    /// The parser found something other than what the grammar requires.
    UnexpectedToken {
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
        /// Source line.
        line: u32,
    },
    /// A name was used but never declared.
    Undefined {
        /// The name.
        name: String,
        /// Source line (0 when unavailable).
        line: u32,
    },
    /// A name was declared twice in the same scope.
    Redefined {
        /// The name.
        name: String,
    },
    /// Operand or assignment types do not match.
    TypeMismatch {
        /// Description of the context.
        context: String,
    },
    /// A call passed the wrong number of arguments.
    ArityMismatch {
        /// Callee name.
        name: String,
        /// Expected count.
        expected: usize,
        /// Found count.
        found: usize,
    },
    /// Expressions or statements nest deeper than the front end's recursion
    /// limit. Without this bound a pathological input (`((((...))))` or a
    /// chain of ten thousand unary minuses) would overflow the stack — a
    /// crash no `catch_unwind` can intercept — so the recursive-descent
    /// parser and the semantic checker both count depth and fail with a
    /// typed error instead.
    TooDeep {
        /// The depth limit that was exceeded.
        limit: u32,
        /// Source line (0 when unavailable, e.g. for synthesized ASTs).
        line: u32,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::UnexpectedChar { ch, line } => {
                write!(f, "line {line}: unexpected character {ch:?}")
            }
            LangError::BadNumber { text, line } => {
                write!(f, "line {line}: malformed number `{text}`")
            }
            LangError::UnexpectedToken {
                found,
                expected,
                line,
            } => write!(f, "line {line}: expected {expected}, found {found}"),
            LangError::Undefined { name, line } => {
                write!(f, "line {line}: `{name}` is not defined")
            }
            LangError::Redefined { name } => write!(f, "`{name}` is defined twice"),
            LangError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            LangError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "call to `{name}` expects {expected} arguments, found {found}"
            ),
            LangError::TooDeep { limit, line } => {
                write!(f, "line {line}: nesting exceeds the depth limit of {limit}")
            }
        }
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LangError::Undefined {
            name: "x".into(),
            line: 3,
        };
        assert_eq!(e.to_string(), "line 3: `x` is not defined");
        let e = LangError::ArityMismatch {
            name: "f".into(),
            expected: 2,
            found: 1,
        };
        assert_eq!(e.to_string(), "call to `f` expects 2 arguments, found 1");
    }
}
