//! Abstract syntax for Tital.
//!
//! The tree is deliberately plain data (public fields, C-spirit structs):
//! the source-level loop unroller in `supersym-opt` rewrites it directly.

use std::fmt;

/// A scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE floating point.
    Float,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => f.write_str("int"),
            Ty::Float => f.write_str("float"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `&` (integers only)
    And,
    /// `|` (integers only)
    Or,
    /// `^` (integers only)
    Xor,
    /// `<<` (integers only)
    Shl,
    /// `>>` (integers only, arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Whether this operator yields an `int` regardless of operand type.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator only accepts integer operands.
    #[must_use]
    pub fn is_int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (integers; yields 0/1).
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Variable reference (local, parameter or global scalar).
    Var(String),
    /// Global array element `arr[index]`.
    Elem {
        /// Array name.
        arr: String,
        /// Index expression (must be `int`).
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Type conversion: `itof(e)` or `ftoi(e)`.
    Cast {
        /// Target type.
        to: Ty,
        /// Operand.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary expression.
    #[must_use]
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Whether `name` occurs as a variable reference anywhere in the tree.
    #[must_use]
    pub fn references_var(&self, name: &str) -> bool {
        match self {
            Expr::IntLit(_) | Expr::FloatLit(_) => false,
            Expr::Var(v) => v == name,
            Expr::Elem { index, .. } => index.references_var(name),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => expr.references_var(name),
            Expr::Binary { lhs, rhs, .. } => lhs.references_var(name) || rhs.references_var(name),
            Expr::Call { args, .. } => args.iter().any(|a| a.references_var(name)),
        }
    }

    /// Whether the expression contains any function call.
    #[must_use]
    pub fn contains_call(&self) -> bool {
        match self {
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => false,
            Expr::Elem { index, .. } => index.contains_call(),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => expr.contains_call(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_call() || rhs.contains_call(),
            Expr::Call { .. } => true,
        }
    }

    /// Rewrites every reference to variable `name` with `replacement`,
    /// returning the new tree. Used by the careful loop unroller to
    /// substitute `i -> i + k`.
    #[must_use]
    pub fn substitute_var(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::IntLit(_) | Expr::FloatLit(_) => self.clone(),
            Expr::Var(v) => {
                if v == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Elem { arr, index } => Expr::Elem {
                arr: arr.clone(),
                index: Box::new(index.substitute_var(name, replacement)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.substitute_var(name, replacement)),
            },
            Expr::Cast { to, expr } => Expr::Cast {
                to: *to,
                expr: Box::new(expr.substitute_var(name, replacement)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.substitute_var(name, replacement)),
                rhs: Box::new(rhs.substitute_var(name, replacement)),
            },
            Expr::Call { name: callee, args } => Expr::Call {
                name: callee.clone(),
                args: args
                    .iter()
                    .map(|a| a.substitute_var(name, replacement))
                    .collect(),
            },
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration `var x = e;` (int) or `fvar x = e;` (float).
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initializer.
        init: Expr,
    },
    /// Scalar assignment `x = e;`.
    Assign {
        /// Target variable.
        name: String,
        /// Value.
        value: Expr,
    },
    /// Array element assignment `a[i] = e;`.
    AssignElem {
        /// Array name.
        arr: String,
        /// Index (int).
        index: Expr,
        /// Value.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Condition (int; non-zero is true).
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// While loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// Counted loop `for (i = init; cond; i = i + step) body`, the canonical
    /// form the unroller understands. `i` is implicitly a fresh local `int`.
    For {
        /// Induction variable name.
        var: String,
        /// Initial value.
        init: Expr,
        /// Continuation condition (usually `i < bound`).
        cond: Expr,
        /// Constant step added each iteration.
        step: i64,
        /// Body.
        body: Block,
    },
    /// Return.
    Return(Option<Expr>),
    /// Expression evaluated for effect (a call).
    ExprStmt(Expr),
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// Kind of a global declaration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalKind {
    /// A scalar with an optional constant initializer.
    Scalar {
        /// Initial value (as a bit pattern appropriate to the type).
        init: Option<f64>,
    },
    /// A fixed-size array.
    Array {
        /// Element count.
        len: usize,
    },
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Element/scalar type.
    pub ty: Ty,
    /// Scalar or array.
    pub kind: GlobalKind,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Ty)>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Body.
    pub body: Block,
}

/// A whole module (one source file).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Global declarations, in order.
    pub globals: Vec<GlobalDecl>,
    /// Function declarations, in order.
    pub funcs: Vec<FnDecl>,
}

impl Module {
    /// Finds a function by name.
    #[must_use]
    pub fn func(&self, name: &str) -> Option<&FnDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Maximum statement/expression nesting depth across all functions.
    ///
    /// Computed with an explicit worklist rather than recursion, so the
    /// measurement itself is safe on arbitrarily deep trees. Pipeline
    /// stages that *do* recurse over the tree (the checker, IR lowering,
    /// the printers) gate on this before descending.
    #[must_use]
    pub fn depth(&self) -> u32 {
        enum Node<'a> {
            S(&'a Stmt),
            E(&'a Expr),
        }
        let mut max = 0_u32;
        let mut work: Vec<(Node<'_>, u32)> = self
            .funcs
            .iter()
            .flat_map(|f| f.body.stmts.iter())
            .map(|s| (Node::S(s), 1))
            .collect();
        while let Some((node, depth)) = work.pop() {
            max = max.max(depth);
            let d = depth + 1;
            match node {
                Node::S(stmt) => match stmt {
                    Stmt::Let { init: e, .. }
                    | Stmt::Assign { value: e, .. }
                    | Stmt::Return(Some(e))
                    | Stmt::ExprStmt(e) => work.push((Node::E(e), d)),
                    Stmt::AssignElem { index, value, .. } => {
                        work.push((Node::E(index), d));
                        work.push((Node::E(value), d));
                    }
                    Stmt::If {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        work.push((Node::E(cond), d));
                        work.extend(then_blk.stmts.iter().map(|s| (Node::S(s), d)));
                        if let Some(else_blk) = else_blk {
                            work.extend(else_blk.stmts.iter().map(|s| (Node::S(s), d)));
                        }
                    }
                    Stmt::While { cond, body } => {
                        work.push((Node::E(cond), d));
                        work.extend(body.stmts.iter().map(|s| (Node::S(s), d)));
                    }
                    Stmt::For {
                        init, cond, body, ..
                    } => {
                        work.push((Node::E(init), d));
                        work.push((Node::E(cond), d));
                        work.extend(body.stmts.iter().map(|s| (Node::S(s), d)));
                    }
                    Stmt::Return(None) => {}
                },
                Node::E(expr) => match expr {
                    Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) => {}
                    Expr::Elem { index, .. } => work.push((Node::E(index), d)),
                    Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => {
                        work.push((Node::E(expr), d));
                    }
                    Expr::Binary { lhs, rhs, .. } => {
                        work.push((Node::E(lhs), d));
                        work.push((Node::E(rhs), d));
                    }
                    Expr::Call { args, .. } => {
                        work.extend(args.iter().map(|a| (Node::E(a), d)));
                    }
                },
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_var() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::Var("i".into()),
            Expr::Elem {
                arr: "a".into(),
                index: Box::new(Expr::Var("j".into())),
            },
        );
        assert!(e.references_var("i"));
        assert!(e.references_var("j"));
        assert!(!e.references_var("a")); // array names are not variables
        assert!(!e.references_var("k"));
    }

    #[test]
    fn substitute_var() {
        let e = Expr::binary(BinOp::Mul, Expr::Var("i".into()), Expr::IntLit(2));
        let replacement = Expr::binary(BinOp::Add, Expr::Var("i".into()), Expr::IntLit(1));
        let out = e.substitute_var("i", &replacement);
        assert!(matches!(
            out,
            Expr::Binary { op: BinOp::Mul, ref lhs, .. }
                if matches!(**lhs, Expr::Binary { op: BinOp::Add, .. })
        ));
    }

    #[test]
    fn contains_call() {
        let call = Expr::Call {
            name: "f".into(),
            args: vec![],
        };
        let wrapped = Expr::binary(BinOp::Add, Expr::IntLit(1), call);
        assert!(wrapped.contains_call());
        assert!(!Expr::IntLit(1).contains_call());
    }

    #[test]
    fn binop_predicates() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Shl.is_int_only());
        assert!(!BinOp::Div.is_int_only());
    }
}
