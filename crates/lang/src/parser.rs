//! Recursive-descent parser for Tital.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::{lex, Token, TokenKind};

/// Parses a Tital module from source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
///
/// ```
/// let module = supersym_lang::parse("fn main() { return; }")?;
/// assert_eq!(module.funcs[0].name, "main");
/// # Ok::<(), supersym_lang::LangError>(())
/// ```
pub fn parse(source: &str) -> Result<Module, LangError> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    parser.module()
}

/// Maximum combined statement/expression nesting depth the parser accepts.
///
/// Each level of nesting costs about a dozen stack frames through the
/// precedence chain, so 200 levels stay far below any realistic stack
/// while comfortably above any program a human (or the unroller) writes.
/// Shared with the semantic checker so a [`Module`] built directly from
/// AST nodes is gated the same way as parsed source.
pub(crate) const MAX_NESTING_DEPTH: u32 = 200;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current statement + expression nesting depth (see
    /// [`MAX_NESTING_DEPTH`]).
    depth: u32,
}

impl Parser {
    /// Bumps the nesting depth, failing with [`LangError::TooDeep`] at the
    /// limit. Every recursive production calls this on entry and
    /// [`Self::leave`] on exit.
    fn enter(&mut self) -> Result<(), LangError> {
        if self.depth >= MAX_NESTING_DEPTH {
            return Err(LangError::TooDeep {
                limit: MAX_NESTING_DEPTH,
                line: self.line(),
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(s) if *s == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{p}`")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.peek() {
            TokenKind::Ident(s) if !is_keyword(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn unexpected(&self, expected: &str) -> LangError {
        LangError::UnexpectedToken {
            found: self.peek().to_string(),
            expected: expected.to_string(),
            line: self.line(),
        }
    }

    fn module(&mut self) -> Result<Module, LangError> {
        let mut module = Module::default();
        loop {
            if matches!(self.peek(), TokenKind::Eof) {
                break;
            }
            if self.eat_keyword("global") {
                module.globals.push(self.global()?);
            } else if self.eat_keyword("fn") {
                module.funcs.push(self.function()?);
            } else {
                return Err(self.unexpected("`global` or `fn`"));
            }
        }
        Ok(module)
    }

    fn global(&mut self) -> Result<GlobalDecl, LangError> {
        let (ty, is_array) = if self.eat_keyword("var") {
            (Ty::Int, false)
        } else if self.eat_keyword("fvar") {
            (Ty::Float, false)
        } else if self.eat_keyword("arr") {
            (Ty::Int, true)
        } else if self.eat_keyword("farr") {
            (Ty::Float, true)
        } else {
            return Err(self.unexpected("`var`, `fvar`, `arr` or `farr`"));
        };
        let name = self.expect_ident()?;
        let kind = if is_array {
            self.expect_punct("[")?;
            let len = match self.bump() {
                TokenKind::Int(v) if v > 0 => v as usize,
                other => {
                    return Err(LangError::UnexpectedToken {
                        found: other.to_string(),
                        expected: "a positive array length".into(),
                        line: self.line(),
                    })
                }
            };
            self.expect_punct("]")?;
            GlobalKind::Array { len }
        } else if self.eat_punct("=") {
            let negative = self.eat_punct("-");
            let value = match self.bump() {
                TokenKind::Int(v) => v as f64,
                TokenKind::Float(v) => v,
                other => {
                    return Err(LangError::UnexpectedToken {
                        found: other.to_string(),
                        expected: "a literal initializer".into(),
                        line: self.line(),
                    })
                }
            };
            GlobalKind::Scalar {
                init: Some(if negative { -value } else { value }),
            }
        } else {
            GlobalKind::Scalar { init: None }
        };
        self.expect_punct(";")?;
        Ok(GlobalDecl { name, ty, kind })
    }

    fn ty(&mut self) -> Result<Ty, LangError> {
        if self.eat_keyword("int") {
            Ok(Ty::Int)
        } else if self.eat_keyword("float") {
            Ok(Ty::Float)
        } else {
            Err(self.unexpected("`int` or `float`"))
        }
    }

    fn function(&mut self) -> Result<FnDecl, LangError> {
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let ty = self.ty()?;
                let pname = self.expect_ident()?;
                params.push((pname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let ret = if self.eat_punct("->") {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
        })
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        self.enter()?;
        let stmt = self.stmt_inner();
        self.leave();
        stmt
    }

    fn stmt_inner(&mut self) -> Result<Stmt, LangError> {
        if self.eat_keyword("var") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let init = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let {
                name,
                ty: Ty::Int,
                init,
            });
        }
        if self.eat_keyword("fvar") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let init = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let {
                name,
                ty: Ty::Float,
                init,
            });
        }
        if self.eat_keyword("if") {
            return self.if_stmt();
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_keyword("for") {
            return self.for_stmt();
        }
        if self.eat_keyword("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(value)));
        }
        // Assignment, element assignment, or expression statement.
        if let TokenKind::Ident(name) = self.peek() {
            if !is_keyword(name) {
                let name = name.clone();
                let save = self.pos;
                self.bump();
                if self.eat_punct("=") {
                    let value = self.expr()?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::Assign { name, value });
                }
                if self.eat_punct("[") {
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    if self.eat_punct("=") {
                        let value = self.expr()?;
                        self.expect_punct(";")?;
                        return Ok(Stmt::AssignElem {
                            arr: name,
                            index,
                            value,
                        });
                    }
                }
                self.pos = save;
            }
        }
        let expr = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::ExprStmt(expr))
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        // `else if` chains recurse here without passing through `stmt`, so
        // the chain needs its own depth accounting.
        self.enter()?;
        let stmt = self.if_stmt_inner();
        self.leave();
        stmt
    }

    fn if_stmt_inner(&mut self) -> Result<Stmt, LangError> {
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_blk = self.block()?;
        let else_blk = if self.eat_keyword("else") {
            if self.eat_keyword("if") {
                // `else if` chains become a nested block.
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect_punct("(")?;
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let init = self.expr()?;
        self.expect_punct(";")?;
        let cond = self.expr()?;
        self.expect_punct(";")?;
        let var2 = self.expect_ident()?;
        if var2 != var {
            return Err(LangError::UnexpectedToken {
                found: format!("`{var2}`"),
                expected: format!("the induction variable `{var}`"),
                line: self.line(),
            });
        }
        self.expect_punct("=")?;
        let var3 = self.expect_ident()?;
        if var3 != var {
            return Err(LangError::UnexpectedToken {
                found: format!("`{var3}`"),
                expected: format!("`{var} + <constant>` or `{var} - <constant>`"),
                line: self.line(),
            });
        }
        let negative = if self.eat_punct("+") {
            false
        } else if self.eat_punct("-") {
            true
        } else {
            return Err(self.unexpected("`+` or `-`"));
        };
        let step = match self.bump() {
            TokenKind::Int(v) => {
                if negative {
                    -v
                } else {
                    v
                }
            }
            other => {
                return Err(LangError::UnexpectedToken {
                    found: other.to_string(),
                    expected: "a constant step".into(),
                    line: self.line(),
                })
            }
        };
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.enter()?;
        let expr = self.or_expr();
        self.leave();
        expr
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            // Non-short-circuit: (lhs != 0) | (rhs != 0).
            lhs = Expr::binary(
                BinOp::Or,
                Expr::binary(BinOp::Ne, lhs, Expr::IntLit(0)),
                Expr::binary(BinOp::Ne, rhs, Expr::IntLit(0)),
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bitor_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.bitor_expr()?;
            lhs = Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Ne, lhs, Expr::IntLit(0)),
                Expr::binary(BinOp::Ne, rhs, Expr::IntLit(0)),
            );
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bitand_expr()?;
        loop {
            if self.eat_punct("|") {
                lhs = Expr::binary(BinOp::Or, lhs, self.bitand_expr()?);
            } else if self.eat_punct("^") {
                lhs = Expr::binary(BinOp::Xor, lhs, self.bitand_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bitand_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.equality_expr()?;
        while self.eat_punct("&") {
            lhs = Expr::binary(BinOp::And, lhs, self.equality_expr()?);
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.relational_expr()?;
        loop {
            if self.eat_punct("==") {
                lhs = Expr::binary(BinOp::Eq, lhs, self.relational_expr()?);
            } else if self.eat_punct("!=") {
                lhs = Expr::binary(BinOp::Ne, lhs, self.relational_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn relational_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.shift_expr()?;
        loop {
            if self.eat_punct("<=") {
                lhs = Expr::binary(BinOp::Le, lhs, self.shift_expr()?);
            } else if self.eat_punct(">=") {
                lhs = Expr::binary(BinOp::Ge, lhs, self.shift_expr()?);
            } else if self.eat_punct("<") {
                lhs = Expr::binary(BinOp::Lt, lhs, self.shift_expr()?);
            } else if self.eat_punct(">") {
                lhs = Expr::binary(BinOp::Gt, lhs, self.shift_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn shift_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.additive_expr()?;
        loop {
            if self.eat_punct("<<") {
                lhs = Expr::binary(BinOp::Shl, lhs, self.additive_expr()?);
            } else if self.eat_punct(">>") {
                lhs = Expr::binary(BinOp::Shr, lhs, self.additive_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn additive_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            if self.eat_punct("+") {
                lhs = Expr::binary(BinOp::Add, lhs, self.multiplicative_expr()?);
            } else if self.eat_punct("-") {
                lhs = Expr::binary(BinOp::Sub, lhs, self.multiplicative_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_punct("*") {
                lhs = Expr::binary(BinOp::Mul, lhs, self.unary_expr()?);
            } else if self.eat_punct("/") {
                lhs = Expr::binary(BinOp::Div, lhs, self.unary_expr()?);
            } else if self.eat_punct("%") {
                lhs = Expr::binary(BinOp::Rem, lhs, self.unary_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        // `----x` and `!!!!x` recurse without re-entering `expr`, so unary
        // chains are depth-counted separately.
        self.enter()?;
        let expr = self.unary_expr_inner();
        self.leave();
        expr
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, LangError> {
        if self.eat_punct("-") {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.eat_punct("!") {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let inner = self.expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                if name == "itof" || name == "ftoi" {
                    self.bump();
                    self.expect_punct("(")?;
                    let inner = self.expr()?;
                    self.expect_punct(")")?;
                    let to = if name == "itof" { Ty::Float } else { Ty::Int };
                    return Ok(Expr::Cast {
                        to,
                        expr: Box::new(inner),
                    });
                }
                if is_keyword(&name) {
                    return Err(self.unexpected("an expression"));
                }
                self.bump();
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr::Call { name, args });
                }
                if self.eat_punct("[") {
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Elem {
                        arr: name,
                        index: Box::new(index),
                    });
                }
                Ok(Expr::Var(name))
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "global"
            | "var"
            | "fvar"
            | "arr"
            | "farr"
            | "fn"
            | "if"
            | "else"
            | "while"
            | "for"
            | "return"
            | "int"
            | "float"
            | "itof"
            | "ftoi"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_function_with_params() {
        let m = parse("fn add(int a, int b) -> int { return a + b; }").unwrap();
        assert_eq!(m.funcs.len(), 1);
        let f = &m.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(Ty::Int));
    }

    #[test]
    fn parse_globals() {
        let m =
            parse("global var x = 3; global fvar y = -2.5; global arr a[10]; global farr b[4];")
                .unwrap();
        assert_eq!(m.globals.len(), 4);
        assert_eq!(m.globals[0].kind, GlobalKind::Scalar { init: Some(3.0) });
        assert_eq!(m.globals[1].kind, GlobalKind::Scalar { init: Some(-2.5) });
        assert_eq!(m.globals[2].kind, GlobalKind::Array { len: 10 });
        assert_eq!(m.globals[2].ty, Ty::Int);
        assert_eq!(m.globals[3].ty, Ty::Float);
    }

    #[test]
    fn parse_for_loop_canonical() {
        let m = parse("fn f() { for (i = 0; i < 10; i = i + 2) { } }").unwrap();
        match &m.funcs[0].body.stmts[0] {
            Stmt::For { var, step, .. } => {
                assert_eq!(var, "i");
                assert_eq!(*step, 2);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parse_for_negative_step() {
        let m = parse("fn f() { for (i = 10; i > 0; i = i - 1) { } }").unwrap();
        match &m.funcs[0].body.stmts[0] {
            Stmt::For { step, .. } => assert_eq!(*step, -1),
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn for_must_use_same_variable() {
        assert!(parse("fn f() { for (i = 0; i < 10; j = j + 1) { } }").is_err());
    }

    #[test]
    fn precedence() {
        let m = parse("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        match &m.funcs[0].body.stmts[0] {
            Stmt::Return(Some(Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            })) => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn element_assignment() {
        let m = parse("global arr a[4]; fn f() { a[1] = a[0] + 1; }").unwrap();
        assert!(matches!(
            &m.funcs[0].body.stmts[0],
            Stmt::AssignElem { arr, .. } if arr == "a"
        ));
    }

    #[test]
    fn else_if_chain() {
        let m = parse("fn f(int x) { if (x > 0) { } else if (x < 0) { } else { } }").unwrap();
        match &m.funcs[0].body.stmts[0] {
            Stmt::If {
                else_blk: Some(b), ..
            } => {
                assert!(matches!(b.stmts[0], Stmt::If { .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn casts() {
        let m = parse("fn f(int x) -> float { return itof(x) * 2.0; }").unwrap();
        match &m.funcs[0].body.stmts[0] {
            Stmt::Return(Some(Expr::Binary { lhs, .. })) => {
                assert!(matches!(**lhs, Expr::Cast { to: Ty::Float, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn call_statement() {
        let m = parse("fn g() { } fn f() { g(); }").unwrap();
        assert!(matches!(
            &m.funcs[1].body.stmts[0],
            Stmt::ExprStmt(Expr::Call { .. })
        ));
    }

    #[test]
    fn logical_ops_lowered() {
        let m = parse("fn f(int a, int b) -> int { return a && b; }").unwrap();
        match &m.funcs[0].body.stmts[0] {
            Stmt::Return(Some(Expr::Binary {
                op: BinOp::And,
                lhs,
                ..
            })) => {
                assert!(matches!(**lhs, Expr::Binary { op: BinOp::Ne, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn deep_parens_rejected_not_crashed() {
        let depth = MAX_NESTING_DEPTH as usize + 10;
        let source = format!(
            "fn f() -> int {{ return {}1{}; }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        assert!(matches!(parse(&source), Err(LangError::TooDeep { .. })));
        // Far past the limit must still be a typed error, not a stack
        // overflow.
        let source = format!(
            "fn f() -> int {{ return {}1{}; }}",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        assert!(matches!(parse(&source), Err(LangError::TooDeep { .. })));
    }

    #[test]
    fn deep_unary_chain_rejected() {
        let source = format!("fn f() -> int {{ return {}1; }}", "-".repeat(100_000));
        assert!(matches!(parse(&source), Err(LangError::TooDeep { .. })));
    }

    #[test]
    fn deep_statement_nesting_rejected() {
        let depth = 100_000;
        let source = format!(
            "fn f(int x) {{ {}x = 1;{} }}",
            "if (x) {".repeat(depth),
            "}".repeat(depth)
        );
        assert!(matches!(parse(&source), Err(LangError::TooDeep { .. })));
    }

    #[test]
    fn moderate_nesting_accepted() {
        let source = format!(
            "fn f() -> int {{ return {}1{}; }}",
            "(".repeat(50),
            ")".repeat(50)
        );
        assert!(parse(&source).is_ok());
    }

    #[test]
    fn missing_semicolon_errors() {
        let err = parse("fn f() { var x = 1 }").unwrap_err();
        assert!(matches!(err, LangError::UnexpectedToken { .. }));
    }

    #[test]
    fn keyword_cannot_be_expression() {
        assert!(parse("fn f() { var x = if; }").is_err());
    }
}
