//! Pretty-printing Tital ASTs back to (re-parseable) source text.
//!
//! Useful for inspecting what the loop unroller produced
//! (`titalc`-style debugging) and for the parse/print round-trip property
//! tests: `parse(print(ast)) == ast` up to operator-precedence
//! re-parenthesization — the printer parenthesizes every binary expression,
//! making the round trip exact.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a module as Tital source that parses back to an equivalent AST.
#[must_use]
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for global in &module.globals {
        match global.kind {
            GlobalKind::Scalar { init } => {
                let keyword = match global.ty {
                    Ty::Int => "var",
                    Ty::Float => "fvar",
                };
                match init {
                    Some(value) => {
                        let _ = writeln!(
                            out,
                            "global {keyword} {} = {};",
                            global.name,
                            print_scalar_init(global.ty, value)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "global {keyword} {};", global.name);
                    }
                }
            }
            GlobalKind::Array { len } => {
                let keyword = match global.ty {
                    Ty::Int => "arr",
                    Ty::Float => "farr",
                };
                let _ = writeln!(out, "global {keyword} {}[{len}];", global.name);
            }
        }
    }
    for func in &module.funcs {
        let params = func
            .params
            .iter()
            .map(|(name, ty)| format!("{ty} {name}"))
            .collect::<Vec<_>>()
            .join(", ");
        match func.ret {
            Some(ret) => {
                let _ = writeln!(out, "fn {}({params}) -> {ret} {{", func.name);
            }
            None => {
                let _ = writeln!(out, "fn {}({params}) {{", func.name);
            }
        }
        print_block(&mut out, &func.body, 1);
        out.push_str("}\n");
    }
    out
}

fn print_scalar_init(ty: Ty, value: f64) -> String {
    match ty {
        Ty::Int => format!("{}", value as i64),
        Ty::Float => print_float(value),
    }
}

fn print_float(value: f64) -> String {
    // Negative literals print as unary negation inside expressions; global
    // initializers accept a leading minus directly.
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value:?}")
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, block: &Block, depth: usize) {
    for stmt in &block.stmts {
        print_stmt(out, stmt, depth);
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Let { name, ty, init } => {
            let keyword = match ty {
                Ty::Int => "var",
                Ty::Float => "fvar",
            };
            let _ = writeln!(out, "{keyword} {name} = {};", print_expr(init));
        }
        Stmt::Assign { name, value } => {
            let _ = writeln!(out, "{name} = {};", print_expr(value));
        }
        Stmt::AssignElem { arr, index, value } => {
            let _ = writeln!(out, "{arr}[{}] = {};", print_expr(index), print_expr(value));
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block(out, then_blk, depth + 1);
            indent(out, depth);
            match else_blk {
                Some(else_blk) => {
                    out.push_str("} else {\n");
                    print_block(out, else_blk, depth + 1);
                    indent(out, depth);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            // `unsigned_abs`, not negation: a step of `i64::MIN` must
            // print, not overflow.
            let update = if *step >= 0 {
                format!("{var} = {var} + {step}")
            } else {
                format!("{var} = {var} - {}", step.unsigned_abs())
            };
            let _ = writeln!(
                out,
                "for ({var} = {}; {}; {update}) {{",
                print_expr(init),
                print_expr(cond)
            );
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return(Some(value)) => {
            let _ = writeln!(out, "return {};", print_expr(value));
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::ExprStmt(expr) => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
    }
}

fn bin_op_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

/// Renders an expression (fully parenthesized).
#[must_use]
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::IntLit(v) => {
            if *v < 0 {
                format!("(-{})", v.unsigned_abs())
            } else {
                v.to_string()
            }
        }
        Expr::FloatLit(v) => {
            if *v < 0.0 {
                format!("(-{})", print_float(-v))
            } else {
                print_float(*v)
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::Elem { arr, index } => format!("{arr}[{}]", print_expr(index)),
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("(-{})", print_expr(expr)),
            UnOp::Not => format!("(!{})", print_expr(expr)),
        },
        Expr::Binary { op, lhs, rhs } => {
            format!(
                "({} {} {})",
                print_expr(lhs),
                bin_op_text(*op),
                print_expr(rhs)
            )
        }
        Expr::Call { name, args } => {
            let args = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{name}({args})")
        }
        Expr::Cast { to, expr } => match to {
            Ty::Float => format!("itof({})", print_expr(expr)),
            Ty::Int => format!("ftoi({})", print_expr(expr)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_preserves_structure() {
        let source = "
            global arr a[8];
            global fvar total = -2.5;
            fn sum(int n) -> int {
                var s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + a[i] * 2; }
                if (s > 10) { s = s - 1; } else { s = 0 - s; }
                while (s % 2 == 0) { s = s / 2; }
                return s;
            }
            fn main() { total = itof(sum(8)); }";
        let first = parse(source).unwrap();
        let printed = print_module(&first);
        let second = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let reprinted = print_module(&second);
        assert_eq!(printed, reprinted, "printing is a fixed point");
    }

    #[test]
    fn negative_step_for_loop() {
        let source = "fn f() { for (i = 9; i > 0; i = i - 3) { } }";
        let module = parse(source).unwrap();
        let printed = print_module(&module);
        assert!(printed.contains("i = i - 3"));
        parse(&printed).unwrap();
    }

    #[test]
    fn extreme_for_step_prints_without_overflow() {
        let module = Module {
            globals: vec![],
            funcs: vec![FnDecl {
                name: "f".to_string(),
                params: vec![],
                ret: None,
                body: Block {
                    stmts: vec![Stmt::For {
                        var: "i".to_string(),
                        init: Expr::IntLit(0),
                        cond: Expr::IntLit(1),
                        step: i64::MIN,
                        body: Block { stmts: vec![] },
                    }],
                },
            }],
        };
        let printed = print_module(&module);
        assert!(printed.contains(&format!("i - {}", i64::MIN.unsigned_abs())));
    }

    #[test]
    fn negative_literals_parenthesized() {
        let expr = Expr::binary(BinOp::Mul, Expr::IntLit(-3), Expr::FloatLit(0.0));
        let text = print_expr(&expr);
        assert!(text.contains("(-3)"));
    }
}
