//! Chrome `trace_event` timeline emission (`supersym.timeline/v1`).
//!
//! A [`TimelineSink`] streams one Perfetto/`chrome://tracing`-loadable JSON
//! document to any writer, merging three clocks into one file:
//!
//! * **compile** (pid 1): one duration span per compile phase on a single
//!   lane, `ts` in cumulative wall-clock microseconds;
//! * **simulate** (pid 2): one complete-event per dynamic instruction on
//!   the lane of its functional unit, `ts`/`dur` in *machine cycles*
//!   (span `[issue, drain)` — a superscalar schedule shows as overlapping
//!   bars), plus `ipc` and `inflight` counter tracks sampled at every
//!   cycle boundary;
//! * **sweep** (pid 3): one lane per worker thread, a complete-event per
//!   executed cell (wall-clock microseconds since the sweep started) and
//!   instant markers for cache hits and quarantines.
//!
//! The sink follows the [`crate::sink::JsonLinesSink`] discipline: write
//! errors are sticky (the sink goes quiet after the first) and surface at
//! [`TimelineSink::finish`]. Lane timestamps are emitted monotonically
//! nondecreasing per `(pid, tid)` — the invariant the validator in
//! [`crate::parse`] enforces.

use crate::json::{JsonObject, JsonValue};
use crate::sink::{BlockReplayEvent, IssueEvent, PhaseRecord, TraceSink};
use std::io::{self, Write};

/// Schema identifier of the timeline document.
pub const TIMELINE_SCHEMA: &str = "supersym.timeline/v1";

/// Process lane of compile-phase spans.
pub const PID_COMPILE: u64 = 1;
/// Process lane of per-instruction pipeline spans and counter tracks.
pub const PID_SIMULATE: u64 = 2;
/// Process lane of sweep workers.
pub const PID_SWEEP: u64 = 3;

/// Streams a `supersym.timeline/v1` Chrome `trace_event` document.
///
/// Constructed bare (compile and sweep lanes work immediately) or with
/// [`TimelineSink::with_pipeline_lanes`] to name the simulate lanes after
/// a machine's functional units. Implements [`TraceSink`], so it can be
/// handed directly to `compile_with_trace` and `simulate_with_sink`.
#[derive(Debug)]
pub struct TimelineSink<W: Write> {
    out: W,
    error: Option<io::Error>,
    any_event: bool,
    /// Cumulative compile-lane clock, microseconds.
    compile_us: u64,
    compile_meta: bool,
    /// Simulate-lane names; tid = lane index + 1.
    lanes: Vec<String>,
    /// Class mnemonic → lane index; unmapped classes share an extra lane.
    class_lane: Vec<(String, usize)>,
    pipeline_meta: bool,
    cur_cycle: u64,
    issued_in_cycle: u64,
    /// Drain cycles of issued-but-not-drained instructions.
    inflight: Vec<u64>,
    sweep_meta: bool,
    /// Sweep workers whose thread lane has been named.
    named_workers: Vec<bool>,
}

impl<W: Write> TimelineSink<W> {
    /// Wraps a writer (hand it a `BufWriter` for file output).
    pub fn new(out: W) -> Self {
        TimelineSink {
            out,
            error: None,
            any_event: false,
            compile_us: 0,
            compile_meta: false,
            lanes: Vec::new(),
            class_lane: Vec::new(),
            pipeline_meta: false,
            cur_cycle: 0,
            issued_in_cycle: 0,
            inflight: Vec::new(),
            sweep_meta: false,
            named_workers: Vec::new(),
        }
    }

    /// Names the simulate lanes and maps instruction-class mnemonics onto
    /// them (typically `FunctionalUnit::name()` and `unit_of(class)` from
    /// a machine description). Classes missing from `class_lane` share one
    /// extra `other` lane.
    #[must_use]
    pub fn with_pipeline_lanes(
        mut self,
        lanes: Vec<String>,
        class_lane: Vec<(String, usize)>,
    ) -> Self {
        self.lanes = lanes;
        self.class_lane = class_lane;
        self
    }

    /// Flushes the document close and returns the writer, or the first
    /// write error the sink swallowed while streaming.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error, including one from the closing write.
    pub fn finish(mut self) -> io::Result<W> {
        // Final counter samples for the last simulated cycle.
        if self.issued_in_cycle > 0 {
            let (cycle, issued) = (self.cur_cycle, self.issued_in_cycle);
            self.counter(cycle, "ipc", issued);
        }
        if let Some(error) = self.error {
            return Err(error);
        }
        if self.any_event {
            self.out.write_all(b"\n]}\n")?;
        } else {
            // No event ever opened the document; write a complete empty one.
            writeln!(
                self.out,
                "{{\"schema\":\"{TIMELINE_SCHEMA}\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}}"
            )?;
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn emit(&mut self, value: &JsonValue) {
        if self.error.is_some() {
            return;
        }
        let result = if self.any_event {
            self.out.write_all(b",\n")
        } else {
            writeln!(
                self.out,
                "{{\"schema\":\"{TIMELINE_SCHEMA}\",\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            )
        };
        if let Err(error) = result.and_then(|()| write!(self.out, "{value}")) {
            self.error = Some(error);
            return;
        }
        self.any_event = true;
    }

    /// Emits a `process_name`/`thread_name` metadata event.
    fn meta(&mut self, pid: u64, tid: u64, kind: &str, name: &str) {
        let value = JsonObject::new()
            .field("ph", JsonValue::str("M"))
            .field("pid", JsonValue::UInt(pid))
            .field("tid", JsonValue::UInt(tid))
            .field("name", JsonValue::str(kind))
            .field(
                "args",
                JsonObject::new()
                    .field("name", JsonValue::str(name))
                    .build(),
            )
            .build();
        self.emit(&value);
    }

    fn counter(&mut self, ts: u64, name: &str, value: u64) {
        let event = JsonObject::new()
            .field("ph", JsonValue::str("C"))
            .field("pid", JsonValue::UInt(PID_SIMULATE))
            .field("tid", JsonValue::UInt(0))
            .field("ts", JsonValue::UInt(ts))
            .field("name", JsonValue::str(name))
            .field(
                "args",
                JsonObject::new()
                    .field("value", JsonValue::UInt(value))
                    .build(),
            )
            .build();
        self.emit(&event);
    }

    fn ensure_pipeline_meta(&mut self) {
        if self.pipeline_meta {
            return;
        }
        self.pipeline_meta = true;
        self.meta(PID_SIMULATE, 0, "process_name", "simulate");
        for index in 0..self.lanes.len() {
            let name = self.lanes[index].clone();
            self.meta(PID_SIMULATE, index as u64 + 1, "thread_name", &name);
        }
        self.meta(
            PID_SIMULATE,
            self.lanes.len() as u64 + 1,
            "thread_name",
            "other",
        );
        self.meta(
            PID_SIMULATE,
            self.lanes.len() as u64 + 2,
            "thread_name",
            "block cache",
        );
    }

    fn lane_of(&self, class: &str) -> u64 {
        self.class_lane
            .iter()
            .find(|(mnemonic, _)| mnemonic == class)
            .map_or(self.lanes.len() as u64 + 1, |&(_, lane)| lane as u64 + 1)
    }

    /// Advances the simulate clock to `cycle`, emitting the `ipc` sample
    /// for the finished cycle and the `inflight` sample at the new one.
    fn advance_cycle(&mut self, cycle: u64) {
        let (finished, issued) = (self.cur_cycle, self.issued_in_cycle);
        self.counter(finished, "ipc", issued);
        self.inflight.retain(|&drain| drain > cycle);
        let live = self.inflight.len() as u64;
        self.counter(cycle, "inflight", live);
        self.cur_cycle = cycle;
        self.issued_in_cycle = 0;
    }

    fn ensure_sweep_meta(&mut self) {
        if self.sweep_meta {
            return;
        }
        self.sweep_meta = true;
        self.meta(PID_SWEEP, 0, "process_name", "sweep");
    }

    fn ensure_worker_named(&mut self, worker: usize) {
        if worker >= self.named_workers.len() {
            self.named_workers.resize(worker + 1, false);
        }
        if !self.named_workers[worker] {
            self.named_workers[worker] = true;
            let name = format!("worker {worker}");
            self.meta(PID_SWEEP, worker as u64 + 1, "thread_name", &name);
        }
    }

    /// Records one finished sweep item on its worker's lane: a cache hit
    /// becomes an instant marker, an executed cell a complete-event over
    /// `[start_us, end_us]`, and a non-`"ok"` status additionally drops a
    /// quarantine marker at the cell's end.
    pub fn sweep_item(&mut self, item: &SweepItem<'_>) {
        self.ensure_sweep_meta();
        self.ensure_worker_named(item.worker);
        let tid = item.worker as u64 + 1;
        let item_args = JsonObject::new()
            .field("cell", JsonValue::str(item.cell))
            .field("workload", JsonValue::str(item.workload))
            .field("status", JsonValue::str(item.status))
            .build();
        if item.cached {
            let marker = JsonObject::new()
                .field("ph", JsonValue::str("i"))
                .field("pid", JsonValue::UInt(PID_SWEEP))
                .field("tid", JsonValue::UInt(tid))
                .field("ts", JsonValue::UInt(item.start_us))
                .field("s", JsonValue::str("t"))
                .field("name", JsonValue::str("cache hit"))
                .field("args", item_args)
                .build();
            self.emit(&marker);
            return;
        }
        let span = JsonObject::new()
            .field("ph", JsonValue::str("X"))
            .field("pid", JsonValue::UInt(PID_SWEEP))
            .field("tid", JsonValue::UInt(tid))
            .field("ts", JsonValue::UInt(item.start_us))
            .field(
                "dur",
                JsonValue::UInt(item.end_us.saturating_sub(item.start_us)),
            )
            .field("cat", JsonValue::str("sweep"))
            .field("name", JsonValue::str(item.workload))
            .field("args", item_args)
            .build();
        self.emit(&span);
        if item.status != "ok" {
            let marker = JsonObject::new()
                .field("ph", JsonValue::str("i"))
                .field("pid", JsonValue::UInt(PID_SWEEP))
                .field("tid", JsonValue::UInt(tid))
                .field("ts", JsonValue::UInt(item.end_us))
                .field("s", JsonValue::str("t"))
                .field("name", JsonValue::str("quarantine"))
                .field(
                    "args",
                    JsonObject::new()
                        .field("cell", JsonValue::str(item.cell))
                        .field("status", JsonValue::str(item.status))
                        .build(),
                )
                .build();
            self.emit(&marker);
        }
    }
}

/// One finished sweep item, as rendered on a worker lane by
/// [`TimelineSink::sweep_item`].
#[derive(Debug, Clone, Copy)]
pub struct SweepItem<'a> {
    /// Zero-based worker index (lane `tid` is `worker + 1`).
    pub worker: usize,
    /// Item start, microseconds since the sweep began.
    pub start_us: u64,
    /// Item end; equal to `start_us` for cache hits.
    pub end_us: u64,
    /// Whether the result came from the cross-sweep cache.
    pub cached: bool,
    /// Canonical cell name.
    pub cell: &'a str,
    /// Workload name.
    pub workload: &'a str,
    /// Status label: `"ok"`, `"reject"`, `"panic"` or `"timeout"`.
    pub status: &'a str,
}

impl<W: Write> TraceSink for TimelineSink<W> {
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        if !self.compile_meta {
            self.compile_meta = true;
            self.meta(PID_COMPILE, 0, "process_name", "compile");
            self.meta(PID_COMPILE, 1, "thread_name", "phases");
        }
        let dur_us = u64::try_from(record.wall_ns / 1000).unwrap_or(u64::MAX);
        let mut args = JsonObject::new();
        for &(key, value) in record.counters {
            args = args.field(key, JsonValue::UInt(value));
        }
        let event = JsonObject::new()
            .field("ph", JsonValue::str("X"))
            .field("pid", JsonValue::UInt(PID_COMPILE))
            .field("tid", JsonValue::UInt(1))
            .field("ts", JsonValue::UInt(self.compile_us))
            .field("dur", JsonValue::UInt(dur_us))
            .field("cat", JsonValue::str("compile"))
            .field("name", JsonValue::str(record.name))
            .field("args", args.build())
            .build();
        self.emit(&event);
        self.compile_us = self.compile_us.saturating_add(dur_us);
    }

    fn issue(&mut self, event: &IssueEvent) {
        self.ensure_pipeline_meta();
        if event.issue != self.cur_cycle {
            self.advance_cycle(event.issue);
        }
        self.issued_in_cycle += 1;
        self.inflight.push(event.drain);
        let tid = self.lane_of(event.class);
        // The span is `[issue, drain)`: `machine_cycles` is the maximum
        // drain, so no bar extends past the end of the run and per-lane
        // occupancy stays within the cycle account's total.
        let dur = event.drain.saturating_sub(event.issue).max(1);
        let mut args = JsonObject::new()
            .field("pc", JsonValue::UInt(event.pc))
            .field("wait", JsonValue::UInt(event.wait));
        if let Some(cause) = event.cause {
            args = args.field("cause", JsonValue::str(cause));
        }
        let span = JsonObject::new()
            .field("ph", JsonValue::str("X"))
            .field("pid", JsonValue::UInt(PID_SIMULATE))
            .field("tid", JsonValue::UInt(tid))
            .field("ts", JsonValue::UInt(event.issue))
            .field("dur", JsonValue::UInt(dur))
            .field("cat", JsonValue::str("pipeline"))
            .field("name", JsonValue::str(event.class))
            .field("args", args.build())
            .build();
        self.emit(&span);
    }

    fn block_replay(&mut self, event: &BlockReplayEvent) {
        self.ensure_pipeline_meta();
        // Instant marker on the dedicated "block cache" lane at the block's
        // entry cycle — entry cycles are nondecreasing, so the lane keeps
        // the validator's monotone-timestamp invariant.
        let tid = self.lanes.len() as u64 + 2;
        let name = if event.hit { "replay" } else { "fallback" };
        let marker = JsonObject::new()
            .field("ph", JsonValue::str("i"))
            .field("pid", JsonValue::UInt(PID_SIMULATE))
            .field("tid", JsonValue::UInt(tid))
            .field("ts", JsonValue::UInt(event.cycle))
            .field("s", JsonValue::str("t"))
            .field("name", JsonValue::str(name))
            .field(
                "args",
                JsonObject::new()
                    .field("func", JsonValue::UInt(u64::from(event.func)))
                    .field("pc", JsonValue::UInt(event.pc))
                    .field(
                        "instructions",
                        JsonValue::UInt(u64::from(event.instructions)),
                    )
                    .build(),
            )
            .build();
        self.emit(&marker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::validate_timeline;

    fn issue(pc: u64, class: &'static str, at: u64, drain: u64) -> IssueEvent {
        IssueEvent {
            func: 0,
            pc,
            class,
            issue: at,
            complete: drain,
            drain,
            wait: 0,
            cause: None,
        }
    }

    fn render<F: FnOnce(&mut TimelineSink<Vec<u8>>)>(f: F) -> String {
        let mut sink = TimelineSink::new(Vec::new());
        f(&mut sink);
        String::from_utf8(sink.finish().expect("no write errors")).unwrap()
    }

    #[test]
    fn empty_timeline_is_a_valid_document() {
        let text = render(|_| {});
        let report = validate_timeline(&text).expect("valid");
        assert_eq!(report.events, 0);
    }

    #[test]
    fn phases_become_contiguous_compile_spans() {
        let text = render(|sink| {
            sink.phase(&PhaseRecord {
                name: "parse",
                wall_ns: 2500,
                counters: &[("source_bytes", 64)],
            });
            sink.phase(&PhaseRecord {
                name: "schedule",
                wall_ns: 4000,
                counters: &[],
            });
        });
        assert!(text.contains(r#""name":"parse""#));
        assert!(text.contains(r#""ts":2,"dur":4,"cat":"compile","name":"schedule""#));
        assert!(text.contains(r#""source_bytes":64"#));
        validate_timeline(&text).expect("valid");
    }

    #[test]
    fn issues_land_on_their_functional_unit_lane() {
        let mut sink = TimelineSink::new(Vec::new()).with_pipeline_lanes(
            vec!["integer".to_string(), "memory".to_string()],
            vec![("intadd".to_string(), 0), ("load".to_string(), 1)],
        );
        sink.issue(&issue(0, "load", 0, 2));
        sink.issue(&issue(1, "intadd", 0, 1));
        sink.issue(&issue(2, "fpdiv", 2, 9));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        validate_timeline(&text).expect("valid");
        // load → memory lane (tid 2), intadd → integer lane (tid 1),
        // unmapped fpdiv → other lane (tid 3).
        assert!(text.contains(r#""tid":2,"ts":0,"dur":2,"cat":"pipeline","name":"load""#));
        assert!(text.contains(r#""tid":1,"ts":0,"dur":1,"cat":"pipeline","name":"intadd""#));
        assert!(text.contains(r#""tid":3,"ts":2,"dur":7,"cat":"pipeline","name":"fpdiv""#));
        // The cycle advance emitted ipc for cycle 0 and inflight at cycle 2.
        assert!(text.contains(r#""ts":0,"name":"ipc","args":{"value":2}"#));
        assert!(text.contains(r#""ts":2,"name":"inflight","args":{"value":0}"#));
        // The final ipc sample covers the last cycle.
        assert!(text.contains(r#""ts":2,"name":"ipc","args":{"value":1}"#));
    }

    #[test]
    fn full_document_round_trips_through_the_validator() {
        let text = render(|sink| {
            sink.phase(&PhaseRecord {
                name: "parse",
                wall_ns: 1000,
                counters: &[],
            });
            sink.issue(&issue(0, "load", 0, 2));
            sink.issue(&issue(1, "intadd", 1, 2));
            let item = |worker, start_us, end_us, cached, cell, status| SweepItem {
                worker,
                start_us,
                end_us,
                cached,
                cell,
                workload: "whet",
                status,
            };
            sink.sweep_item(&item(0, 10, 250, false, "issue=2", "ok"));
            sink.sweep_item(&item(1, 12, 12, true, "issue=4", "ok"));
            sink.sweep_item(&item(0, 260, 300, false, "issue=8", "timeout"));
        });
        let report = validate_timeline(&text).expect("valid");
        assert!(report.events >= 6);
        assert!(report.lanes >= 4);
        assert!(text.contains(r#""name":"cache hit""#));
        assert!(text.contains(r#""name":"quarantine""#));
    }

    #[test]
    fn write_errors_are_sticky_and_surface_at_finish() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = TimelineSink::new(Failing);
        sink.issue(&issue(0, "load", 0, 2));
        sink.issue(&issue(1, "load", 1, 3)); // quiet after the first error
        assert!(sink.finish().is_err());
    }
}
