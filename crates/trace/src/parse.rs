//! A small hand-rolled JSON reader — the inverse of [`crate::json`].
//!
//! The sweep engine re-reads its own append-only checkpoints after a kill,
//! and the result cache re-reads records written by earlier runs, so the
//! workspace needs a parser for exactly the JSON its writer emits (plus
//! ordinary whitespace tolerance). It is a straightforward recursive-descent
//! parser into the same ordered [`JsonValue`] model; numbers come back as
//! `UInt` when non-negative and integral, `Int` when negative and integral,
//! and `Float` otherwise, so `parse(render(v))` re-renders byte-identically
//! — the property the per-record checksum scheme relies on.

use crate::json::JsonValue;
use std::fmt;

/// Where and why a parse failed. Offsets are byte offsets into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending character (or end of input).
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonParseError`] locating the first malformed byte.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return Err(parser.error("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.at,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(expected) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-borrow the full char (multi-byte UTF-8 is legal
                    // unescaped in JSON strings).
                    self.at -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let first = self.hex4()?;
        // Surrogate pair: 😀 style. The writer never emits
        // these (it escapes only control characters), but accept them.
        if (0xD800..0xDC00).contains(&first) {
            self.eat(b'\\')?;
            self.eat(b'u')?;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0_u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.at += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.at += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number bytes are ASCII");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonParseError {
                offset: start,
                message: format!("malformed number '{text}'"),
            })
    }
}

impl JsonValue {
    /// The object's pairs, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up a field by key (first match) in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The array's items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A `u64` view: `UInt` directly, or a non-negative `Int`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// An `f64` view of any numeric value.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Timeline validation
// ---------------------------------------------------------------------------

/// Summary of a validated `supersym.timeline/v1` document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineReport {
    /// Non-metadata events (spans, counters, instants).
    pub events: usize,
    /// Distinct `(pid, tid)` lanes that carried events.
    pub lanes: usize,
}

/// Why a timeline document failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// The document is not well-formed JSON.
    Parse(JsonParseError),
    /// The document parsed but violates a `trace_event` invariant.
    Invalid(String),
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::Parse(error) => write!(f, "{error}"),
            TimelineError::Invalid(message) => write!(f, "invalid timeline: {message}"),
        }
    }
}

impl std::error::Error for TimelineError {}

/// Validates an emitted timeline file against the Chrome `trace_event`
/// invariants the workspace's emitter guarantees:
///
/// * the document is an object with `schema == "supersym.timeline/v1"`
///   and a `traceEvents` array;
/// * every event has a known single-character `ph` plus integral `pid`
///   and `tid`; non-metadata events carry an integral `ts` (and `X` a
///   `dur`);
/// * per `(pid, tid)` lane, `ts` is monotonically nondecreasing in file
///   order;
/// * `B`/`E` pairs nest per lane and every `B` is closed;
/// * `pid`/`tid` naming is stable: no lane is renamed, and every pid that
///   carries events has exactly one `process_name`.
///
/// # Errors
///
/// [`TimelineError::Parse`] for malformed JSON, [`TimelineError::Invalid`]
/// (with the offending event's index) for the first violated invariant.
pub fn validate_timeline(text: &str) -> Result<TimelineReport, TimelineError> {
    use std::collections::HashMap;
    let invalid = |message: String| Err(TimelineError::Invalid(message));
    let doc = parse_json(text).map_err(TimelineError::Parse)?;
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema != Some(crate::timeline::TIMELINE_SCHEMA) {
        return invalid(format!("schema is {schema:?}"));
    }
    let Some(events) = doc.get("traceEvents").and_then(JsonValue::as_array) else {
        return invalid("missing traceEvents array".to_string());
    };
    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    let mut open_spans: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut process_names: HashMap<u64, String> = HashMap::new();
    let mut thread_names: HashMap<(u64, u64), String> = HashMap::new();
    let mut counted = 0_usize;
    for (index, event) in events.iter().enumerate() {
        let fail =
            |message: String| Err(TimelineError::Invalid(format!("event {index}: {message}")));
        if event.as_object().is_none() {
            return fail("not an object".to_string());
        }
        let Some(ph) = event.get("ph").and_then(JsonValue::as_str) else {
            return fail("missing ph".to_string());
        };
        if !matches!(ph, "B" | "E" | "X" | "C" | "i" | "M") {
            return fail(format!("unknown ph `{ph}`"));
        }
        let Some(pid) = event.get("pid").and_then(JsonValue::as_u64) else {
            return fail("missing integral pid".to_string());
        };
        let Some(tid) = event.get("tid").and_then(JsonValue::as_u64) else {
            return fail("missing integral tid".to_string());
        };
        let lane = (pid, tid);
        let name = event.get("name").and_then(JsonValue::as_str);
        if ph == "M" {
            let Some(arg_name) = event
                .get("args")
                .and_then(|args| args.get("name"))
                .and_then(JsonValue::as_str)
            else {
                return fail("metadata event without args.name".to_string());
            };
            match name {
                Some("process_name") => {
                    if let Some(previous) = process_names.insert(pid, arg_name.to_string()) {
                        if previous != arg_name {
                            return fail(format!("pid {pid} renamed `{previous}` -> `{arg_name}`"));
                        }
                    }
                }
                Some("thread_name") => {
                    if let Some(previous) = thread_names.insert(lane, arg_name.to_string()) {
                        if previous != arg_name {
                            return fail(format!(
                                "lane {pid}:{tid} renamed `{previous}` -> `{arg_name}`"
                            ));
                        }
                    }
                }
                _ => {}
            }
            continue;
        }
        counted += 1;
        let Some(ts) = event.get("ts").and_then(JsonValue::as_u64) else {
            return fail("missing integral ts".to_string());
        };
        if let Some(&previous) = last_ts.get(&lane) {
            if ts < previous {
                return fail(format!(
                    "lane {pid}:{tid} ts went backwards ({previous} -> {ts})"
                ));
            }
        }
        last_ts.insert(lane, ts);
        match ph {
            "X" if event.get("dur").and_then(JsonValue::as_u64).is_none() => {
                return fail("X event without integral dur".to_string());
            }
            "B" => {
                open_spans
                    .entry(lane)
                    .or_default()
                    .push(name.unwrap_or("").to_string());
            }
            // The guard pops the span either way; only a pop from an
            // empty stack (no matching B) takes the arm.
            "E" if open_spans.entry(lane).or_default().pop().is_none() => {
                return fail(format!("lane {pid}:{tid} E without matching B"));
            }
            _ => {}
        }
    }
    for ((pid, tid), stack) in &open_spans {
        if let Some(name) = stack.last() {
            return invalid(format!("lane {pid}:{tid} unclosed B span `{name}`"));
        }
    }
    for &(pid, _) in last_ts.keys() {
        if !process_names.contains_key(&pid) {
            return invalid(format!("pid {pid} has events but no process_name"));
        }
    }
    Ok(TimelineReport {
        events: counted,
        lanes: last_ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonObject;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::UInt(42));
        assert_eq!(parse_json("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse_json("0.5").unwrap(), JsonValue::Float(0.5));
        assert_eq!(parse_json("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), JsonValue::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let value = parse_json(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(value.get("c").and_then(JsonValue::as_str), Some("x"));
        let items = value.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn object_order_is_preserved() {
        let value = parse_json(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = value
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = JsonValue::str("a\"b\\c\nd\te\u{1}f\u{263A}");
        let rendered = original.to_string();
        assert_eq!(parse_json(&rendered).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse_json(r#""😀""#).unwrap(), JsonValue::str("\u{1F600}"));
    }

    #[test]
    fn render_parse_render_is_stable() {
        // The checksum scheme re-renders parsed records; the second render
        // must be byte-identical to the first even for integral floats
        // (Float(2.0) renders "2", re-parses as UInt(2), renders "2").
        let value = JsonObject::new()
            .field("name", JsonValue::str("cell-0"))
            .field("count", JsonValue::UInt(42))
            .field("delta", JsonValue::Int(-3))
            .field("ilp", JsonValue::Float(2.5))
            .field("speedup", JsonValue::Float(2.0))
            .field("flag", JsonValue::Bool(true))
            .field("none", JsonValue::Null)
            .field(
                "list",
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::str("x")]),
            )
            .build();
        let first = value.to_string();
        let reparsed = parse_json(&first).unwrap();
        assert_eq!(reparsed.to_string(), first);
    }

    #[test]
    fn truncated_input_is_an_error() {
        for text in [
            "{\"a\":1",
            "[1,2",
            "\"unterminated",
            "{\"a\"",
            "tru",
            "{\"ok\":tr",
            "12.",
            "",
        ] {
            assert!(parse_json(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("{} x").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let value = parse_json(" {\n  \"a\" : [ 1 , 2 ]\n}\n").unwrap();
        assert_eq!(
            value.get("a").and_then(JsonValue::as_array).unwrap().len(),
            2
        );
    }

    #[test]
    fn huge_integers_become_floats_or_ints() {
        assert_eq!(
            parse_json("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
        assert_eq!(
            parse_json("-9223372036854775808").unwrap(),
            JsonValue::Int(i64::MIN)
        );
    }
}
