//! # supersym-trace
//!
//! The observability layer of the supersym system: structured telemetry
//! events, the sinks that consume them, and a dependency-free JSON writer.
//!
//! The paper's central question is *where the parallelism goes* — why
//! measured ILP saturates near 2–3 despite wider issue and deeper pipes.
//! Answering it needs more than aggregate cycle counts, so the simulator's
//! timing model attributes every waited cycle to a cause and the compiler
//! reports per-phase telemetry. This crate defines the shared vocabulary:
//!
//! * [`TraceSink`] — the consumer trait. Producers take `&mut dyn
//!   TraceSink` (or run sink-free at zero cost); there is no global state.
//! * [`PhaseRecord`] / [`IssueEvent`] — the two event kinds: compile phases
//!   with wall time and counters, and per-dynamic-instruction issue records
//!   with stall attribution.
//! * [`NullSink`] / [`MemorySink`] / [`JsonLinesSink`] — discard, collect,
//!   or stream as JSON lines.
//! * [`JsonValue`] / [`JsonObject`] — a small ordered JSON document model
//!   (the workspace builds offline; no serde), used both for the JSON-lines
//!   stream and for `titalc profile --json`.
//!
//! Dependency direction: this crate is a leaf — `supersym-sim` and
//! `supersym` (core) depend on it, never the reverse.
//!
//! ## Example
//!
//! ```
//! use supersym_trace::{IssueEvent, JsonLinesSink, PhaseRecord, TraceSink};
//!
//! let mut sink = JsonLinesSink::new(Vec::new());
//! sink.phase(&PhaseRecord { name: "parse", wall_ns: 1800, counters: &[("functions", 2)] });
//! sink.issue(&IssueEvent {
//!     func: 0, pc: 0, class: "add/sub",
//!     issue: 0, complete: 1, drain: 1, wait: 0, cause: None,
//! });
//! let text = String::from_utf8(sink.finish()?)?;
//! assert_eq!(text.lines().count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod json;
mod metrics;
mod parse;
mod sink;
mod timeline;

pub use json::{escape_into, JsonObject, JsonValue};
pub use metrics::{Histogram, Metric, MetricsRegistry, METRICS_SCHEMA};
pub use parse::{parse_json, validate_timeline, JsonParseError, TimelineError, TimelineReport};
pub use sink::{
    BlockReplayEvent, IssueEvent, JsonLinesSink, LoopCountSink, MemorySink, NullSink, OwnedPhase,
    PhaseRecord, TraceSink,
};
pub use timeline::{
    SweepItem, TimelineSink, PID_COMPILE, PID_SIMULATE, PID_SWEEP, TIMELINE_SCHEMA,
};
