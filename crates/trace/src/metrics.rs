//! A zero-dependency metrics registry: counters, gauges and log2-bucket
//! histograms, rendered as `supersym.metrics/v1` JSON.
//!
//! Same discipline as the rest of this crate: no global state (a registry
//! is built and owned by whoever reports), no serde (the ordered
//! [`JsonValue`] model renders it), and nothing here runs on a hot path —
//! producers record into fixed-size [`Histogram`]s (a plain `[u64; 65]`,
//! no allocation per sample) and fold them into a registry once, at
//! reporting time. Insertion order is preserved so emitted documents are
//! stable to diff and to golden-test.

use crate::json::{JsonObject, JsonValue};

/// Schema identifier of the metrics document `titalc stats` emits.
pub const METRICS_SCHEMA: &str = "supersym.metrics/v1";

/// Number of histogram buckets: one for zero, one per power of two.
const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts zeros; bucket `k >= 1` counts values in
/// `[2^(k-1), 2^k)`. Recording is allocation-free (the buckets are a
/// fixed-size array), so a histogram can sit behind an opt-in observer
/// without violating the simulator's no-alloc contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `value`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        match value {
            0 => 0,
            v => 1 + v.ilog2() as usize,
        }
    }

    /// Inclusive `(lo, hi)` bounds of bucket `index`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            k => (1 << (k - 1), (1 << k) - 1),
        }
    }

    /// Records one sample. Allocation-free.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether any sample was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(index, &n)| {
                let (lo, hi) = Self::bucket_bounds(index);
                (lo, hi, n)
            })
    }

    /// Renders the histogram as a JSON object (only non-empty buckets).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let buckets = self
            .nonzero_buckets()
            .map(|(lo, hi, count)| {
                JsonObject::new()
                    .field("lo", JsonValue::UInt(lo))
                    .field("hi", JsonValue::UInt(hi))
                    .field("count", JsonValue::UInt(count))
                    .build()
            })
            .collect();
        JsonObject::new()
            .field("type", JsonValue::str("histogram"))
            .field("count", JsonValue::UInt(self.count))
            .field("sum", JsonValue::UInt(self.sum))
            .field("min", JsonValue::UInt(self.min()))
            .field("max", JsonValue::UInt(self.max))
            .field("buckets", JsonValue::Array(buckets))
            .build()
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time measurement.
    Gauge(f64),
    /// A sample distribution (boxed: a histogram dwarfs the scalars).
    Histogram(Box<Histogram>),
}

impl Metric {
    fn to_json(&self) -> JsonValue {
        match self {
            Metric::Counter(value) => JsonObject::new()
                .field("type", JsonValue::str("counter"))
                .field("value", JsonValue::UInt(*value))
                .build(),
            Metric::Gauge(value) => JsonObject::new()
                .field("type", JsonValue::str("gauge"))
                .field("value", JsonValue::Float(*value))
                .build(),
            Metric::Histogram(histogram) => histogram.to_json(),
        }
    }
}

/// An insertion-ordered collection of named metrics.
///
/// Setting a name that already exists replaces the value in place, so a
/// registry can be assembled in passes (compile metrics, then run metrics)
/// without duplicate keys, and the emitted document order stays stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn set(&mut self, name: impl Into<String>, metric: Metric) {
        let name = name.into();
        match self.entries.iter_mut().find(|(k, _)| *k == name) {
            Some((_, slot)) => *slot = metric,
            None => self.entries.push((name, metric)),
        }
    }

    /// Sets a counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.set(name, Metric::Counter(value));
    }

    /// Sets a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.set(name, Metric::Gauge(value));
    }

    /// Sets a histogram (copied out of the producer).
    pub fn histogram(&mut self, name: impl Into<String>, histogram: &Histogram) {
        self.set(name, Metric::Histogram(Box::new(*histogram)));
    }

    /// The entries, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(String, Metric)] {
        &self.entries
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Renders the registry as one JSON object keyed by metric name.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.entries
                .iter()
                .map(|(name, metric)| (name.clone(), metric.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_u64_range() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for index in 0..NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(index);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), index);
            assert_eq!(Histogram::bucket_index(hi), index);
        }
    }

    #[test]
    fn histogram_accumulates_and_merges() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        let mut other = Histogram::new();
        other.record(7);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 113);
        let buckets: Vec<(u64, u64, u64)> = h.nonzero_buckets().collect();
        // 0; 1; 2,3; 7 in [4,7]; 100 in [64,127].
        assert_eq!(
            buckets,
            vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (4, 7, 1), (64, 127, 1)]
        );
    }

    #[test]
    fn registry_preserves_order_and_replaces_in_place() {
        let mut registry = MetricsRegistry::new();
        registry.counter("b.count", 2);
        registry.gauge("a.rate", 1.5);
        registry.counter("b.count", 3);
        let names: Vec<&str> = registry.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["b.count", "a.rate"]);
        assert_eq!(registry.get("b.count"), Some(&Metric::Counter(3)));
    }

    #[test]
    fn registry_renders_typed_json() {
        let mut registry = MetricsRegistry::new();
        registry.counter("cycles", 42);
        registry.gauge("ilp", 2.5);
        let mut h = Histogram::new();
        h.record(5);
        registry.histogram("stalls", &h);
        let text = registry.to_json().to_string();
        assert_eq!(
            text,
            r#"{"cycles":{"type":"counter","value":42},"ilp":{"type":"gauge","value":2.5},"stalls":{"type":"histogram","count":1,"sum":5,"min":5,"max":5,"buckets":[{"lo":4,"hi":7,"count":1}]}}"#
        );
    }
}
