//! Trace sinks: where telemetry events go.
//!
//! A [`TraceSink`] is handed *by the caller* to the compiler
//! (`compile_with_trace`) and the simulator (`simulate_with_sink`) — there
//! is no global state, no registration, and a `None` sink costs the
//! producers nothing but a branch. Two event kinds cover the pipeline:
//!
//! * [`PhaseRecord`] — one per compile phase: wall time plus a small set of
//!   named counters (IR sizes, dependence-edge counts, scheduler decisions);
//! * [`IssueEvent`] — one per dynamic instruction: issue/complete/drain
//!   cycles, how long it waited, and the stall cause that bound it.

use crate::json::{JsonObject, JsonValue};
use std::io::{self, Write};

/// One compile phase, reported after the phase finishes.
///
/// Borrowed so producers can report from stack data without allocating;
/// sinks that need ownership copy what they keep.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRecord<'a> {
    /// Phase name (`"parse"`, `"schedule"`, …).
    pub name: &'a str,
    /// Wall-clock time the phase took, in nanoseconds.
    pub wall_ns: u128,
    /// Named counters: IR sizes, edge counts, decision tallies.
    pub counters: &'a [(&'a str, u64)],
}

/// One dynamic instruction's trip through the pipeline timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueEvent {
    /// Function index of the static instruction.
    pub func: u32,
    /// Instruction index within the function.
    pub pc: u64,
    /// Instruction-class mnemonic (`"load"`, `"fpadd"`, …).
    pub class: &'static str,
    /// Machine cycle the instruction issued in.
    pub issue: u64,
    /// Machine cycle its (first) result became available.
    pub complete: u64,
    /// Machine cycle it fully drained (vector tail included).
    pub drain: u64,
    /// Machine cycles it waited past the in-order frontier before issuing.
    pub wait: u64,
    /// Stall-cause label that bound the wait (`None` when `wait == 0`).
    pub cause: Option<&'static str>,
}

/// The simulator's block timing cache answered a block visit.
///
/// Emitted once per replayed block (not per instruction): `hit: true` when
/// a recorded variant was applied, `hit: false` when mid-block verification
/// failed and the run fell back to the exact model. Block visits that run
/// exact from the start (cold blocks, summary overflows) emit nothing —
/// their instructions appear only as ordinary [`IssueEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockReplayEvent {
    /// Function index of the block's entry instruction.
    pub func: u32,
    /// Entry-instruction index within the function.
    pub pc: u64,
    /// Machine cycle at block entry.
    pub cycle: u64,
    /// Instructions replayed before the event was emitted.
    pub instructions: u32,
    /// Whether the replay ran to the end of the block.
    pub hit: bool,
}

/// A telemetry consumer. All methods default to no-ops so sinks implement
/// only what they care about.
pub trait TraceSink {
    /// A compile phase finished.
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        let _ = record;
    }

    /// A dynamic instruction issued.
    fn issue(&mut self, event: &IssueEvent) {
        let _ = event;
    }

    /// The simulator's block timing cache replayed (or abandoned a replay
    /// of) a block.
    fn block_replay(&mut self, event: &BlockReplayEvent) {
        let _ = event;
    }
}

/// Discards everything (useful as an explicit "no telemetry" argument).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// An owned copy of a [`PhaseRecord`], as stored by [`MemorySink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedPhase {
    /// Phase name.
    pub name: String,
    /// Wall-clock nanoseconds.
    pub wall_ns: u128,
    /// Named counters.
    pub counters: Vec<(String, u64)>,
}

/// Records every event in memory — the sink behind `titalc profile` and the
/// unit tests.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Compile phases, in order.
    pub phases: Vec<OwnedPhase>,
    /// Issue events, in order. Beware: one entry per *dynamic* instruction.
    pub issues: Vec<IssueEvent>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl TraceSink for MemorySink {
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        self.phases.push(OwnedPhase {
            name: record.name.to_string(),
            wall_ns: record.wall_ns,
            counters: record
                .counters
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    fn issue(&mut self, event: &IssueEvent) {
        self.issues.push(*event);
    }
}

/// Counts loop iterations and loop visits from the issue stream — the sink
/// behind the static-ILP-bound report (`titalc bound`).
///
/// Each watch names one innermost loop by `(func, header_pc, latch_pc)`.
/// Every issue of the header counts an **iteration**; a header issue whose
/// immediately preceding dynamic instruction was *not* the latch counts a
/// **visit** (loop entry from outside). Since an innermost loop's latch is
/// its only backward branch and the header is never `latch + 1`, "previous
/// event was the latch" is exactly "we arrived via the back edge".
#[derive(Debug, Clone, Default)]
pub struct LoopCountSink {
    watches: Vec<LoopWatch>,
    prev: Option<(u32, u64)>,
}

#[derive(Debug, Clone, Copy)]
struct LoopWatch {
    func: u32,
    header_pc: u64,
    latch_pc: u64,
    iterations: u64,
    visits: u64,
}

impl LoopCountSink {
    /// Builds a sink watching the given `(func, header_pc, latch_pc)`
    /// triples, in order.
    #[must_use]
    pub fn new(watches: &[(u32, u64, u64)]) -> Self {
        LoopCountSink {
            watches: watches
                .iter()
                .map(|&(func, header_pc, latch_pc)| LoopWatch {
                    func,
                    header_pc,
                    latch_pc,
                    iterations: 0,
                    visits: 0,
                })
                .collect(),
            prev: None,
        }
    }

    /// `(iterations, visits)` per watch, in construction order.
    #[must_use]
    pub fn counts(&self) -> Vec<(u64, u64)> {
        self.watches
            .iter()
            .map(|w| (w.iterations, w.visits))
            .collect()
    }
}

impl TraceSink for LoopCountSink {
    fn issue(&mut self, event: &IssueEvent) {
        for watch in &mut self.watches {
            if watch.func == event.func && watch.header_pc == event.pc {
                watch.iterations += 1;
                if self.prev != Some((watch.func, watch.latch_pc)) {
                    watch.visits += 1;
                }
            }
        }
        self.prev = Some((event.func, event.pc));
    }
}

/// Streams events as JSON lines (one object per line) to any writer — the
/// sink behind `titalc --trace <file>`. Write errors are sticky: the first
/// one is kept and the sink goes quiet, so the hot path needs no `Result`.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer (hand it a `BufWriter` for file output).
    pub fn new(out: W) -> Self {
        JsonLinesSink { out, error: None }
    }

    /// Flushes and returns the writer, or the first write error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink swallowed while streaming.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_value(&mut self, value: &JsonValue) {
        if self.error.is_some() {
            return;
        }
        if let Err(error) = writeln!(self.out, "{value}") {
            self.error = Some(error);
        }
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        let counters = record
            .counters
            .iter()
            .map(|&(k, v)| (k.to_string(), JsonValue::UInt(v)))
            .collect();
        let value = JsonObject::new()
            .field("event", JsonValue::str("phase"))
            .field("name", JsonValue::str(record.name))
            .field("wall_ns", JsonValue::UInt(clamp_u128(record.wall_ns)))
            .field("counters", JsonValue::Object(counters))
            .build();
        self.write_value(&value);
    }

    fn issue(&mut self, event: &IssueEvent) {
        let cause = match event.cause {
            Some(label) => JsonValue::str(label),
            None => JsonValue::Null,
        };
        let value = JsonObject::new()
            .field("event", JsonValue::str("issue"))
            .field("func", JsonValue::UInt(u64::from(event.func)))
            .field("pc", JsonValue::UInt(event.pc))
            .field("class", JsonValue::str(event.class))
            .field("issue", JsonValue::UInt(event.issue))
            .field("complete", JsonValue::UInt(event.complete))
            .field("drain", JsonValue::UInt(event.drain))
            .field("wait", JsonValue::UInt(event.wait))
            .field("cause", cause)
            .build();
        self.write_value(&value);
    }
}

fn clamp_u128(n: u128) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_issue() -> IssueEvent {
        IssueEvent {
            func: 0,
            pc: 3,
            class: "load",
            issue: 7,
            complete: 9,
            drain: 9,
            wait: 2,
            cause: Some("raw_interlock"),
        }
    }

    #[test]
    fn memory_sink_records_both_event_kinds() {
        let mut sink = MemorySink::new();
        sink.phase(&PhaseRecord {
            name: "parse",
            wall_ns: 1234,
            counters: &[("functions", 3)],
        });
        sink.issue(&sample_issue());
        assert_eq!(sink.phases.len(), 1);
        assert_eq!(sink.phases[0].name, "parse");
        assert_eq!(sink.phases[0].counters, vec![("functions".to_string(), 3)]);
        assert_eq!(sink.issues, vec![sample_issue()]);
    }

    #[test]
    fn json_lines_sink_emits_one_object_per_line() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.phase(&PhaseRecord {
            name: "schedule",
            wall_ns: 10,
            counters: &[("regions", 4)],
        });
        sink.issue(&sample_issue());
        let bytes = sink.finish().expect("no write errors");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"event":"phase","name":"schedule","wall_ns":10,"counters":{"regions":4}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"event":"issue","func":0,"pc":3,"class":"load","issue":7,"complete":9,"drain":9,"wait":2,"cause":"raw_interlock"}"#
        );
    }

    #[test]
    fn json_lines_sink_reports_write_errors_at_finish() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(Failing);
        sink.issue(&sample_issue());
        sink.issue(&sample_issue()); // goes quiet after the first error
        assert!(sink.finish().is_err());
    }

    #[test]
    fn json_lines_sink_surfaces_torn_mid_line_writes() {
        // Accepts `budget` bytes, then fails: the first event line tears
        // partway through, like a disk filling mid-record. The error must
        // surface at finish() — not panic, not silently truncate.
        #[derive(Debug)]
        struct Torn {
            budget: usize,
            written: Vec<u8>,
        }
        impl Write for Torn {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::other("no space left on device"));
                }
                let n = buf.len().min(self.budget);
                self.budget -= n;
                self.written.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(Torn {
            budget: 10,
            written: Vec::new(),
        });
        sink.issue(&sample_issue());
        sink.issue(&sample_issue()); // quiet: nothing appended after the tear
        let error = sink.finish().expect_err("torn write must surface");
        assert_eq!(error.to_string(), "no space left on device");
    }

    #[test]
    fn loop_count_sink_separates_iterations_from_visits() {
        // Loop: header pc 2, latch pc 4. Two visits: 3 iterations, then 1.
        let mut sink = LoopCountSink::new(&[(0, 2, 4)]);
        let at = |func: u32, pc: u64| IssueEvent {
            func,
            pc,
            class: "intadd",
            issue: 0,
            complete: 1,
            drain: 1,
            wait: 0,
            cause: None,
        };
        for pc in [0, 1, 2, 3, 4, 2, 3, 4, 2, 3, 4, 5] {
            sink.issue(&at(0, pc));
        }
        // Re-entry later (prev = pc 5, not the latch).
        for pc in [2, 3, 4, 5] {
            sink.issue(&at(0, pc));
        }
        assert_eq!(sink.counts(), vec![(4, 2)]);
        // A different function's pc 2 must not count.
        sink.issue(&at(1, 2));
        assert_eq!(sink.counts(), vec![(4, 2)]);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.phase(&PhaseRecord {
            name: "x",
            wall_ns: 0,
            counters: &[],
        });
        sink.issue(&sample_issue());
    }
}
