//! Trace sinks: where telemetry events go.
//!
//! A [`TraceSink`] is handed *by the caller* to the compiler
//! (`compile_with_trace`) and the simulator (`simulate_with_sink`) — there
//! is no global state, no registration, and a `None` sink costs the
//! producers nothing but a branch. Two event kinds cover the pipeline:
//!
//! * [`PhaseRecord`] — one per compile phase: wall time plus a small set of
//!   named counters (IR sizes, dependence-edge counts, scheduler decisions);
//! * [`IssueEvent`] — one per dynamic instruction: issue/complete/drain
//!   cycles, how long it waited, and the stall cause that bound it.

use crate::json::{JsonObject, JsonValue};
use std::io::{self, Write};

/// One compile phase, reported after the phase finishes.
///
/// Borrowed so producers can report from stack data without allocating;
/// sinks that need ownership copy what they keep.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRecord<'a> {
    /// Phase name (`"parse"`, `"schedule"`, …).
    pub name: &'a str,
    /// Wall-clock time the phase took, in nanoseconds.
    pub wall_ns: u128,
    /// Named counters: IR sizes, edge counts, decision tallies.
    pub counters: &'a [(&'a str, u64)],
}

/// One dynamic instruction's trip through the pipeline timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueEvent {
    /// Function index of the static instruction.
    pub func: u32,
    /// Instruction index within the function.
    pub pc: u64,
    /// Instruction-class mnemonic (`"load"`, `"fpadd"`, …).
    pub class: &'static str,
    /// Machine cycle the instruction issued in.
    pub issue: u64,
    /// Machine cycle its (first) result became available.
    pub complete: u64,
    /// Machine cycle it fully drained (vector tail included).
    pub drain: u64,
    /// Machine cycles it waited past the in-order frontier before issuing.
    pub wait: u64,
    /// Stall-cause label that bound the wait (`None` when `wait == 0`).
    pub cause: Option<&'static str>,
}

/// A telemetry consumer. All methods default to no-ops so sinks implement
/// only what they care about.
pub trait TraceSink {
    /// A compile phase finished.
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        let _ = record;
    }

    /// A dynamic instruction issued.
    fn issue(&mut self, event: &IssueEvent) {
        let _ = event;
    }
}

/// Discards everything (useful as an explicit "no telemetry" argument).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// An owned copy of a [`PhaseRecord`], as stored by [`MemorySink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedPhase {
    /// Phase name.
    pub name: String,
    /// Wall-clock nanoseconds.
    pub wall_ns: u128,
    /// Named counters.
    pub counters: Vec<(String, u64)>,
}

/// Records every event in memory — the sink behind `titalc profile` and the
/// unit tests.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Compile phases, in order.
    pub phases: Vec<OwnedPhase>,
    /// Issue events, in order. Beware: one entry per *dynamic* instruction.
    pub issues: Vec<IssueEvent>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl TraceSink for MemorySink {
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        self.phases.push(OwnedPhase {
            name: record.name.to_string(),
            wall_ns: record.wall_ns,
            counters: record
                .counters
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    fn issue(&mut self, event: &IssueEvent) {
        self.issues.push(*event);
    }
}

/// Streams events as JSON lines (one object per line) to any writer — the
/// sink behind `titalc --trace <file>`. Write errors are sticky: the first
/// one is kept and the sink goes quiet, so the hot path needs no `Result`.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer (hand it a `BufWriter` for file output).
    pub fn new(out: W) -> Self {
        JsonLinesSink { out, error: None }
    }

    /// Flushes and returns the writer, or the first write error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink swallowed while streaming.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_value(&mut self, value: &JsonValue) {
        if self.error.is_some() {
            return;
        }
        if let Err(error) = writeln!(self.out, "{value}") {
            self.error = Some(error);
        }
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        let counters = record
            .counters
            .iter()
            .map(|&(k, v)| (k.to_string(), JsonValue::UInt(v)))
            .collect();
        let value = JsonObject::new()
            .field("event", JsonValue::str("phase"))
            .field("name", JsonValue::str(record.name))
            .field("wall_ns", JsonValue::UInt(clamp_u128(record.wall_ns)))
            .field("counters", JsonValue::Object(counters))
            .build();
        self.write_value(&value);
    }

    fn issue(&mut self, event: &IssueEvent) {
        let cause = match event.cause {
            Some(label) => JsonValue::str(label),
            None => JsonValue::Null,
        };
        let value = JsonObject::new()
            .field("event", JsonValue::str("issue"))
            .field("func", JsonValue::UInt(u64::from(event.func)))
            .field("pc", JsonValue::UInt(event.pc))
            .field("class", JsonValue::str(event.class))
            .field("issue", JsonValue::UInt(event.issue))
            .field("complete", JsonValue::UInt(event.complete))
            .field("drain", JsonValue::UInt(event.drain))
            .field("wait", JsonValue::UInt(event.wait))
            .field("cause", cause)
            .build();
        self.write_value(&value);
    }
}

fn clamp_u128(n: u128) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_issue() -> IssueEvent {
        IssueEvent {
            func: 0,
            pc: 3,
            class: "load",
            issue: 7,
            complete: 9,
            drain: 9,
            wait: 2,
            cause: Some("raw_interlock"),
        }
    }

    #[test]
    fn memory_sink_records_both_event_kinds() {
        let mut sink = MemorySink::new();
        sink.phase(&PhaseRecord {
            name: "parse",
            wall_ns: 1234,
            counters: &[("functions", 3)],
        });
        sink.issue(&sample_issue());
        assert_eq!(sink.phases.len(), 1);
        assert_eq!(sink.phases[0].name, "parse");
        assert_eq!(sink.phases[0].counters, vec![("functions".to_string(), 3)]);
        assert_eq!(sink.issues, vec![sample_issue()]);
    }

    #[test]
    fn json_lines_sink_emits_one_object_per_line() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.phase(&PhaseRecord {
            name: "schedule",
            wall_ns: 10,
            counters: &[("regions", 4)],
        });
        sink.issue(&sample_issue());
        let bytes = sink.finish().expect("no write errors");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"event":"phase","name":"schedule","wall_ns":10,"counters":{"regions":4}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"event":"issue","func":0,"pc":3,"class":"load","issue":7,"complete":9,"drain":9,"wait":2,"cause":"raw_interlock"}"#
        );
    }

    #[test]
    fn json_lines_sink_reports_write_errors_at_finish() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(Failing);
        sink.issue(&sample_issue());
        sink.issue(&sample_issue()); // goes quiet after the first error
        assert!(sink.finish().is_err());
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.phase(&PhaseRecord {
            name: "x",
            wall_ns: 0,
            counters: &[],
        });
        sink.issue(&sample_issue());
    }
}
