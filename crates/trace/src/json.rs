//! A small hand-rolled JSON writer.
//!
//! The workspace builds offline, so there is no serde; the telemetry layer
//! needs only *emission*, and only of values it constructs itself, so a tiny
//! ordered document model with a `Display` renderer is enough. Objects
//! preserve insertion order, which is what makes `titalc profile --json`
//! byte-stable enough for golden-file tests.

use std::fmt;

/// A JSON value. Objects keep their keys in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (cycle counts, sizes).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object: ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Renders with two-space indentation (for human-facing reports).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let mut buf = [0_u8; 20];
                out.push_str(format_u64(*n, &mut buf));
            }
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Float(x) if x.is_finite() => {
                // Rust's shortest-roundtrip float formatting is
                // deterministic; integral values print without a dot,
                // which is still valid JSON.
                out.push_str(&x.to_string());
            }
            JsonValue::Float(_) => out.push_str("null"),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.render(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    escape_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    /// Compact (single-line) rendering — the JSON-lines form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, None);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Formats a `u64` without going through `format!` (the hot path of the
/// JSON-lines sink writes several per instruction).
fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut at = buf.len();
    loop {
        at -= 1;
        buf[at] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[at..]).expect("digits are ASCII")
}

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes and
/// control characters.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience builder for ordered objects.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    pairs: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a field (keeps insertion order).
    pub fn field(mut self, key: impl Into<String>, value: JsonValue) -> Self {
        self.pairs.push((key.into(), value));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let value = JsonObject::new()
            .field("name", JsonValue::str("x\"y\\z"))
            .field("count", JsonValue::UInt(42))
            .field("delta", JsonValue::Int(-3))
            .field("rate", JsonValue::Float(0.5))
            .field("flag", JsonValue::Bool(true))
            .field("none", JsonValue::Null)
            .field(
                "list",
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::UInt(2)]),
            )
            .build();
        assert_eq!(
            value.to_string(),
            r#"{"name":"x\"y\\z","count":42,"delta":-3,"rate":0.5,"flag":true,"none":null,"list":[1,2]}"#
        );
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let value = JsonObject::new()
            .field("a", JsonValue::UInt(1))
            .field("b", JsonValue::Array(vec![JsonValue::str("x")]))
            .build();
        assert_eq!(
            value.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}\n"
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut out = String::new();
        escape_into("a\nb\u{1}", &mut out);
        assert_eq!(out, "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn empty_containers_stay_compact_when_pretty() {
        let value = JsonObject::new()
            .field("a", JsonValue::Array(Vec::new()))
            .field("o", JsonValue::Object(Vec::new()))
            .build();
        assert_eq!(value.pretty(), "{\n  \"a\": [],\n  \"o\": {}\n}\n");
    }
}
