//! Source-level loop unrolling, naive and careful (§4.4).
//!
//! *Naive* unrolling "consists simply of duplicating the loop body inside
//! the loop": each copy is followed by the induction-variable increment, so
//! array indices in different copies are computed from *different versions*
//! of the induction variable — the scheduler cannot prove the copies
//! independent and "false conflicts between the different copies" impose "a
//! sequential framework" on the computation, exactly as the paper observes.
//!
//! *Careful* unrolling keeps the induction variable fixed across the copies
//! (copy *k* uses `i + k*step`), renames reduction accumulators per copy
//! (combining them after the loop with a balanced tree — reassociation),
//! and thereby both removes the false memory conflicts and breaks the
//! accumulator dependence chain.
//!
//! Only innermost `for` loops in the canonical counted shape are unrolled;
//! a remainder loop handles trip counts not divisible by the factor.

use std::collections::HashMap;
use supersym_lang::ast::{BinOp, Block, Expr, FnDecl, GlobalKind, Module, Stmt, Ty};

/// Options for [`unroll_loops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrollOptions {
    /// Number of copies of the body per iteration of the unrolled loop.
    pub factor: usize,
    /// Careful (reduction renaming + fixed induction base) vs naive.
    pub careful: bool,
}

impl UnrollOptions {
    /// Naive unrolling by `factor`.
    #[must_use]
    pub fn naive(factor: usize) -> Self {
        UnrollOptions {
            factor,
            careful: false,
        }
    }

    /// Careful unrolling by `factor`.
    #[must_use]
    pub fn careful(factor: usize) -> Self {
        UnrollOptions {
            factor,
            careful: true,
        }
    }
}

/// Unrolls every eligible innermost `for` loop in the module.
/// Returns the number of loops unrolled.
pub fn unroll_loops(module: &mut Module, options: UnrollOptions) -> usize {
    if options.factor < 2 {
        return 0;
    }
    let globals: HashMap<String, Ty> = module
        .globals
        .iter()
        .filter(|g| matches!(g.kind, GlobalKind::Scalar { .. }))
        .map(|g| (g.name.clone(), g.ty))
        .collect();
    let mut count = 0;
    let mut counter = 0_usize;
    let funcs: Vec<FnDecl> = module.funcs.clone();
    for (index, func) in funcs.iter().enumerate() {
        let mut scopes = vec![globals.clone()];
        scopes.push(func.params.iter().cloned().collect());
        let mut body = func.body.clone();
        count += unroll_block(&mut body, options, &mut scopes, &mut counter);
        module.funcs[index].body = body;
    }
    count
}

fn unroll_block(
    block: &mut Block,
    options: UnrollOptions,
    scopes: &mut Vec<HashMap<String, Ty>>,
    counter: &mut usize,
) -> usize {
    let mut count = 0;
    let mut new_stmts: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
    scopes.push(HashMap::new());
    for stmt in block.stmts.drain(..) {
        match stmt {
            Stmt::Let { name, ty, init } => {
                scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.clone(), ty);
                new_stmts.push(Stmt::Let { name, ty, init });
            }
            Stmt::If {
                cond,
                mut then_blk,
                else_blk,
            } => {
                count += unroll_block(&mut then_blk, options, scopes, counter);
                let else_blk = else_blk.map(|mut b| {
                    count += unroll_block(&mut b, options, scopes, counter);
                    b
                });
                new_stmts.push(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                });
            }
            Stmt::While { cond, mut body } => {
                count += unroll_block(&mut body, options, scopes, counter);
                new_stmts.push(Stmt::While { cond, body });
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                mut body,
            } => {
                // Recurse first: only innermost loops are expanded, but
                // inner loops of this one may themselves be innermost.
                scopes.push(HashMap::from([(var.clone(), Ty::Int)]));
                count += unroll_block(&mut body, options, scopes, counter);
                scopes.pop();
                let for_stmt = Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                };
                match try_unroll(&for_stmt, options, scopes, counter) {
                    Some(expansion) => {
                        count += 1;
                        new_stmts.extend(expansion);
                    }
                    None => new_stmts.push(for_stmt),
                }
            }
            other => new_stmts.push(other),
        }
    }
    scopes.pop();
    block.stmts = new_stmts;
    count
}

/// A recognized reduction `x = x op e` at a top-level position in the body.
struct Reduction {
    position: usize,
    name: String,
    op: BinOp,
    ty: Ty,
}

fn try_unroll(
    stmt: &Stmt,
    options: UnrollOptions,
    scopes: &[HashMap<String, Ty>],
    counter: &mut usize,
) -> Option<Vec<Stmt>> {
    let Stmt::For {
        var,
        init,
        cond,
        step,
        body,
    } = stmt
    else {
        return None;
    };
    let (factor, step) = (options.factor, *step);
    if step == 0 {
        return None;
    }
    // Innermost only.
    if block_has_loop(body) || block_has_return(body) {
        return None;
    }
    // The body must not redefine or assign the induction variable.
    if block_writes_var(body, var) || block_declares(body, var) {
        return None;
    }
    // Canonical condition: `var REL bound` (or `bound REL var`).
    let Expr::Binary { op, lhs, rhs } = cond else {
        return None;
    };
    if !matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
        return None;
    }
    let bound_ok = |e: &Expr| !e.references_var(var) && !e.contains_call();
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Var(v), bound) if v == var && bound_ok(bound) => {}
        (bound, Expr::Var(v)) if v == var && bound_ok(bound) => {}
        _ => return None,
    }

    *counter += 1;
    let u_name = format!("{var}__u{counter}");
    let u_var = Expr::Var(u_name.clone());

    // Shifted condition guards all `factor` copies: substitute
    // i -> u + (factor-1)*step.
    let last_index = Expr::binary(
        BinOp::Add,
        u_var.clone(),
        Expr::IntLit((factor as i64 - 1) * step),
    );
    let shifted_cond = cond.substitute_var(var, &last_index);
    let remainder_cond = cond.substitute_var(var, &u_var);

    let mut out: Vec<Stmt> = Vec::new();
    out.push(Stmt::Let {
        name: u_name.clone(),
        ty: Ty::Int,
        init: init.clone(),
    });

    if options.careful {
        let reductions = find_reductions(body, var, scopes);
        // Accumulators for copies 1..factor.
        for k in 1..factor {
            for r in &reductions {
                out.push(Stmt::Let {
                    name: acc_name(&r.name, k, *counter),
                    ty: r.ty,
                    init: identity(r.op, r.ty),
                });
            }
        }
        // Main loop: copies with fixed base `u + k*step`.
        let mut main_body: Vec<Stmt> = Vec::new();
        for k in 0..factor {
            let index_expr = if k == 0 {
                u_var.clone()
            } else {
                Expr::binary(BinOp::Add, u_var.clone(), Expr::IntLit(k as i64 * step))
            };
            for (position, body_stmt) in body.stmts.iter().enumerate() {
                let mut copy = subst_stmt(body_stmt, var, &index_expr);
                if k > 0 {
                    if let Some(r) = reductions.iter().find(|r| r.position == position) {
                        copy = retarget_reduction(&copy, &r.name, &acc_name(&r.name, k, *counter));
                    }
                }
                main_body.push(copy);
            }
        }
        main_body.push(Stmt::Assign {
            name: u_name.clone(),
            value: Expr::binary(
                BinOp::Add,
                u_var.clone(),
                Expr::IntLit(factor as i64 * step),
            ),
        });
        out.push(Stmt::While {
            cond: shifted_cond,
            body: Block { stmts: main_body },
        });
        // Combine accumulators with a balanced tree.
        for r in &reductions {
            let mut terms: Vec<Expr> = vec![Expr::Var(r.name.clone())];
            for k in 1..factor {
                terms.push(Expr::Var(acc_name(&r.name, k, *counter)));
            }
            while terms.len() > 1 {
                let mut next = Vec::with_capacity(terms.len().div_ceil(2));
                let mut iter = terms.chunks_exact(2);
                for pair in iter.by_ref() {
                    next.push(Expr::binary(r.op, pair[0].clone(), pair[1].clone()));
                }
                if let [odd] = iter.remainder() {
                    next.push(odd.clone());
                }
                terms = next;
            }
            out.push(Stmt::Assign {
                name: r.name.clone(),
                value: terms.pop().expect("non-empty"),
            });
        }
    } else {
        // Naive: copy; u = u + step; copy; ... inside the loop.
        let mut main_body: Vec<Stmt> = Vec::new();
        for k in 0..factor {
            for body_stmt in &body.stmts {
                main_body.push(subst_stmt(body_stmt, var, &u_var));
            }
            if k + 1 < factor {
                main_body.push(Stmt::Assign {
                    name: u_name.clone(),
                    value: Expr::binary(BinOp::Add, u_var.clone(), Expr::IntLit(step)),
                });
            }
        }
        main_body.push(Stmt::Assign {
            name: u_name.clone(),
            value: Expr::binary(BinOp::Add, u_var.clone(), Expr::IntLit(step)),
        });
        out.push(Stmt::While {
            cond: shifted_cond,
            body: Block { stmts: main_body },
        });
    }

    // Remainder loop.
    let mut rem_body: Vec<Stmt> = body
        .stmts
        .iter()
        .map(|s| subst_stmt(s, var, &u_var))
        .collect();
    rem_body.push(Stmt::Assign {
        name: u_name,
        value: Expr::binary(BinOp::Add, u_var, Expr::IntLit(step)),
    });
    out.push(Stmt::While {
        cond: remainder_cond,
        body: Block { stmts: rem_body },
    });
    Some(out)
}

fn acc_name(base: &str, copy: usize, counter: usize) -> String {
    format!("{base}__acc{counter}_{copy}")
}

fn identity(op: BinOp, ty: Ty) -> Expr {
    match (op, ty) {
        (BinOp::Add, Ty::Int) => Expr::IntLit(0),
        (BinOp::Add, Ty::Float) => Expr::FloatLit(0.0),
        (BinOp::Mul, Ty::Int) => Expr::IntLit(1),
        (BinOp::Mul, Ty::Float) => Expr::FloatLit(1.0),
        _ => unreachable!("reductions are adds or muls"),
    }
}

/// Finds `x = x op e` reductions among the body's top-level statements.
fn find_reductions(body: &Block, loop_var: &str, scopes: &[HashMap<String, Ty>]) -> Vec<Reduction> {
    let mut candidates: Vec<Reduction> = Vec::new();
    for (position, stmt) in body.stmts.iter().enumerate() {
        let Stmt::Assign { name, value } = stmt else {
            continue;
        };
        if name == loop_var {
            continue;
        }
        let Expr::Binary { op, lhs, rhs } = value else {
            continue;
        };
        if !matches!(op, BinOp::Add | BinOp::Mul) {
            continue;
        }
        let other = match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(v), e) if v == name => e,
            (e, Expr::Var(v)) if v == name => e,
            _ => continue,
        };
        if other.references_var(name) || other.contains_call() {
            continue;
        }
        let Some(ty) = lookup_ty(scopes, name) else {
            continue;
        };
        candidates.push(Reduction {
            position,
            name: name.clone(),
            op: *op,
            ty,
        });
    }
    // The accumulator must not appear anywhere else in the body.
    candidates.retain(|r| {
        body.stmts
            .iter()
            .enumerate()
            .all(|(position, stmt)| position == r.position || !stmt_references_var(stmt, &r.name))
    });
    // And must be unique (a variable reduced in two statements is carried).
    let mut unique: Vec<Reduction> = Vec::new();
    for r in candidates {
        if unique.iter().any(|u| u.name == r.name) {
            unique.retain(|u| u.name != r.name);
        } else {
            unique.push(r);
        }
    }
    unique
}

fn lookup_ty(scopes: &[HashMap<String, Ty>], name: &str) -> Option<Ty> {
    scopes.iter().rev().find_map(|s| s.get(name).copied())
}

fn retarget_reduction(stmt: &Stmt, from: &str, to: &str) -> Stmt {
    let Stmt::Assign { name, value } = stmt else {
        unreachable!("reduction positions hold assignments");
    };
    debug_assert_eq!(name, from);
    Stmt::Assign {
        name: to.to_string(),
        value: value.substitute_var(from, &Expr::Var(to.to_string())),
    }
}

fn block_has_loop(block: &Block) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::For { .. } | Stmt::While { .. } => true,
        Stmt::If {
            then_blk, else_blk, ..
        } => block_has_loop(then_blk) || else_blk.as_ref().is_some_and(block_has_loop),
        _ => false,
    })
}

fn block_has_return(block: &Block) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Return(_) => true,
        Stmt::If {
            then_blk, else_blk, ..
        } => block_has_return(then_blk) || else_blk.as_ref().is_some_and(block_has_return),
        Stmt::For { body, .. } | Stmt::While { body, .. } => block_has_return(body),
        _ => false,
    })
}

fn block_writes_var(block: &Block, name: &str) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Assign { name: n, .. } => n == name,
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            block_writes_var(then_blk, name)
                || else_blk.as_ref().is_some_and(|b| block_writes_var(b, name))
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => block_writes_var(body, name),
        _ => false,
    })
}

fn block_declares(block: &Block, name: &str) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Let { name: n, .. } => n == name,
        Stmt::For { var, body, .. } => var == name || block_declares(body, name),
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            block_declares(then_blk, name)
                || else_blk.as_ref().is_some_and(|b| block_declares(b, name))
        }
        Stmt::While { body, .. } => block_declares(body, name),
        _ => false,
    })
}

fn stmt_references_var(stmt: &Stmt, name: &str) -> bool {
    match stmt {
        Stmt::Let { init, .. } => init.references_var(name),
        Stmt::Assign { name: n, value } => n == name || value.references_var(name),
        Stmt::AssignElem { index, value, .. } => {
            index.references_var(name) || value.references_var(name)
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            cond.references_var(name)
                || then_blk.stmts.iter().any(|s| stmt_references_var(s, name))
                || else_blk
                    .as_ref()
                    .is_some_and(|b| b.stmts.iter().any(|s| stmt_references_var(s, name)))
        }
        Stmt::While { cond, body } => {
            cond.references_var(name) || body.stmts.iter().any(|s| stmt_references_var(s, name))
        }
        Stmt::For {
            var,
            init,
            cond,
            body,
            ..
        } => {
            init.references_var(name)
                || (var != name
                    && (cond.references_var(name)
                        || body.stmts.iter().any(|s| stmt_references_var(s, name))))
        }
        Stmt::Return(Some(e)) => e.references_var(name),
        Stmt::Return(None) => false,
        Stmt::ExprStmt(e) => e.references_var(name),
    }
}

fn subst_stmt(stmt: &Stmt, name: &str, replacement: &Expr) -> Stmt {
    match stmt {
        Stmt::Let { name: n, ty, init } => Stmt::Let {
            name: n.clone(),
            ty: *ty,
            init: init.substitute_var(name, replacement),
        },
        Stmt::Assign { name: n, value } => Stmt::Assign {
            name: n.clone(),
            value: value.substitute_var(name, replacement),
        },
        Stmt::AssignElem { arr, index, value } => Stmt::AssignElem {
            arr: arr.clone(),
            index: index.substitute_var(name, replacement),
            value: value.substitute_var(name, replacement),
        },
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => Stmt::If {
            cond: cond.substitute_var(name, replacement),
            then_blk: subst_block(then_blk, name, replacement),
            else_blk: else_blk.as_ref().map(|b| subst_block(b, name, replacement)),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.substitute_var(name, replacement),
            body: subst_block(body, name, replacement),
        },
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            let init = init.substitute_var(name, replacement);
            if var == name {
                // Shadowed inside.
                Stmt::For {
                    var: var.clone(),
                    init,
                    cond: cond.clone(),
                    step: *step,
                    body: body.clone(),
                }
            } else {
                Stmt::For {
                    var: var.clone(),
                    init,
                    cond: cond.substitute_var(name, replacement),
                    step: *step,
                    body: subst_block(body, name, replacement),
                }
            }
        }
        Stmt::Return(v) => Stmt::Return(v.as_ref().map(|e| e.substitute_var(name, replacement))),
        Stmt::ExprStmt(e) => Stmt::ExprStmt(e.substitute_var(name, replacement)),
    }
}

fn subst_block(block: &Block, name: &str, replacement: &Expr) -> Block {
    Block {
        stmts: block
            .stmts
            .iter()
            .map(|s| subst_stmt(s, name, replacement))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        let m = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&m).unwrap();
        m
    }

    const SUM_SRC: &str = "global arr a[100];
        fn main() -> int {
            var s = 0;
            for (i = 0; i < 100; i = i + 1) { s = s + a[i]; }
            return s;
        }";

    #[test]
    fn naive_unroll_duplicates_body() {
        let mut module = parse(SUM_SRC);
        assert_eq!(unroll_loops(&mut module, UnrollOptions::naive(4)), 1);
        // The For is replaced: Let + main While + remainder While.
        let stmts = &module.funcs[0].body.stmts;
        let whiles = stmts
            .iter()
            .filter(|s| matches!(s, Stmt::While { .. }))
            .count();
        assert_eq!(whiles, 2);
        // Naive copies interleave induction updates: 4 copies + 4 updates.
        let Some(Stmt::While { body, .. }) = stmts.iter().find(|s| matches!(s, Stmt::While { .. }))
        else {
            panic!()
        };
        assert_eq!(body.stmts.len(), 8);
    }

    #[test]
    fn careful_unroll_creates_accumulators() {
        let mut module = parse(SUM_SRC);
        assert_eq!(unroll_loops(&mut module, UnrollOptions::careful(4)), 1);
        let stmts = &module.funcs[0].body.stmts;
        let lets = stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Let { name, .. } if name.contains("__acc")))
            .count();
        assert_eq!(lets, 3); // copies 1..4
                             // Combining assignment exists.
        assert!(stmts.iter().any(
            |s| matches!(s, Stmt::Assign { name, value: Expr::Binary { .. } } if name == "s")
        ));
    }

    #[test]
    fn careful_copies_share_induction_base() {
        let mut module = parse(
            "global arr a[100];
             fn main() { for (i = 0; i < 100; i = i + 1) { a[i] = i; } }",
        );
        unroll_loops(&mut module, UnrollOptions::careful(2));
        let Some(Stmt::While { body, .. }) = module.funcs[0]
            .body
            .stmts
            .iter()
            .find(|s| matches!(s, Stmt::While { .. }))
        else {
            panic!()
        };
        // Two copies then one induction update.
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(&body.stmts[2], Stmt::Assign { .. }));
    }

    #[test]
    fn unrolled_sum_is_semantically_equal() {
        // Compare by interpretation-through-lowering in integration tests;
        // here, structurally: remainder loop exists for non-divisible trips.
        let mut module = parse(
            "global arr a[10];
             fn main() -> int {
                 var s = 0;
                 for (i = 0; i < 10; i = i + 3) { s = s + a[i]; }
                 return s;
             }",
        );
        assert_eq!(unroll_loops(&mut module, UnrollOptions::careful(4)), 1);
        // Still lowers and validates.
        let ir = supersym_ir::lower(&module).unwrap();
        ir.validate().unwrap();
    }

    #[test]
    fn non_canonical_loops_skipped() {
        // Condition not in `i REL bound` shape.
        let mut module = parse(
            "fn main() -> int {
                 var s = 0;
                 for (i = 0; s < 10; i = i + 1) { s = s + i; }
                 return s;
             }",
        );
        assert_eq!(unroll_loops(&mut module, UnrollOptions::naive(4)), 0);
    }

    #[test]
    fn loops_with_calls_in_bound_skipped() {
        let mut module = parse(
            "fn n() -> int { return 10; }
             fn main() -> int {
                 var s = 0;
                 for (i = 0; i < n(); i = i + 1) { s = s + i; }
                 return s;
             }",
        );
        assert_eq!(unroll_loops(&mut module, UnrollOptions::naive(4)), 0);
    }

    #[test]
    fn outer_loops_not_unrolled() {
        let mut module = parse(
            "global arr a[64];
             fn main() {
                 for (i = 0; i < 8; i = i + 1) {
                     for (j = 0; j < 8; j = j + 1) { a[i * 8 + j] = j; }
                 }
             }",
        );
        // Only the inner loop unrolls.
        assert_eq!(unroll_loops(&mut module, UnrollOptions::careful(2)), 1);
        let outer = module.funcs[0]
            .body
            .stmts
            .iter()
            .find(|s| matches!(s, Stmt::For { .. }));
        assert!(outer.is_some(), "outer for survives");
    }

    #[test]
    fn negative_step_unrolls() {
        let mut module = parse(
            "global arr a[100];
             fn main() -> int {
                 var s = 0;
                 for (i = 99; i > 0; i = i - 1) { s = s + a[i]; }
                 return s;
             }",
        );
        assert_eq!(unroll_loops(&mut module, UnrollOptions::careful(4)), 1);
        let ir = supersym_ir::lower(&module).unwrap();
        ir.validate().unwrap();
    }

    #[test]
    fn multiplicative_reduction_recognized() {
        let mut module = parse(
            "fn main() -> float {
                 fvar p = 1.0;
                 for (i = 0; i < 16; i = i + 1) { p = p * 1.01; }
                 return p;
             }",
        );
        assert_eq!(unroll_loops(&mut module, UnrollOptions::careful(4)), 1);
        let lets = module.funcs[0]
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Let { name, init, .. } if name.contains("__acc") => Some(init.clone()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(lets.len(), 3);
        assert!(lets
            .iter()
            .all(|e| matches!(e, Expr::FloatLit(v) if *v == 1.0)));
    }

    #[test]
    fn reduction_used_elsewhere_not_renamed() {
        let mut module = parse(
            "global arr a[100]; global arr b[100];
             fn main() -> int {
                 var s = 0;
                 for (i = 0; i < 100; i = i + 1) { s = s + a[i]; b[i] = s; }
                 return s;
             }",
        );
        unroll_loops(&mut module, UnrollOptions::careful(4));
        // s is observed by b[i] = s each iteration: it is carried, not a
        // reduction; no accumulators may be created.
        let accs = module.funcs[0]
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Let { name, .. } if name.contains("__acc")))
            .count();
        assert_eq!(accs, 0);
    }
}
