//! Local value numbering: constant folding, algebraic simplification,
//! common-subexpression elimination, copy propagation and store-to-load
//! forwarding — all within single basic blocks (the paper's "intra-block
//! optimizations").
//!
//! Algebraic simplification is *data-driven*: instead of hard-coded
//! identities, the pass consults the machine-verified rule table from
//! `supersym-rules` (every rule proven by a sound certifier before it
//! ships). The only residual built-in is `x / 1 == x` — division sits
//! outside the synthesis grammar, so its identity keeps a hand-written
//! (and separately tested) special case here.

use std::collections::HashMap;
use supersym_ir::{CmpOp, FloatBinOp, GlobalId, Inst, IntBinOp, Module, Terminator, VReg, VarRef};
use supersym_rules::{default_table, Rewrite, RuleTable, SimplifyCtx};

/// A compile-time constant (floats compared by bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Const {
    Int(i64),
    Float(u64),
}

/// CSE keys over value numbers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(Const),
    IntBin(IntBinOp, usize, usize),
    FloatBin(FloatBinOp, usize, usize),
    FloatCmp(CmpOp, usize, usize),
    Cast(bool, usize), // true = to float
}

#[derive(Default)]
struct BlockState {
    /// vreg -> value number.
    vn: HashMap<VReg, usize>,
    /// value number -> known constant.
    consts: HashMap<usize, Const>,
    /// value number -> a vreg holding it, still live in this block.
    repr: HashMap<usize, VReg>,
    /// expression -> value number.
    exprs: HashMap<Key, usize>,
    /// variable -> value number of its current contents.
    var_val: HashMap<VarRef, usize>,
    /// (array, index-vn) -> value number of the element.
    elem_val: HashMap<(GlobalId, usize), usize>,
    /// vreg replacement map (old -> representative).
    replace: HashMap<VReg, VReg>,
    /// value number -> the integer expression it names (reverse of
    /// `exprs`, integer ops only): what the rule matcher walks to match
    /// nested patterns.
    int_expr: HashMap<usize, (IntBinOp, usize, usize)>,
    next_vn: usize,
}

impl SimplifyCtx for BlockState {
    fn const_of(&self, vn: usize) -> Option<i64> {
        match self.consts.get(&vn) {
            Some(&Const::Int(v)) => Some(v),
            _ => None,
        }
    }

    fn expr_of(&self, vn: usize) -> Option<(IntBinOp, usize, usize)> {
        self.int_expr.get(&vn).copied()
    }
}

impl BlockState {
    fn fresh_vn(&mut self) -> usize {
        self.next_vn += 1;
        self.next_vn - 1
    }

    fn vn_of(&mut self, vreg: VReg) -> usize {
        if let Some(&vn) = self.vn.get(&vreg) {
            vn
        } else {
            let vn = self.fresh_vn();
            self.vn.insert(vreg, vn);
            self.repr.entry(vn).or_insert(vreg);
            vn
        }
    }

    fn resolve(&self, vreg: VReg) -> VReg {
        *self.replace.get(&vreg).unwrap_or(&vreg)
    }

    /// Records that `dst` holds value `vn`; if a representative already
    /// exists the instruction is redundant and `dst` is aliased to it.
    /// Returns `true` when the defining instruction should be kept.
    fn define(&mut self, dst: VReg, vn: usize) -> bool {
        if let Some(&rep) = self.repr.get(&vn) {
            self.replace.insert(dst, rep);
            self.vn.insert(dst, vn);
            false
        } else {
            self.repr.insert(vn, dst);
            self.vn.insert(dst, vn);
            true
        }
    }
}

/// Runs local value numbering over every block of every function, with
/// the default (checked-in, machine-verified) rule table.
/// Returns `true` if anything changed.
pub fn local_value_numbering(module: &mut Module) -> bool {
    local_value_numbering_with(module, default_table())
}

/// [`local_value_numbering`] with an explicit rule table — pass
/// [`RuleTable::empty`](supersym_rules::RuleTable::empty) to measure the
/// optimizer without algebraic rules.
pub fn local_value_numbering_with(module: &mut Module, table: &RuleTable) -> bool {
    let mut changed = false;
    for func in &mut module.funcs {
        for block in &mut func.blocks {
            let mut state = BlockState::default();
            let original_len = block.insts.len();
            let mut kept: Vec<Inst> = Vec::with_capacity(original_len);
            for inst in block.insts.drain(..) {
                if let Some(new_inst) = process(inst, &mut state, table) {
                    kept.push(new_inst);
                }
            }
            // Rewrite the terminator's operand.
            match &mut block.term {
                Terminator::Branch { cond, .. } => {
                    let resolved = state.resolve(*cond);
                    if resolved != *cond {
                        *cond = resolved;
                    }
                    // Branch folding on constant conditions.
                    if let Some(&vn) = state.vn.get(cond) {
                        if let Some(Const::Int(value)) = state.consts.get(&vn) {
                            let Terminator::Branch {
                                then_bb, else_bb, ..
                            } = block.term
                            else {
                                unreachable!()
                            };
                            block.term =
                                Terminator::Jump(if *value != 0 { then_bb } else { else_bb });
                            changed = true;
                        }
                    }
                }
                Terminator::Return(Some(vreg)) => {
                    *vreg = state.resolve(*vreg);
                }
                _ => {}
            }
            if kept.len() != original_len || !state.replace.is_empty() {
                changed = true;
            }
            block.insts = kept;
        }
    }
    changed
}

fn process(inst: Inst, state: &mut BlockState, table: &RuleTable) -> Option<Inst> {
    match inst {
        Inst::ConstInt { dst, value } => {
            let key = Key::Const(Const::Int(value));
            let vn = lookup_or_insert(state, key, Some(Const::Int(value)));
            state
                .define(dst, vn)
                .then_some(Inst::ConstInt { dst, value })
        }
        Inst::ConstFloat { dst, value } => {
            let c = Const::Float(value.to_bits());
            let key = Key::Const(c);
            let vn = lookup_or_insert(state, key, Some(c));
            state
                .define(dst, vn)
                .then_some(Inst::ConstFloat { dst, value })
        }
        Inst::IntBin { op, dst, lhs, rhs } => {
            let lhs = state.resolve(lhs);
            let rhs = state.resolve(rhs);
            let (mut a, mut b) = (state.vn_of(lhs), state.vn_of(rhs));
            let (mut lhs, mut rhs) = (lhs, rhs);
            if op.is_commutative() && b < a {
                std::mem::swap(&mut a, &mut b);
                std::mem::swap(&mut lhs, &mut rhs);
            }
            // Constant folding.
            if let (Some(&Const::Int(x)), Some(&Const::Int(y))) =
                (state.consts.get(&a), state.consts.get(&b))
            {
                let value = eval_int(op, x, y);
                return process(Inst::ConstInt { dst, value }, state, table);
            }
            // Algebraic simplifications.
            if let Some(simplified) = simplify_int(table, op, a, b, state) {
                return match simplified {
                    Simplified::Vn(vn) => {
                        if let Some(&rep) = state.repr.get(&vn) {
                            state.replace.insert(dst, rep);
                            state.vn.insert(dst, vn);
                            None
                        } else {
                            // No representative vreg: keep the instruction.
                            let key = Key::IntBin(op, a, b);
                            let vn = lookup_or_insert(state, key, None);
                            state
                                .define(dst, vn)
                                .then_some(Inst::IntBin { op, dst, lhs, rhs })
                        }
                    }
                    Simplified::Const(value) => {
                        process(Inst::ConstInt { dst, value }, state, table)
                    }
                };
            }
            let key = Key::IntBin(op, a, b);
            let vn = lookup_or_insert(state, key, None);
            state
                .define(dst, vn)
                .then_some(Inst::IntBin { op, dst, lhs, rhs })
        }
        Inst::FloatBin { op, dst, lhs, rhs } => {
            let lhs = state.resolve(lhs);
            let rhs = state.resolve(rhs);
            let (mut a, mut b) = (state.vn_of(lhs), state.vn_of(rhs));
            let (mut lhs, mut rhs) = (lhs, rhs);
            if op.is_commutative() && b < a {
                std::mem::swap(&mut a, &mut b);
                std::mem::swap(&mut lhs, &mut rhs);
            }
            if let (Some(&Const::Float(x)), Some(&Const::Float(y))) =
                (state.consts.get(&a), state.consts.get(&b))
            {
                let (x, y) = (f64::from_bits(x), f64::from_bits(y));
                let value = match op {
                    FloatBinOp::Add => x + y,
                    FloatBinOp::Sub => x - y,
                    FloatBinOp::Mul => x * y,
                    FloatBinOp::Div => x / y,
                };
                return process(Inst::ConstFloat { dst, value }, state, table);
            }
            let key = Key::FloatBin(op, a, b);
            let vn = lookup_or_insert(state, key, None);
            state
                .define(dst, vn)
                .then_some(Inst::FloatBin { op, dst, lhs, rhs })
        }
        Inst::FloatCmp { op, dst, lhs, rhs } => {
            let lhs = state.resolve(lhs);
            let rhs = state.resolve(rhs);
            let (a, b) = (state.vn_of(lhs), state.vn_of(rhs));
            if let (Some(&Const::Float(x)), Some(&Const::Float(y))) =
                (state.consts.get(&a), state.consts.get(&b))
            {
                let (x, y) = (f64::from_bits(x), f64::from_bits(y));
                let value = i64::from(match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                });
                return process(Inst::ConstInt { dst, value }, state, table);
            }
            let key = Key::FloatCmp(op, a, b);
            let vn = lookup_or_insert(state, key, None);
            state
                .define(dst, vn)
                .then_some(Inst::FloatCmp { op, dst, lhs, rhs })
        }
        Inst::Cast { dst, src, to } => {
            let src = state.resolve(src);
            let vn_src = state.vn_of(src);
            let to_float = to == supersym_lang::ast::Ty::Float;
            if let Some(&c) = state.consts.get(&vn_src) {
                return match (c, to_float) {
                    (Const::Int(v), true) => process(
                        Inst::ConstFloat {
                            dst,
                            value: v as f64,
                        },
                        state,
                        table,
                    ),
                    (Const::Float(bits), false) => process(
                        Inst::ConstInt {
                            dst,
                            value: f64::from_bits(bits) as i64,
                        },
                        state,
                        table,
                    ),
                    _ => {
                        let key = Key::Cast(to_float, vn_src);
                        let vn = lookup_or_insert(state, key, None);
                        state.define(dst, vn).then_some(Inst::Cast { dst, src, to })
                    }
                };
            }
            let key = Key::Cast(to_float, vn_src);
            let vn = lookup_or_insert(state, key, None);
            state.define(dst, vn).then_some(Inst::Cast { dst, src, to })
        }
        Inst::ReadVar { dst, var } => {
            if let Some(&vn) = state.var_val.get(&var) {
                if state.repr.contains_key(&vn) {
                    let kept = state.define(dst, vn);
                    debug_assert!(!kept, "representative exists");
                    return None;
                }
            }
            let vn = state.fresh_vn();
            state.var_val.insert(var, vn);
            state.define(dst, vn);
            Some(Inst::ReadVar { dst, var })
        }
        Inst::WriteVar { var, src } => {
            let src = state.resolve(src);
            let vn = state.vn_of(src);
            if state.var_val.get(&var) == Some(&vn) {
                // The variable already holds this value: dead store.
                return None;
            }
            state.var_val.insert(var, vn);
            Some(Inst::WriteVar { var, src })
        }
        Inst::ReadElem {
            dst,
            arr,
            index,
            origin,
        } => {
            let index = state.resolve(index);
            let index_vn = state.vn_of(index);
            if let Some(&vn) = state.elem_val.get(&(arr, index_vn)) {
                if state.repr.contains_key(&vn) {
                    state.define(dst, vn);
                    return None;
                }
            }
            let vn = state.fresh_vn();
            state.elem_val.insert((arr, index_vn), vn);
            state.define(dst, vn);
            Some(Inst::ReadElem {
                dst,
                arr,
                index,
                origin,
            })
        }
        Inst::WriteElem {
            arr,
            index,
            src,
            origin,
        } => {
            let index = state.resolve(index);
            let src = state.resolve(src);
            let index_vn = state.vn_of(index);
            let src_vn = state.vn_of(src);
            // A store to arr[i] invalidates everything known about arr.
            state.elem_val.retain(|&(a, _), _| a != arr);
            state.elem_val.insert((arr, index_vn), src_vn);
            Some(Inst::WriteElem {
                arr,
                index,
                src,
                origin,
            })
        }
        Inst::Call { dst, callee, args } => {
            let args = args.into_iter().map(|a| state.resolve(a)).collect();
            // The callee may read/write any global or array element.
            state.elem_val.clear();
            state
                .var_val
                .retain(|var, _| matches!(var, VarRef::Local(_)));
            if let Some(dst) = dst {
                let vn = state.fresh_vn();
                state.define(dst, vn);
            }
            Some(Inst::Call { dst, callee, args })
        }
    }
}

fn lookup_or_insert(state: &mut BlockState, key: Key, constant: Option<Const>) -> usize {
    if let Some(&vn) = state.exprs.get(&key) {
        vn
    } else {
        let vn = state.fresh_vn();
        if let Key::IntBin(op, a, b) = key {
            state.int_expr.insert(vn, (op, a, b));
        }
        state.exprs.insert(key, vn);
        if let Some(c) = constant {
            state.consts.insert(vn, c);
        }
        vn
    }
}

enum Simplified {
    Vn(usize),
    Const(i64),
}

/// Algebraic identities on integer operations, driven by the verified
/// rule table: patterns are matched over value numbers (`a`/`b`), with
/// nested subpatterns resolved through the block's expression map. The
/// sole hand-written residual is `x / 1 == x`: division is outside the
/// synthesis grammar (no sound certifier covers it), so its identity
/// cannot ship as a table rule.
fn simplify_int(
    table: &RuleTable,
    op: IntBinOp,
    a: usize,
    b: usize,
    state: &BlockState,
) -> Option<Simplified> {
    if let Some(rewrite) = supersym_rules::simplify(table, op, a, b, state) {
        return Some(match rewrite {
            Rewrite::Operand(vn) => Simplified::Vn(vn),
            Rewrite::Const(value) => Simplified::Const(value),
        });
    }
    if op == IntBinOp::Div && state.const_of(b) == Some(1) {
        return Some(Simplified::Vn(a));
    }
    None
}

/// Integer evaluation matching the simulator's semantics exactly.
fn eval_int(op: IntBinOp, a: i64, b: i64) -> i64 {
    match op {
        IntBinOp::Add => a.wrapping_add(b),
        IntBinOp::Sub => a.wrapping_sub(b),
        IntBinOp::Mul => a.wrapping_mul(b),
        IntBinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        IntBinOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        IntBinOp::And => a & b,
        IntBinOp::Or => a | b,
        IntBinOp::Xor => a ^ b,
        IntBinOp::Shl => a.wrapping_shl(b as u32 & 63),
        IntBinOp::Shr => a.wrapping_shr(b as u32 & 63),
        IntBinOp::Cmp(cmp) => i64::from(match cmp {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }),
    }
}

/// Strength reduction: rewrites `x * 2^k` (constant operand) into
/// `x << k`, inserting the shift-amount constant. A separate pass so the
/// value-numbering state stays simple; run it between LVN rounds.
/// Returns `true` if anything changed.
pub fn strength_reduce(module: &mut Module) -> bool {
    let mut changed = false;
    for func in &mut module.funcs {
        for block_index in 0..func.blocks.len() {
            // Constant values of vregs defined in this block.
            let mut consts: HashMap<VReg, i64> = HashMap::new();
            let mut rewrites: Vec<(usize, VReg, VReg)> = Vec::new(); // (pos, lhs, mul-dst)
            for (pos, inst) in func.blocks[block_index].insts.iter().enumerate() {
                // Redefinitions (e.g. the re-reads split_live_across_calls
                // inserts) invalidate any recorded constant.
                if let Some(dst) = inst.dst() {
                    if !matches!(inst, Inst::ConstInt { .. }) {
                        consts.remove(&dst);
                    }
                }
                match inst {
                    Inst::ConstInt { dst, value } => {
                        consts.insert(*dst, *value);
                    }
                    Inst::IntBin {
                        op: IntBinOp::Mul,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        // Commuted constant operands were canonicalized to
                        // the right by LVN; check both sides anyway.
                        let candidate = match (consts.get(lhs), consts.get(rhs)) {
                            (_, Some(&c)) if c > 1 && c & (c - 1) == 0 => Some((*lhs, c)),
                            (Some(&c), _) if c > 1 && c & (c - 1) == 0 => Some((*rhs, c)),
                            _ => None,
                        };
                        if let Some((operand, _)) = candidate {
                            rewrites.push((pos, operand, *dst));
                        }
                    }
                    _ => {}
                }
            }
            // Apply in reverse so positions stay valid.
            for (pos, operand, dst) in rewrites.into_iter().rev() {
                let constant = {
                    let Inst::IntBin { lhs, rhs, .. } = &func.blocks[block_index].insts[pos] else {
                        unreachable!("recorded position holds the multiply")
                    };
                    let other = if *lhs == operand { *rhs } else { *lhs };
                    consts[&other]
                };
                let amount = func.new_vreg(supersym_lang::ast::Ty::Int);
                let shift = Inst::IntBin {
                    op: IntBinOp::Shl,
                    dst,
                    lhs: operand,
                    rhs: amount,
                };
                let block = &mut func.blocks[block_index];
                block.insts[pos] = shift;
                block.insts.insert(
                    pos,
                    Inst::ConstInt {
                        dst: amount,
                        value: constant.trailing_zeros() as i64,
                    },
                );
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepare(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        supersym_ir::lower(&ast).unwrap()
    }

    fn optimize(src: &str) -> Module {
        let mut module = prepare(src);
        crate::run_local(&mut module);
        module.validate().unwrap();
        module
    }

    fn count_insts(module: &Module) -> usize {
        module.funcs.iter().map(|f| f.inst_count()).sum()
    }

    #[test]
    fn folds_constants() {
        let module = optimize("fn main() -> int { return 2 + 3 * 4; }");
        // A single constant remains.
        assert_eq!(count_insts(&module), 1);
        assert!(module.funcs[0].blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ConstInt { value: 14, .. })));
    }

    #[test]
    fn cse_within_block() {
        let before = prepare(
            "global var g;
             fn main() -> int { return (g * 3 + 1) + (g * 3 + 1); }",
        );
        let after = optimize(
            "global var g;
             fn main() -> int { return (g * 3 + 1) + (g * 3 + 1); }",
        );
        assert!(count_insts(&after) < before.funcs[0].inst_count());
        // g*3+1 computed once: one read, one mul, two consts (3, 1), one
        // add, plus the final add = 6.
        assert_eq!(count_insts(&after), 6);
    }

    #[test]
    fn store_to_load_forwarding() {
        let module = optimize("fn main() -> int { var x = 7; return x; }");
        // x = 7; return 7 — the ReadVar is forwarded.
        let f = &module.funcs[0];
        assert!(!f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ReadVar { .. })));
    }

    #[test]
    fn array_load_forwarding() {
        let module = optimize(
            "global arr a[4];
             fn main() -> int { a[2] = 5; return a[2]; }",
        );
        let f = &module.funcs[0];
        assert!(!f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ReadElem { .. })));
    }

    #[test]
    fn array_store_invalidates_other_indices() {
        let module = optimize(
            "global arr a[4];
             fn main(int i, int j) -> int { var x = a[i]; a[j] = 0; return x + a[i]; }",
        );
        let reads = module.funcs[0].blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::ReadElem { .. }))
            .count();
        assert_eq!(reads, 2, "a[i] must be re-read after a[j] store");
    }

    #[test]
    fn calls_invalidate_globals_not_locals() {
        let module = optimize(
            "global var g;
             fn f() { g = g + 1; }
             fn main() -> int { var x = 3; var a = g; f(); return x + a + g; }",
        );
        let main = module.funcs.iter().find(|f| f.name == "main").unwrap();
        let global_reads = main.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::ReadVar {
                        var: VarRef::Global(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(global_reads, 2, "g re-read after the call");
        let local_reads = main.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::ReadVar {
                        var: VarRef::Local(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(local_reads, 0, "locals forwarded across the call");
    }

    #[test]
    fn algebraic_identities() {
        let module = optimize("fn main(int x) -> int { return (x + 0) * 1 + (x - x) + (x ^ x); }");
        // Everything folds to x: read + maybe nothing else... final add of
        // zero folds too. Expect just the parameter read.
        assert_eq!(count_insts(&module), 1);
    }

    #[test]
    fn nested_rule_simplification() {
        // `(x + y) - y => x` is a depth-2 synthesized rule: the matcher
        // walks the value-numbered expression map to match the inner add.
        let module = optimize("fn main(int x, int y) -> int { return (x + y) - y; }");
        assert_eq!(count_insts(&module), 1, "collapses to the read of x");
    }

    #[test]
    fn empty_table_disables_algebraic_rules() {
        let mut module = prepare("fn main(int x) -> int { return x + 0; }");
        local_value_numbering_with(&mut module, &RuleTable::empty());
        crate::dead_code_elimination(&mut module);
        let adds = module.funcs[0].blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::IntBin { .. }))
            .count();
        assert_eq!(adds, 1, "without rules the add survives");
    }

    #[test]
    fn division_by_one_residual_identity() {
        // Div is outside the rule grammar; its identity is the one
        // remaining hard-coded simplification.
        let module = optimize("fn main(int x) -> int { return x / 1; }");
        assert_eq!(count_insts(&module), 1);
    }

    #[test]
    fn branch_folding() {
        let module = optimize("fn main() -> int { if (1) { return 5; } return 6; }");
        assert!(matches!(
            module.funcs[0].blocks[0].term,
            Terminator::Jump(_)
        ));
    }

    #[test]
    fn redundant_writevar_removed() {
        let module = optimize("fn main() -> int { var x = 4; x = 4; x = 4; return x; }");
        let writes = module.funcs[0].blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::WriteVar { .. }))
            .count();
        assert_eq!(writes, 1);
    }

    #[test]
    fn eval_matches_simulator_semantics() {
        assert_eq!(eval_int(IntBinOp::Div, 5, 0), 0);
        assert_eq!(eval_int(IntBinOp::Rem, 5, 0), 5);
        assert_eq!(eval_int(IntBinOp::Shl, 1, 64), 1);
        assert_eq!(eval_int(IntBinOp::Cmp(CmpOp::Lt), -1, 1), 1);
    }

    #[test]
    fn strength_reduction_mul_to_shift() {
        let module = optimize(
            "global var g;
             fn main() -> int { return g * 8 + g * 3; }",
        );
        let f = &module.funcs[0];
        let shifts = f.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::IntBin {
                        op: IntBinOp::Shl,
                        ..
                    }
                )
            })
            .count();
        let muls = f.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::IntBin {
                        op: IntBinOp::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(shifts, 1, "g * 8 becomes g << 3");
        assert_eq!(muls, 1, "g * 3 stays a multiply");
    }

    #[test]
    fn float_constant_folding() {
        let module = optimize("fn main() -> float { return 1.5 * 2.0 + 0.5; }");
        assert_eq!(count_insts(&module), 1);
        assert!(module.funcs[0].blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ConstFloat { value, .. } if *value == 3.5)));
    }
}
