//! Loop-invariant code motion.
//!
//! The paper's example of a global optimization (§4.4): "to move invariant
//! code out of a loop, we just remove a large computation and replace it
//! with a reference to a single temporary. We also insert a large
//! computation before the loop."
//!
//! Invariant expression trees are moved to a preheader; their results are
//! stored into fresh compiler temporaries (locals) and re-read inside the
//! loop — preserving the block-local vreg discipline. A batch is hoisted
//! from a block only when it shrinks the loop body (moved count must exceed
//! the re-read instructions introduced), so single constants feeding loop
//! arithmetic are left alone.

use std::collections::HashSet;
use supersym_ir::{natural_loops, Block, BlockId, Inst, Module, Terminator, VReg, VarRef};

/// Runs LICM to a bounded fixed point. Returns `true` if anything moved.
pub fn loop_invariant_code_motion(module: &mut Module) -> bool {
    let mut changed = false;
    for func_index in 0..module.funcs.len() {
        for _ in 0..4 {
            if !licm_function(module, func_index) {
                break;
            }
            changed = true;
        }
    }
    changed
}

fn licm_function(module: &mut Module, func_index: usize) -> bool {
    let loops = natural_loops(&module.funcs[func_index]);
    let mut changed = false;
    for l in loops {
        if l.header == BlockId(0) {
            continue; // cannot place a preheader before the entry
        }
        changed |= hoist_loop(module, func_index, &l.header, &l.body);
    }
    changed
}

fn hoist_loop(module: &mut Module, func_index: usize, header: &BlockId, body: &[BlockId]) -> bool {
    let body_set: HashSet<BlockId> = body.iter().copied().collect();
    // Loop facts.
    let mut vars_written: HashSet<VarRef> = HashSet::new();
    let mut has_call = false;
    {
        let func = &module.funcs[func_index];
        for &block_id in body {
            for inst in &func.blocks[block_id.index()].insts {
                match inst {
                    Inst::WriteVar { var, .. } => {
                        vars_written.insert(*var);
                    }
                    Inst::Call { .. } => has_call = true,
                    _ => {}
                }
            }
        }
    }

    let is_invariant_read = |var: &VarRef| -> bool {
        !vars_written.contains(var) && (matches!(var, VarRef::Local(_)) || !has_call)
    };

    // Plan hoists per block.
    struct Plan {
        block: BlockId,
        moved: Vec<usize>,
        external: Vec<VReg>,
    }
    let mut plans: Vec<Plan> = Vec::new();
    {
        let func = &module.funcs[func_index];
        for &block_id in body {
            let block = &func.blocks[block_id.index()];
            let mut invariant: HashSet<VReg> = HashSet::new();
            let mut moved: Vec<usize> = Vec::new();
            let mut nontrivial = false;
            for (index, inst) in block.insts.iter().enumerate() {
                let inv = match inst {
                    Inst::ConstInt { .. } | Inst::ConstFloat { .. } => true,
                    Inst::ReadVar { var, .. } => is_invariant_read(var),
                    Inst::IntBin { lhs, rhs, .. }
                    | Inst::FloatBin { lhs, rhs, .. }
                    | Inst::FloatCmp { lhs, rhs, .. } => {
                        invariant.contains(lhs) && invariant.contains(rhs)
                    }
                    Inst::Cast { src, .. } => invariant.contains(src),
                    _ => false,
                };
                if inv {
                    if matches!(
                        inst,
                        Inst::IntBin { .. }
                            | Inst::FloatBin { .. }
                            | Inst::FloatCmp { .. }
                            | Inst::Cast { .. }
                    ) {
                        nontrivial = true;
                    }
                    invariant.insert(inst.dst().expect("invariant insts are pure"));
                    moved.push(index);
                }
            }
            if moved.is_empty() || !nontrivial {
                continue;
            }
            // Externally-used moved results need a temporary + re-read.
            let moved_set: HashSet<usize> = moved.iter().copied().collect();
            let mut external: Vec<VReg> = Vec::new();
            let mut seen: HashSet<VReg> = HashSet::new();
            for (index, inst) in block.insts.iter().enumerate() {
                if moved_set.contains(&index) {
                    continue;
                }
                inst.for_each_use(|v| {
                    if invariant.contains(&v) && seen.insert(v) {
                        external.push(v);
                    }
                });
            }
            if let Some(v) = block.term.used_vreg() {
                if invariant.contains(&v) && seen.insert(v) {
                    external.push(v);
                }
            }
            // Profitability: the loop body must shrink.
            if moved.len() < external.len() + 2 {
                continue;
            }
            plans.push(Plan {
                block: block_id,
                moved,
                external,
            });
        }
    }
    if plans.is_empty() {
        return false;
    }

    // Create the preheader.
    let preheader = {
        let func = &mut module.funcs[func_index];
        let preheader = BlockId(func.blocks.len() as u32);
        func.blocks.push(Block::empty(Terminator::Jump(*header)));
        for (index, block) in func.blocks.iter_mut().enumerate() {
            let from = BlockId(index as u32);
            if from == preheader || body_set.contains(&from) {
                continue;
            }
            match &mut block.term {
                Terminator::Jump(b) if b == header => *b = preheader,
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    if then_bb == header {
                        *then_bb = preheader;
                    }
                    if else_bb == header {
                        *else_bb = preheader;
                    }
                }
                _ => {}
            }
        }
        preheader
    };

    // Execute the plans.
    for plan in plans {
        let func = &mut module.funcs[func_index];
        let moved_set: HashSet<usize> = plan.moved.iter().copied().collect();
        let block = &mut func.blocks[plan.block.index()];
        let mut hoisted: Vec<Inst> = Vec::with_capacity(plan.moved.len());
        let mut remaining: Vec<Inst> = Vec::with_capacity(block.insts.len() - plan.moved.len());
        for (index, inst) in block.insts.drain(..).enumerate() {
            if moved_set.contains(&index) {
                hoisted.push(inst);
            } else {
                remaining.push(inst);
            }
        }
        block.insts = remaining;
        // Temporaries for externally-used results.
        let mut reread: Vec<Inst> = Vec::new();
        let mut stores: Vec<Inst> = Vec::new();
        for &vreg in &plan.external {
            let ty = func.vreg_ty(vreg);
            let tmp = func.new_local(format!("$licm{}", vreg.0), ty);
            stores.push(Inst::WriteVar {
                var: VarRef::Local(tmp),
                src: vreg,
            });
            reread.push(Inst::ReadVar {
                dst: vreg,
                var: VarRef::Local(tmp),
            });
        }
        let block = &mut func.blocks[plan.block.index()];
        for (index, inst) in reread.into_iter().enumerate() {
            block.insts.insert(index, inst);
        }
        let pre = &mut func.blocks[preheader.index()];
        pre.insts.extend(hoisted);
        pre.insts.extend(stores);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dead_code_elimination, local_value_numbering};

    fn prepare(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        let mut m = supersym_ir::lower(&ast).unwrap();
        local_value_numbering(&mut m);
        dead_code_elimination(&mut m);
        m
    }

    /// Sum of instructions inside loop bodies.
    fn loop_inst_count(module: &Module) -> usize {
        let func = &module.funcs[module.entry];
        natural_loops(func)
            .iter()
            .flat_map(|l| &l.body)
            .map(|b| func.blocks[b.index()].insts.len())
            .sum()
    }

    #[test]
    fn hoists_invariant_expression() {
        let src = "global var a; global var b; global arr out[64];
             fn main() {
                 for (i = 0; i < 64; i = i + 1) {
                     out[i] = a * 3 + b * 5 + a * b;
                 }
             }";
        let mut module = prepare(src);
        let before = loop_inst_count(&module);
        assert!(loop_invariant_code_motion(&mut module));
        local_value_numbering(&mut module);
        dead_code_elimination(&mut module);
        module.validate().unwrap();
        let after = loop_inst_count(&module);
        assert!(
            after < before,
            "loop body should shrink: {before} -> {after}"
        );
    }

    #[test]
    fn does_not_hoist_variant_code() {
        let src = "global arr out[64];
             fn main() {
                 for (i = 0; i < 64; i = i + 1) { out[i] = i * 2; }
             }";
        let mut module = prepare(src);
        let before = loop_inst_count(&module);
        loop_invariant_code_motion(&mut module);
        module.validate().unwrap();
        // i * 2 depends on i: nothing to hoist; body unchanged (no
        // profitable batch).
        assert_eq!(loop_inst_count(&module), before);
    }

    #[test]
    fn call_in_loop_blocks_global_hoisting() {
        let src = "global var g;
             fn bump() { g = g + 1; }
             fn main() -> int {
                 var s = 0;
                 for (i = 0; i < 8; i = i + 1) { s = s + g * 7 + g * 11; bump(); }
                 return s;
             }";
        let mut module = prepare(src);
        let before = loop_inst_count(&module);
        loop_invariant_code_motion(&mut module);
        module.validate().unwrap();
        assert_eq!(
            loop_inst_count(&module),
            before,
            "g changes across calls; nothing may move"
        );
    }

    #[test]
    fn semantics_preserved() {
        // Execute before/after through the full pipeline lives in
        // integration tests; here we just validate IR structure.
        let src = "global var a = 3;
             fn main() -> int {
                 var s = 0;
                 for (i = 0; i < 10; i = i + 1) { s = s + a * a + a * 2; }
                 return s;
             }";
        let mut module = prepare(src);
        loop_invariant_code_motion(&mut module);
        local_value_numbering(&mut module);
        dead_code_elimination(&mut module);
        module.validate().unwrap();
    }

    #[test]
    fn nested_loops_hoist_outward() {
        let src = "global var a; global var b; global arr out[16];
             fn main() {
                 for (i = 0; i < 4; i = i + 1) {
                     for (j = 0; j < 4; j = j + 1) {
                         out[i * 4 + j] = a * b + a * 7 + b * 9;
                     }
                 }
             }";
        let mut module = prepare(src);
        assert!(loop_invariant_code_motion(&mut module));
        module.validate().unwrap();
    }
}
