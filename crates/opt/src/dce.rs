//! Dead-code and dead-store elimination.

use std::collections::HashSet;
use supersym_ir::{var_liveness, BlockId, Inst, Module, Terminator, VarRef};

/// Removes pure instructions whose results are unused (per block — vregs are
/// block-local) and unreachable blocks. Returns `true` if anything changed.
pub fn dead_code_elimination(module: &mut Module) -> bool {
    let mut changed = false;
    for func in &mut module.funcs {
        for block in &mut func.blocks {
            // Backward sweep: a pure inst is dead if its dst is never used
            // later in the block (including the terminator).
            let mut used: HashSet<supersym_ir::VReg> = HashSet::new();
            if let Some(v) = block.term.used_vreg() {
                used.insert(v);
            }
            let mut keep = vec![true; block.insts.len()];
            for (index, inst) in block.insts.iter().enumerate().rev() {
                let dead = inst.is_pure() && inst.dst().is_some_and(|d| !used.contains(&d));
                if dead {
                    keep[index] = false;
                } else {
                    inst.for_each_use(|v| {
                        used.insert(v);
                    });
                }
            }
            if keep.iter().any(|k| !k) {
                changed = true;
                let mut iter = keep.iter();
                block
                    .insts
                    .retain(|_| *iter.next().expect("keep mask matches"));
            }
        }
    }
    changed |= remove_unreachable_blocks(module);
    changed
}

/// Removes blocks unreachable from each function's entry, compacting block
/// ids. Returns `true` if anything was removed.
pub fn remove_unreachable_blocks(module: &mut Module) -> bool {
    let mut changed = false;
    for func in &mut module.funcs {
        let n = func.blocks.len();
        let mut reachable = vec![false; n];
        let mut work = vec![BlockId(0)];
        reachable[0] = true;
        while let Some(block) = work.pop() {
            for succ in func.blocks[block.index()].term.successors() {
                if !reachable[succ.index()] {
                    reachable[succ.index()] = true;
                    work.push(succ);
                }
            }
        }
        if reachable.iter().all(|&r| r) {
            continue;
        }
        changed = true;
        // Compact: old index -> new index.
        let mut remap = vec![u32::MAX; n];
        let mut next = 0_u32;
        for (index, &r) in reachable.iter().enumerate() {
            if r {
                remap[index] = next;
                next += 1;
            }
        }
        let old_blocks = std::mem::take(&mut func.blocks);
        for (index, mut block) in old_blocks.into_iter().enumerate() {
            if !reachable[index] {
                continue;
            }
            match &mut block.term {
                Terminator::Jump(b) => *b = BlockId(remap[b.index()]),
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    *then_bb = BlockId(remap[then_bb.index()]);
                    *else_bb = BlockId(remap[else_bb.index()]);
                }
                Terminator::Return(_) => {}
            }
            func.blocks.push(block);
        }
    }
    changed
}

/// Liveness-driven dead-store elimination: removes `WriteVar`s to *local*
/// variables that are overwritten before any read (within a block) or not
/// live out of their block. Global scalars are never touched (another
/// function may read them). Returns `true` if anything changed.
pub fn dead_store_elimination(module: &mut Module) -> bool {
    let mut changed = false;
    for func_index in 0..module.funcs.len() {
        let liveness = var_liveness(module, &module.funcs[func_index]);
        let func = &mut module.funcs[func_index];
        for (block_index, block) in func.blocks.iter_mut().enumerate() {
            // Backward: a store to a local is dead if the local is not read
            // later in the block and not live-out.
            let mut read_later: HashSet<VarRef> = HashSet::new();
            let mut keep = vec![true; block.insts.len()];
            for (index, inst) in block.insts.iter().enumerate().rev() {
                match inst {
                    Inst::WriteVar {
                        var: var @ VarRef::Local(_),
                        ..
                    } => {
                        if !read_later.contains(var)
                            && !liveness.is_live_out(BlockId(block_index as u32), *var)
                        {
                            keep[index] = false;
                        } else {
                            // This write satisfies the later reads; earlier
                            // writes (with no read in between) are dead.
                            read_later.remove(var);
                        }
                    }
                    Inst::ReadVar { var, .. } => {
                        read_later.insert(*var);
                    }
                    _ => {}
                }
            }
            if keep.iter().any(|k| !k) {
                changed = true;
                let mut iter = keep.iter();
                block
                    .insts
                    .retain(|_| *iter.next().expect("keep mask matches"));
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lvn::local_value_numbering;

    fn prepare(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        supersym_ir::lower(&ast).unwrap()
    }

    #[test]
    fn removes_unused_pure_insts() {
        let mut module = prepare("fn main() -> int { var x = 1 + 2; return 5; }");
        local_value_numbering(&mut module);
        // The write to x stays (DSE's job), but with DSE the chain dies.
        dead_store_elimination(&mut module);
        dead_code_elimination(&mut module);
        module.validate().unwrap();
        let main = &module.funcs[0];
        assert_eq!(main.inst_count(), 1); // just `const 5`
    }

    #[test]
    fn removes_unreachable_blocks() {
        let mut module = prepare("fn main() -> int { return 1; return 2; }");
        let before = module.funcs[0].blocks.len();
        assert!(dead_code_elimination(&mut module));
        module.validate().unwrap();
        assert!(module.funcs[0].blocks.len() < before);
    }

    #[test]
    fn branch_fold_then_unreachable_removal() {
        let mut module = prepare("fn main() -> int { if (0) { return 1; } else { return 2; } }");
        local_value_numbering(&mut module);
        dead_code_elimination(&mut module);
        module.validate().unwrap();
        // Entry jumps straight to the else arm; the then arm is gone.
        let f = &module.funcs[0];
        assert!(f.blocks.len() <= 3);
    }

    #[test]
    fn keeps_live_stores() {
        let mut module = prepare(
            "global var g;
             fn main() -> int { var x = 3; g = x; return g; }",
        );
        local_value_numbering(&mut module);
        dead_store_elimination(&mut module);
        dead_code_elimination(&mut module);
        module.validate().unwrap();
        let f = &module.funcs[0];
        assert!(f.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::WriteVar {
                var: VarRef::Global(_),
                ..
            }
        )));
    }

    #[test]
    fn dse_removes_overwritten_local() {
        let mut module = prepare(
            "global var g;
             fn main() -> int { var x = g; x = g + 1; return x; }",
        );
        // Without LVN (which might forward), DSE alone should kill the
        // first write: overwritten with no read between.
        dead_store_elimination(&mut module);
        module.validate().unwrap();
        let writes = module.funcs[0].blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::WriteVar { .. }))
            .count();
        assert_eq!(writes, 1);
    }

    #[test]
    fn dse_respects_loop_liveness() {
        let mut module = prepare(
            "fn main() -> int {
                 var s = 0;
                 for (i = 0; i < 3; i = i + 1) { s = s + i; }
                 return s;
             }",
        );
        dead_store_elimination(&mut module);
        module.validate().unwrap();
        // The s accumulator writes must all survive.
        let writes: usize = module.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::WriteVar { .. }))
            .count();
        assert!(writes >= 3); // s init, s update, i init/update
    }
}
