//! Reassociation: rebalancing long chains of associative operations.
//!
//! §4.4: "In careful unrolling, we reassociate long strings of additions or
//! multiplications to maximize the parallelism." A left-leaning chain
//! `((((a+b)+c)+d)+e)` has depth 4; the balanced form `((a+b)+(c+d))+e` has
//! depth 3 and exposes independent adds to the scheduler.
//!
//! Float reassociation changes rounding and is therefore only run when the
//! pipeline explicitly asks for it (the paper's "requires us to use
//! knowledge of operator associativity").
//!
//! *Which* integer operators may be chained is not hard-coded: an operator
//! qualifies exactly when the verified rule table proves it both
//! commutative and associative (`prop <op> comm` + `prop <op> assoc`),
//! which extends the pass beyond `+`/`*` to `&`, `|` and `^` — and keeps
//! `-`, `<<`, `>>` out, because no certifier can prove them chainable.
//! Float chains stay a policy decision (add/mul only), since float
//! associativity is genuinely false and is opted into, not proven.

use std::collections::HashMap;
use supersym_ir::{FloatBinOp, Inst, IntBinOp, Module, VReg};
use supersym_rules::{default_table, RuleTable};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainOp {
    Int(IntBinOp),
    Float(FloatBinOp),
}

fn chain_op(inst: &Inst, table: &RuleTable) -> Option<(ChainOp, VReg, VReg, VReg)> {
    match inst {
        Inst::IntBin { op, dst, lhs, rhs } if table.chainable(*op) => {
            Some((ChainOp::Int(*op), *dst, *lhs, *rhs))
        }
        Inst::FloatBin {
            op: op @ (FloatBinOp::Add | FloatBinOp::Mul),
            dst,
            lhs,
            rhs,
        } => Some((ChainOp::Float(*op), *dst, *lhs, *rhs)),
        _ => None,
    }
}

fn make_inst(op: ChainOp, dst: VReg, lhs: VReg, rhs: VReg) -> Inst {
    match op {
        ChainOp::Int(op) => Inst::IntBin { op, dst, lhs, rhs },
        ChainOp::Float(op) => Inst::FloatBin { op, dst, lhs, rhs },
    }
}

/// Rebalances associative chains of four or more leaves in every block,
/// with chainable operators taken from the default (verified) rule table.
/// Returns `true` if anything changed.
pub fn reassociate(module: &mut Module) -> bool {
    reassociate_with(module, default_table())
}

/// [`reassociate`] with an explicit rule table deciding which integer
/// operators are chainable.
pub fn reassociate_with(module: &mut Module, table: &RuleTable) -> bool {
    let mut changed = false;
    for func in &mut module.funcs {
        for block_index in 0..func.blocks.len() {
            // Bounded retry: each rewrite may expose another chain.
            for _ in 0..8 {
                if !reassociate_block(func, block_index, table) {
                    break;
                }
                changed = true;
            }
        }
    }
    changed
}

fn reassociate_block(
    func: &mut supersym_ir::Function,
    block_index: usize,
    table: &RuleTable,
) -> bool {
    let block = &func.blocks[block_index];
    // Use counts of vregs within the block (including the terminator).
    let mut uses: HashMap<VReg, usize> = HashMap::new();
    for inst in &block.insts {
        inst.for_each_use(|v| *uses.entry(v).or_insert(0) += 1);
    }
    if let Some(v) = block.term.used_vreg() {
        *uses.entry(v).or_insert(0) += 1;
    }
    // Positions of defining instructions.
    let mut def_pos: HashMap<VReg, usize> = HashMap::new();
    for (index, inst) in block.insts.iter().enumerate() {
        if let Some(dst) = inst.dst() {
            def_pos.insert(dst, index);
        }
    }

    // Find a maximal chain root.
    for (index, inst) in block.insts.iter().enumerate().rev() {
        let Some((op, dst, _, _)) = chain_op(inst, table) else {
            continue;
        };
        // Maximal: dst is not consumed (exactly once) by a same-op inst.
        if uses.get(&dst) == Some(&1) {
            let consumer = block.insts.iter().find(|other| {
                let mut found = false;
                other.for_each_use(|v| found |= v == dst);
                found
            });
            if let Some(consumer) = consumer {
                if chain_op(consumer, table).is_some_and(|(cop, _, _, _)| cop == op) {
                    continue;
                }
            }
        }
        // Expand the chain: an operand joins the chain when it is defined in
        // this block by a same-op inst and used exactly once.
        let mut leaves: Vec<VReg> = Vec::new();
        let mut interior: Vec<usize> = Vec::new();
        let mut stack = vec![(index, false)];
        while let Some((pos, _)) = stack.pop() {
            let (cop, _, lhs, rhs) = chain_op(&block.insts[pos], table).expect("chain member");
            debug_assert_eq!(cop, op);
            for operand in [lhs, rhs] {
                let expandable = def_pos.get(&operand).is_some_and(|&p| {
                    uses.get(&operand) == Some(&1)
                        && chain_op(&block.insts[p], table).is_some_and(|(o, _, _, _)| o == op)
                });
                if expandable {
                    let p = def_pos[&operand];
                    interior.push(p);
                    stack.push((p, false));
                } else {
                    leaves.push(operand);
                }
            }
        }
        if leaves.len() < 4 {
            continue;
        }
        // Sort leaves by definition position so the rebuilt tree pairs
        // early-available values first (and stays valid: all leaves are
        // defined before `index`, where the new instructions go).
        leaves.sort_by_key(|v| def_pos.get(v).copied().unwrap_or(0));
        let ty = func.vreg_ty(dst);
        // Build the balanced reduction.
        let mut new_insts: Vec<Inst> = Vec::new();
        let mut level: Vec<VReg> = leaves;
        while level.len() > 2 {
            let mut next: Vec<VReg> = Vec::new();
            let mut iter = level.chunks_exact(2);
            for pair in iter.by_ref() {
                let mid = func.new_vreg(ty);
                new_insts.push(make_inst(op, mid, pair[0], pair[1]));
                next.push(mid);
            }
            if let [odd] = iter.remainder() {
                next.push(*odd);
            }
            level = next;
        }
        new_insts.push(make_inst(op, dst, level[0], level[1]));

        // Rebuild the block: drop interior + root, splice new insts at root.
        let mut to_remove: Vec<usize> = interior;
        to_remove.push(index);
        to_remove.sort_unstable();
        let block = &mut func.blocks[block_index];
        let mut rebuilt: Vec<Inst> = Vec::with_capacity(block.insts.len() + new_insts.len());
        for (pos, inst) in block.insts.drain(..).enumerate() {
            if pos == index {
                rebuilt.append(&mut new_insts);
            }
            if to_remove.binary_search(&pos).is_err() {
                rebuilt.push(inst);
            }
        }
        block.insts = rebuilt;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_ir::Terminator;
    use supersym_lang::ast::Ty;

    /// Builds `dst = ((((a?b)?c)?d)?e)` for `op` in one block.
    fn left_chain_of(n: usize, op: IntBinOp) -> supersym_ir::Module {
        use supersym_ir::{Block, Function, LocalId, VarRef};
        let mut func = Function {
            name: "f".into(),
            vars: Vec::new(),
            ret: None,
            blocks: Vec::new(),
            vreg_tys: Vec::new(),
        };
        for k in 0..n {
            func.new_local(format!("x{k}"), Ty::Int);
        }
        let mut insts = Vec::new();
        let mut leaves = Vec::new();
        for k in 0..n {
            let v = func.new_vreg(Ty::Int);
            insts.push(Inst::ReadVar {
                dst: v,
                var: VarRef::Local(LocalId(k as u32)),
            });
            leaves.push(v);
        }
        let mut acc = leaves[0];
        for &leaf in &leaves[1..] {
            let next = func.new_vreg(Ty::Int);
            insts.push(Inst::IntBin {
                op,
                dst: next,
                lhs: acc,
                rhs: leaf,
            });
            acc = next;
        }
        let out = func.new_local("out", Ty::Int);
        insts.push(Inst::WriteVar {
            var: VarRef::Local(out),
            src: acc,
        });
        func.blocks.push(Block {
            insts,
            term: Terminator::Return(None),
        });
        supersym_ir::Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        }
    }

    fn left_chain(n: usize) -> supersym_ir::Module {
        left_chain_of(n, IntBinOp::Add)
    }

    /// Depth of the dependence chain feeding the final write.
    fn add_chain_depth(module: &supersym_ir::Module) -> usize {
        let block = &module.funcs[0].blocks[0];
        let mut depth: HashMap<VReg, usize> = HashMap::new();
        let mut max_depth = 0;
        for inst in &block.insts {
            if let Some((_, dst, lhs, rhs)) = chain_op(inst, default_table()) {
                let d = 1 + depth
                    .get(&lhs)
                    .copied()
                    .unwrap_or(0)
                    .max(depth.get(&rhs).copied().unwrap_or(0));
                depth.insert(dst, d);
                max_depth = max_depth.max(d);
            }
        }
        max_depth
    }

    #[test]
    fn balances_eight_leaf_chain() {
        let mut module = left_chain(8);
        assert_eq!(add_chain_depth(&module), 7);
        assert!(reassociate(&mut module));
        module.validate().unwrap();
        assert_eq!(add_chain_depth(&module), 3); // log2(8)
    }

    #[test]
    fn add_count_preserved() {
        let mut module = left_chain(8);
        let adds_before = module.funcs[0].blocks[0]
            .insts
            .iter()
            .filter(|i| chain_op(i, default_table()).is_some())
            .count();
        reassociate(&mut module);
        let adds_after = module.funcs[0].blocks[0]
            .insts
            .iter()
            .filter(|i| chain_op(i, default_table()).is_some())
            .count();
        assert_eq!(adds_before, adds_after);
    }

    #[test]
    fn short_chains_untouched() {
        let mut module = left_chain(3);
        assert!(!reassociate(&mut module));
    }

    #[test]
    fn five_leaves_balanced() {
        let mut module = left_chain(5);
        assert_eq!(add_chain_depth(&module), 4);
        assert!(reassociate(&mut module));
        module.validate().unwrap();
        assert!(add_chain_depth(&module) <= 3);
    }

    #[test]
    fn xor_chain_balances_via_proven_props() {
        // Xor is chainable only because the table proves `prop xor comm`
        // and `prop xor assoc`; the pass itself has no opinion.
        let mut module = left_chain_of(8, IntBinOp::Xor);
        assert_eq!(add_chain_depth(&module), 7);
        assert!(reassociate(&mut module));
        module.validate().unwrap();
        assert_eq!(add_chain_depth(&module), 3);
    }

    #[test]
    fn sub_chain_is_never_touched() {
        // Subtraction has no associativity proof, so no table will ever
        // mark it chainable.
        let mut module = left_chain_of(8, IntBinOp::Sub);
        assert!(!reassociate(&mut module));
    }

    #[test]
    fn empty_table_disables_integer_chains() {
        let mut module = left_chain(8);
        assert!(!reassociate_with(&mut module, &RuleTable::empty()));
    }

    #[test]
    fn multiply_used_intermediate_is_a_leaf() {
        // d1 = a + b; d2 = d1 + c; out1 = d1; out2 = d2 — d1 used twice so
        // the chain from d2 must treat d1 as a leaf, not expand it.
        use supersym_ir::{Block, Function, LocalId, VarRef};
        let mut func = Function {
            name: "f".into(),
            vars: Vec::new(),
            ret: None,
            blocks: Vec::new(),
            vreg_tys: Vec::new(),
        };
        for name in ["a", "b", "c", "o1", "o2"] {
            func.new_local(name, Ty::Int);
        }
        let a = func.new_vreg(Ty::Int);
        let b = func.new_vreg(Ty::Int);
        let c = func.new_vreg(Ty::Int);
        let d1 = func.new_vreg(Ty::Int);
        let d2 = func.new_vreg(Ty::Int);
        func.blocks.push(Block {
            insts: vec![
                Inst::ReadVar {
                    dst: a,
                    var: VarRef::Local(LocalId(0)),
                },
                Inst::ReadVar {
                    dst: b,
                    var: VarRef::Local(LocalId(1)),
                },
                Inst::ReadVar {
                    dst: c,
                    var: VarRef::Local(LocalId(2)),
                },
                Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: d1,
                    lhs: a,
                    rhs: b,
                },
                Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: d2,
                    lhs: d1,
                    rhs: c,
                },
                Inst::WriteVar {
                    var: VarRef::Local(LocalId(3)),
                    src: d1,
                },
                Inst::WriteVar {
                    var: VarRef::Local(LocalId(4)),
                    src: d2,
                },
            ],
            term: Terminator::Return(None),
        });
        let mut module = supersym_ir::Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        // Chain has only 2 leaves from d2's perspective (d1, c): no rewrite.
        assert!(!reassociate(&mut module));
        module.validate().unwrap();
    }
}
