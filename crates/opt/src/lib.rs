//! # supersym-opt
//!
//! The optimizer of the supersym compiler, organized to match the paper's
//! Figure 4-8 optimization levels:
//!
//! * **intra-block (local) optimizations** — [`local_value_numbering`]
//!   (constant folding, algebraic simplification, common-subexpression
//!   elimination, copy propagation, store-to-load forwarding within a
//!   block) and [`dead_code_elimination`];
//! * **global optimizations** — [`loop_invariant_code_motion`] and
//!   [`dead_store_elimination`] (liveness-driven);
//! * **loop unrolling** — [`unroll_loops`], at the source (AST) level, in
//!   the paper's two flavors (§4.4): *naive* ("simply duplicating the loop
//!   body inside the loop") and *careful* (renamed reduction accumulators,
//!   reassociation, and index expressions that let the scheduler prove
//!   unrolled copies independent);
//! * **reassociation** — [`reassociate`], balancing long chains of
//!   associative operations ("we reassociate long strings of additions or
//!   multiplications to maximize the parallelism").
//!
//! Pipeline instruction scheduling itself lives in `supersym-codegen`; the
//! paper treats it as a separate lever and so do we.
//!
//! ## Example
//!
//! ```
//! let ast = supersym_lang::parse(
//!     "fn main() -> int { var x = 2 + 3; return x * 1; }",
//! )?;
//! supersym_lang::check(&ast)?;
//! let mut ir = supersym_ir::lower(&ast)?;
//! let before = ir.funcs[0].inst_count();
//! supersym_opt::local_value_numbering(&mut ir);
//! supersym_opt::dead_code_elimination(&mut ir);
//! assert!(ir.funcs[0].inst_count() < before);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod dce;
mod licm;
mod lvn;
mod reassoc;
mod unroll;

pub use dce::{dead_code_elimination, dead_store_elimination};
pub use licm::loop_invariant_code_motion;
pub use lvn::{local_value_numbering, strength_reduce};
pub use reassoc::reassociate;
pub use unroll::{unroll_loops, UnrollOptions};

use supersym_ir::Module;

/// Runs the paper's "intra-block optimizations" to a fixed point (bounded).
pub fn run_local(module: &mut Module) {
    for _ in 0..4 {
        let changed =
            local_value_numbering(module) | strength_reduce(module) | dead_code_elimination(module);
        if !changed {
            break;
        }
    }
}

/// Runs the paper's "global optimizations" (assumes local already ran), then
/// re-runs local cleanup.
pub fn run_global(module: &mut Module) {
    loop_invariant_code_motion(module);
    dead_store_elimination(module);
    run_local(module);
}
