//! # supersym-opt
//!
//! The optimizer of the supersym compiler, organized to match the paper's
//! Figure 4-8 optimization levels:
//!
//! * **intra-block (local) optimizations** — [`local_value_numbering`]
//!   (constant folding, algebraic simplification, common-subexpression
//!   elimination, copy propagation, store-to-load forwarding within a
//!   block) and [`dead_code_elimination`];
//! * **global optimizations** — [`loop_invariant_code_motion`] and
//!   [`dead_store_elimination`] (liveness-driven);
//! * **loop unrolling** — [`unroll_loops`], at the source (AST) level, in
//!   the paper's two flavors (§4.4): *naive* ("simply duplicating the loop
//!   body inside the loop") and *careful* (renamed reduction accumulators,
//!   reassociation, and index expressions that let the scheduler prove
//!   unrolled copies independent);
//! * **reassociation** — [`reassociate`], balancing long chains of
//!   associative operations ("we reassociate long strings of additions or
//!   multiplications to maximize the parallelism").
//!
//! Pipeline instruction scheduling itself lives in `supersym-codegen`; the
//! paper treats it as a separate lever and so do we.
//!
//! ## Example
//!
//! ```
//! let ast = supersym_lang::parse(
//!     "fn main() -> int { var x = 2 + 3; return x * 1; }",
//! )?;
//! supersym_lang::check(&ast)?;
//! let mut ir = supersym_ir::lower(&ast)?;
//! let before = ir.funcs[0].inst_count();
//! supersym_opt::local_value_numbering(&mut ir);
//! supersym_opt::dead_code_elimination(&mut ir);
//! assert!(ir.funcs[0].inst_count() < before);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod dce;
mod licm;
mod lvn;
mod reassoc;
mod unroll;

pub use dce::{dead_code_elimination, dead_store_elimination};
pub use licm::loop_invariant_code_motion;
pub use lvn::{local_value_numbering, local_value_numbering_with, strength_reduce};
pub use reassoc::{reassociate, reassociate_with};
pub use unroll::{unroll_loops, UnrollOptions};

use supersym_ir::Module;
use supersym_rules::{default_table, RuleTable};

/// The optimizer's named passes, in the order the drivers run them. The
/// translation validator keys its per-pass certificates on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Local value numbering ([`local_value_numbering`]).
    Lvn,
    /// Multiply-to-shift strength reduction ([`strength_reduce`]).
    StrengthReduce,
    /// Dead code elimination ([`dead_code_elimination`]).
    Dce,
    /// Loop-invariant code motion ([`loop_invariant_code_motion`]).
    Licm,
    /// Liveness-driven dead store elimination ([`dead_store_elimination`]).
    Dse,
    /// Associative chain rebalancing ([`reassociate`]).
    Reassociate,
}

impl Pass {
    /// A short stable name (used in diagnostics and certificates).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pass::Lvn => "local_value_numbering",
            Pass::StrengthReduce => "strength_reduce",
            Pass::Dce => "dead_code_elimination",
            Pass::Licm => "loop_invariant_code_motion",
            Pass::Dse => "dead_store_elimination",
            Pass::Reassociate => "reassociate",
        }
    }
}

/// Observes the module after each pass that reported a change. The
/// translation validator implements this to snapshot and re-prove
/// equivalence pass by pass; `None` observers cost nothing.
pub trait PassObserver {
    /// Called after `pass` ran and changed the module.
    fn after_pass(&mut self, pass: Pass, module: &Module);
}

fn notify(observer: &mut Option<&mut dyn PassObserver>, pass: Pass, module: &Module) {
    if let Some(obs) = observer.as_deref_mut() {
        obs.after_pass(pass, module);
    }
}

/// Runs the paper's "intra-block optimizations" to a fixed point (bounded),
/// with the default (verified) rule table.
pub fn run_local(module: &mut Module) {
    run_local_observed(module, default_table(), None);
}

/// [`run_local`] with an explicit rule table.
pub fn run_local_with(module: &mut Module, table: &RuleTable) {
    run_local_observed(module, table, None);
}

/// [`run_local`] with an explicit rule table and pass observer.
pub fn run_local_observed(
    module: &mut Module,
    table: &RuleTable,
    mut observer: Option<&mut dyn PassObserver>,
) {
    for _ in 0..4 {
        let mut changed = false;
        if local_value_numbering_with(module, table) {
            changed = true;
            notify(&mut observer, Pass::Lvn, module);
        }
        if strength_reduce(module) {
            changed = true;
            notify(&mut observer, Pass::StrengthReduce, module);
        }
        if dead_code_elimination(module) {
            changed = true;
            notify(&mut observer, Pass::Dce, module);
        }
        if !changed {
            break;
        }
    }
}

/// Runs the paper's "global optimizations" (assumes local already ran), then
/// re-runs local cleanup — default rule table.
pub fn run_global(module: &mut Module) {
    run_global_observed(module, default_table(), None);
}

/// [`run_global`] with an explicit rule table.
pub fn run_global_with(module: &mut Module, table: &RuleTable) {
    run_global_observed(module, table, None);
}

/// [`run_global`] with an explicit rule table and pass observer.
pub fn run_global_observed(
    module: &mut Module,
    table: &RuleTable,
    mut observer: Option<&mut dyn PassObserver>,
) {
    if loop_invariant_code_motion(module) {
        notify(&mut observer, Pass::Licm, module);
    }
    if dead_store_elimination(module) {
        notify(&mut observer, Pass::Dse, module);
    }
    run_local_observed(module, table, observer);
}

/// [`reassociate`] with an explicit rule table and pass observer.
pub fn reassociate_observed(
    module: &mut Module,
    table: &RuleTable,
    mut observer: Option<&mut dyn PassObserver>,
) -> bool {
    let changed = reassociate_with(module, table);
    if changed {
        notify(&mut observer, Pass::Reassociate, module);
    }
    changed
}
