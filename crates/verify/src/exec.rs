//! A small fuel-bounded IR interpreter for executor-differential
//! translation validation.
//!
//! The interpreter runs a whole [`Module`] from its entry function under
//! the simulator's integer semantics ([`supersym_analyze::consts::eval_int`]:
//! wrapping arithmetic, guarded division, shift counts mod 64) and IEEE
//! `f64` float semantics, and returns an [`ExecSummary`] capturing every
//! observable outcome: the return value, the final state of all globals
//! (scalars and arrays, floats bit-exact), and the dynamic call count.
//! Two modules with equal summaries are indistinguishable to this program
//! run — which is the evidence the differential tier of
//! [`certify_pass`](crate::certify_pass) relies on for passes that move
//! code across blocks (LICM, DSE) where block-wise structural comparison
//! cannot apply.
//!
//! Determinism: entry-function parameters (if any) are filled from a fixed
//! value list, so two runs of the same module always agree.

use supersym_ir::{CmpOp, FloatBinOp, GlobalKind, Inst, Module, Terminator, VarRef};
use supersym_lang::ast::Ty;

/// A runtime value (floats kept as bits for exact comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A float, by bit pattern.
    Float(u64),
}

impl Value {
    fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Float => Value::Float(0.0_f64.to_bits()),
            _ => Value::Int(0),
        }
    }

    fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(bits) => f64::from_bits(bits) as i64,
        }
    }

    fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(bits) => f64::from_bits(bits),
        }
    }
}

/// Everything observable about one program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecSummary {
    /// The entry function's return value.
    pub ret: Option<Value>,
    /// Final state of every global, in module order: scalars as one-element
    /// vectors, arrays element-wise.
    pub globals: Vec<Vec<Value>>,
    /// Number of calls executed (including the entry call).
    pub calls: u64,
    /// Number of instructions executed.
    pub insts: u64,
}

/// Why a run did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The fuel budget was exhausted (likely a long/endless loop).
    OutOfFuel,
    /// Call depth exceeded the recursion bound.
    CallDepth,
    /// The module is malformed (should be caught by `Module::validate`).
    Malformed(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "out of fuel"),
            ExecError::CallDepth => write!(f, "call depth exceeded"),
            ExecError::Malformed(why) => write!(f, "malformed module: {why}"),
        }
    }
}

/// Fixed parameter values handed to the entry function, cycled by position.
const ENTRY_ARGS: [i64; 6] = [7, -3, 13, 5, 11, -2];

const MAX_CALL_DEPTH: usize = 128;

struct Machine<'m> {
    module: &'m Module,
    globals: Vec<Vec<Value>>,
    fuel: u64,
    calls: u64,
    insts: u64,
}

/// Runs `module` from its entry function with at most `fuel` executed
/// instructions.
///
/// # Errors
///
/// [`ExecError::OutOfFuel`] / [`ExecError::CallDepth`] when bounds are hit,
/// [`ExecError::Malformed`] on IR the interpreter cannot make sense of.
pub fn execute(module: &Module, fuel: u64) -> Result<ExecSummary, ExecError> {
    let globals = module
        .globals
        .iter()
        .map(|g| match g.kind {
            GlobalKind::Scalar { init } => vec![match g.ty {
                Ty::Float => Value::Float(init.to_bits()),
                _ => Value::Int(init as i64),
            }],
            GlobalKind::Array { len } => vec![Value::zero(g.ty); len],
        })
        .collect();
    let mut machine = Machine {
        module,
        globals,
        fuel,
        calls: 0,
        insts: 0,
    };
    let entry = module
        .funcs
        .get(module.entry)
        .ok_or_else(|| ExecError::Malformed("entry function out of range".into()))?;
    let args: Vec<Value> = (0..entry.param_count())
        .map(|i| {
            let raw = ENTRY_ARGS[i % ENTRY_ARGS.len()];
            match entry.vars[i].ty {
                Ty::Float => Value::Float((raw as f64).to_bits()),
                _ => Value::Int(raw),
            }
        })
        .collect();
    let ret = machine.call(module.entry, &args, 0)?;
    Ok(ExecSummary {
        ret,
        globals: machine.globals,
        calls: machine.calls,
        insts: machine.insts,
    })
}

impl Machine<'_> {
    fn call(
        &mut self,
        func_index: usize,
        args: &[Value],
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        if depth >= MAX_CALL_DEPTH {
            return Err(ExecError::CallDepth);
        }
        self.calls += 1;
        let func =
            self.module.funcs.get(func_index).ok_or_else(|| {
                ExecError::Malformed(format!("callee #{func_index} out of range"))
            })?;
        let mut locals: Vec<Value> = func.vars.iter().map(|v| Value::zero(v.ty)).collect();
        for (i, value) in args.iter().enumerate().take(func.param_count()) {
            locals[i] = *value;
        }
        let mut vregs: Vec<Value> = func.vreg_tys.iter().map(|&ty| Value::zero(ty)).collect();
        let mut block = 0_usize;
        loop {
            let blk = func
                .blocks
                .get(block)
                .ok_or_else(|| ExecError::Malformed(format!("block {block} out of range")))?;
            for inst in &blk.insts {
                if self.insts >= self.fuel {
                    return Err(ExecError::OutOfFuel);
                }
                self.insts += 1;
                match inst {
                    Inst::ConstInt { dst, value } => vregs[dst.0 as usize] = Value::Int(*value),
                    Inst::ConstFloat { dst, value } => {
                        vregs[dst.0 as usize] = Value::Float(value.to_bits());
                    }
                    Inst::IntBin { op, dst, lhs, rhs } => {
                        let a = vregs[lhs.0 as usize].as_int();
                        let b = vregs[rhs.0 as usize].as_int();
                        vregs[dst.0 as usize] =
                            Value::Int(supersym_analyze::consts::eval_int(*op, a, b));
                    }
                    Inst::FloatBin { op, dst, lhs, rhs } => {
                        let a = vregs[lhs.0 as usize].as_float();
                        let b = vregs[rhs.0 as usize].as_float();
                        let v = match op {
                            FloatBinOp::Add => a + b,
                            FloatBinOp::Sub => a - b,
                            FloatBinOp::Mul => a * b,
                            FloatBinOp::Div => a / b,
                        };
                        vregs[dst.0 as usize] = Value::Float(v.to_bits());
                    }
                    Inst::FloatCmp { op, dst, lhs, rhs } => {
                        let a = vregs[lhs.0 as usize].as_float();
                        let b = vregs[rhs.0 as usize].as_float();
                        let v = match op {
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                        };
                        vregs[dst.0 as usize] = Value::Int(i64::from(v));
                    }
                    Inst::Cast { dst, src, to } => {
                        let v = vregs[src.0 as usize];
                        vregs[dst.0 as usize] = match to {
                            Ty::Float => Value::Float(v.as_float().to_bits()),
                            _ => Value::Int(v.as_int()),
                        };
                    }
                    Inst::ReadVar { dst, var } => {
                        vregs[dst.0 as usize] = self.read_var(&locals, *var)?;
                    }
                    Inst::WriteVar { var, src } => {
                        let v = vregs[src.0 as usize];
                        match var {
                            VarRef::Local(l) => locals[l.0 as usize] = v,
                            VarRef::Global(g) => self.globals[g.0 as usize][0] = v,
                        }
                    }
                    Inst::ReadElem {
                        dst, arr, index, ..
                    } => {
                        let slot = self.elem_slot(arr.0 as usize, vregs[index.0 as usize].as_int());
                        vregs[dst.0 as usize] = match slot {
                            Some(i) => self.globals[arr.0 as usize][i],
                            None => Value::Int(0),
                        };
                    }
                    Inst::WriteElem {
                        arr, index, src, ..
                    } => {
                        let slot = self.elem_slot(arr.0 as usize, vregs[index.0 as usize].as_int());
                        if let Some(i) = slot {
                            self.globals[arr.0 as usize][i] = vregs[src.0 as usize];
                        }
                    }
                    Inst::Call { dst, callee, args } => {
                        let values: Vec<Value> = args.iter().map(|a| vregs[a.0 as usize]).collect();
                        let result = self.call(*callee as usize, &values, depth + 1)?;
                        if let (Some(dst), Some(result)) = (dst, result) {
                            vregs[dst.0 as usize] = result;
                        }
                    }
                }
            }
            if self.insts >= self.fuel {
                return Err(ExecError::OutOfFuel);
            }
            self.insts += 1;
            match &blk.term {
                Terminator::Jump(next) => block = next.index(),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    block = if vregs[cond.0 as usize].as_int() != 0 {
                        then_bb.index()
                    } else {
                        else_bb.index()
                    };
                }
                Terminator::Return(v) => {
                    return Ok(v.map(|v| vregs[v.0 as usize]));
                }
            }
        }
    }

    fn read_var(&self, locals: &[Value], var: VarRef) -> Result<Value, ExecError> {
        Ok(match var {
            VarRef::Local(l) => locals[l.0 as usize],
            VarRef::Global(g) => self.globals[g.0 as usize][0],
        })
    }

    /// Out-of-range indices wrap (`rem_euclid`): any consistent policy
    /// works for differential comparison, and wrapping never traps.
    fn elem_slot(&self, arr: usize, index: i64) -> Option<usize> {
        let len = self.globals.get(arr)?.len();
        if len == 0 {
            return None;
        }
        Some(index.rem_euclid(len as i64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        supersym_ir::lower(&ast).unwrap()
    }

    #[test]
    fn runs_a_loop_to_completion() {
        let m = module(
            "global arr data[8];
             fn main() -> int {
                 var sum = 0;
                 for (i = 0; i < 8; i = i + 1) { data[i] = i * 2; }
                 for (i = 0; i < 8; i = i + 1) { sum = sum + data[i]; }
                 return sum;
             }",
        );
        let summary = execute(&m, 100_000).unwrap();
        assert_eq!(summary.ret, Some(Value::Int(56)));
        assert_eq!(summary.globals[0][3], Value::Int(6));
    }

    #[test]
    fn calls_and_globals_observed() {
        let m = module(
            "global var g;
             fn bump() { g = g + 1; }
             fn main() -> int { bump(); bump(); return g; }",
        );
        let summary = execute(&m, 100_000).unwrap();
        assert_eq!(summary.ret, Some(Value::Int(2)));
        assert_eq!(summary.calls, 3, "entry + two bumps");
    }

    #[test]
    fn fuel_bounds_runaway_loops() {
        let m = module("fn main() -> int { var x = 0; while (1) { x = x + 1; } return x; }");
        assert_eq!(execute(&m, 10_000), Err(ExecError::OutOfFuel));
    }

    #[test]
    fn entry_parameters_are_deterministic() {
        let m = module("fn main(int a, int b) -> int { return a * 100 + b; }");
        let one = execute(&m, 10_000).unwrap();
        let two = execute(&m, 10_000).unwrap();
        assert_eq!(one, two);
        assert_eq!(one.ret, Some(Value::Int(7 * 100 - 3)));
    }
}
