//! The schedule legality checker.
//!
//! Given the same program before and after pipeline scheduling, proves the
//! transformation could not have changed behaviour: within every scheduling
//! region the output is a permutation of the input that preserves the order
//! of every register dependence (RAW, WAR, WAW) and every memory dependence
//! the dependence oracle cannot disprove; outside the regions nothing moved
//! at all.
//!
//! The dependence DAG is *shared* with the scheduler: both call
//! [`supersym_analyze::dependence_edges`] with a [`DependenceOracle`], so a
//! disambiguation fact is either visible to both sides or to neither —
//! the checker can never reject a reordering the scheduler was entitled to
//! make, and the scheduler can never exploit a fact the checker would not
//! insist on. [`check_schedule`] uses the default (symbolic) oracle, which
//! also accepts anything the conservative oracle would accept, since the
//! symbolic oracle only ever removes edges; [`check_schedule_with`] pins a
//! specific oracle for differential experiments.

use std::fmt;
use supersym_analyze::{dependence_edges, scheduling_regions, LoopCarriedOracle, OracleKind};
use supersym_isa::{Diagnostic, Function, Program};

pub use supersym_analyze::DepKind as EdgeKind;

/// What went wrong in a region (or a whole function).
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// The two programs differ in shape (function count, names, lengths or
    /// label tables) — nothing a scheduler is allowed to change.
    ShapeMismatch {
        /// What differs.
        detail: String,
    },
    /// The scheduled region is not a permutation of the original region.
    NotAPermutation {
        /// The offending output instruction, printed.
        detail: String,
    },
    /// An instruction outside any multi-instruction region changed.
    MovedOutsideRegion {
        /// The instruction index.
        index: usize,
    },
    /// A dependence edge's endpoints swapped order.
    BrokenEdge {
        /// Original index of the edge's source (must come first).
        pred: usize,
        /// Original index of the edge's sink (must come after).
        succ: usize,
        /// Scheduled position of the source.
        pred_pos: usize,
        /// Scheduled position of the sink.
        succ_pos: usize,
        /// The dependence that was broken.
        kind: EdgeKind,
    },
}

/// One legality violation, attributed to a function and a region.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleViolation {
    /// Name of the function the violation is in.
    pub function: String,
    /// Original-index range `[start, end)` of the scheduling region
    /// concerned (the whole function for shape mismatches).
    pub region: (usize, usize),
    /// What went wrong.
    pub kind: ViolationKind,
}

impl ScheduleViolation {
    /// Renders the violation as a [`Diagnostic`] (always an error).
    #[must_use]
    pub fn to_diagnostic(&self) -> Diagnostic {
        let (start, end) = self.region;
        let d = match &self.kind {
            ViolationKind::ShapeMismatch { detail } => Diagnostic::error(
                "schedule-shape-mismatch",
                format!("scheduler changed program shape: {detail}"),
            ),
            ViolationKind::NotAPermutation { detail } => Diagnostic::error(
                "schedule-not-permutation",
                format!("region {start}..{end} is not a permutation of its input: {detail}"),
            )
            .at_instr(start),
            ViolationKind::MovedOutsideRegion { index } => Diagnostic::error(
                "schedule-moved-fixed-instr",
                format!("instruction {index} outside any region was changed"),
            )
            .at_instr(*index),
            ViolationKind::BrokenEdge {
                pred,
                succ,
                pred_pos,
                succ_pos,
                kind,
            } => Diagnostic::error(
                "schedule-broken-edge",
                format!(
                    "region {start}..{end}: {kind} from instr {pred} to {succ} \
                     reordered (now at positions {pred_pos} and {succ_pos})"
                ),
            )
            .at_instr(*pred),
        };
        d.in_function(&self.function)
    }
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_diagnostic().fmt(f)
    }
}

/// Checks that `after` is a legal schedule of `before` under the default
/// (symbolic) dependence oracle.
///
/// Returns every violation found; an empty vector certifies legality.
/// No machine description is needed: latencies influence *which* legal
/// schedule is best, never which schedules are legal.
#[must_use]
pub fn check_schedule(before: &Program, after: &Program) -> Vec<ScheduleViolation> {
    check_schedule_with(before, after, OracleKind::default().as_loop_oracle())
}

/// Checks that `after` is a legal schedule of `before`, holding memory
/// reorderings to exactly the disambiguation power of `oracle`.
#[must_use]
pub fn check_schedule_with(
    before: &Program,
    after: &Program,
    oracle: &dyn LoopCarriedOracle,
) -> Vec<ScheduleViolation> {
    let mut violations = Vec::new();
    if before.functions().len() != after.functions().len() {
        violations.push(ScheduleViolation {
            function: "<program>".to_string(),
            region: (0, 0),
            kind: ViolationKind::ShapeMismatch {
                detail: format!(
                    "{} functions before, {} after",
                    before.functions().len(),
                    after.functions().len()
                ),
            },
        });
        return violations;
    }
    for (b, a) in before.functions().iter().zip(after.functions()) {
        check_function(b, a, oracle, &mut violations);
    }
    violations
}

fn check_function(
    before: &Function,
    after: &Function,
    oracle: &dyn LoopCarriedOracle,
    out: &mut Vec<ScheduleViolation>,
) {
    let shape = |detail: String| ScheduleViolation {
        function: before.name().to_string(),
        region: (0, before.instrs().len()),
        kind: ViolationKind::ShapeMismatch { detail },
    };
    if before.name() != after.name() {
        out.push(shape(format!(
            "function renamed `{}` -> `{}`",
            before.name(),
            after.name()
        )));
        return;
    }
    if before.instrs().len() != after.instrs().len() {
        out.push(shape(format!(
            "{} instructions before, {} after",
            before.instrs().len(),
            after.instrs().len()
        )));
        return;
    }
    if before.label_targets() != after.label_targets() {
        out.push(shape("label table changed".to_string()));
        return;
    }
    let mut fixed = vec![true; before.instrs().len()];
    for (start, end) in scheduling_regions(before) {
        if end - start >= 2 {
            fixed[start..end].iter_mut().for_each(|f| *f = false);
            check_region(before, after, start, end, oracle, out);
        }
    }
    for (index, is_fixed) in fixed.into_iter().enumerate() {
        if is_fixed && before.instrs()[index] != after.instrs()[index] {
            out.push(ScheduleViolation {
                function: before.name().to_string(),
                region: (index, index + 1),
                kind: ViolationKind::MovedOutsideRegion { index },
            });
        }
    }
}

fn check_region(
    before: &Function,
    after: &Function,
    start: usize,
    end: usize,
    oracle: &dyn LoopCarriedOracle,
    out: &mut Vec<ScheduleViolation>,
) {
    let b = &before.instrs()[start..end];
    let a = &after.instrs()[start..end];
    let violation = |kind: ViolationKind| ScheduleViolation {
        function: before.name().to_string(),
        region: (start, end),
        kind,
    };

    // Match the output back to the input. Duplicates are matched in order,
    // which is canonical here: any two identical non-control instructions
    // either write the same register (WAW) or are conflicting stores (a
    // store's symbolic address equals its own copy's, so no oracle can
    // separate them), and every legal schedule therefore keeps their
    // relative order anyway.
    let n = b.len();
    let mut pos_of = vec![usize::MAX; n]; // original offset -> scheduled offset
    let mut taken = vec![false; n];
    let mut complete = true;
    for (p, instr) in a.iter().enumerate() {
        match (0..n).find(|&q| !taken[q] && &b[q] == instr) {
            Some(q) => {
                taken[q] = true;
                pos_of[q] = p;
            }
            None => {
                out.push(violation(ViolationKind::NotAPermutation {
                    detail: format!("`{instr}` at position {} has no source", start + p),
                }));
                complete = false;
            }
        }
    }
    if !complete {
        return; // positions are meaningless without a bijection
    }

    for edge in dependence_edges(b, oracle) {
        if pos_of[edge.pred] > pos_of[edge.succ] {
            out.push(violation(ViolationKind::BrokenEdge {
                pred: start + edge.pred,
                succ: start + edge.succ,
                pred_pos: start + pos_of[edge.pred],
                succ_pos: start + pos_of[edge.succ],
                kind: edge.kind,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_analyze::{ConservativeOracle, SymbolicOracle};
    use supersym_isa::{Instr, IntOp, IntReg, MemAlias, Operand};

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn load(dst: u8, offset: i64) -> Instr {
        Instr::Load {
            dst: r(dst),
            base: IntReg::GP,
            offset,
            alias: MemAlias::unknown(),
        }
    }

    fn store(src: u8, offset: i64) -> Instr {
        Instr::Store {
            src: r(src),
            base: IntReg::GP,
            offset,
            alias: MemAlias::unknown(),
        }
    }

    fn add(dst: u8, lhs: u8, imm: i64) -> Instr {
        Instr::IntOp {
            op: IntOp::Add,
            dst: r(dst),
            lhs: r(lhs),
            rhs: Operand::Imm(imm),
        }
    }

    fn program_of(instrs: Vec<Instr>) -> Program {
        let mut program = Program::new();
        let id = program.add_function(Function::new("f", instrs, vec![]));
        program.set_entry(id);
        program
    }

    #[test]
    fn identical_programs_pass() {
        let p = program_of(vec![load(1, 0), add(2, 1, 1), store(2, 0), Instr::Halt]);
        assert!(check_schedule(&p, &p).is_empty());
    }

    #[test]
    fn legal_reorder_passes() {
        // Independent loads may swap.
        let before = program_of(vec![load(1, 0), load(2, 1), Instr::Halt]);
        let after = program_of(vec![load(2, 1), load(1, 0), Instr::Halt]);
        assert!(check_schedule(&before, &after).is_empty());
    }

    #[test]
    fn raw_violation_caught() {
        let before = program_of(vec![load(1, 0), add(2, 1, 1), Instr::Halt]);
        let after = program_of(vec![add(2, 1, 1), load(1, 0), Instr::Halt]);
        let violations = check_schedule(&before, &after);
        assert!(violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::BrokenEdge {
                kind: EdgeKind::Raw(_),
                ..
            }
        )));
    }

    #[test]
    fn war_violation_caught() {
        let before = program_of(vec![add(2, 1, 0), Instr::MovI { dst: r(1), imm: 5 }]);
        let after = program_of(vec![Instr::MovI { dst: r(1), imm: 5 }, add(2, 1, 0)]);
        let violations = check_schedule(&before, &after);
        assert!(violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::BrokenEdge {
                kind: EdgeKind::War(_),
                ..
            }
        )));
    }

    #[test]
    fn waw_violation_caught() {
        let before = program_of(vec![
            Instr::MovI { dst: r(1), imm: 1 },
            Instr::MovI { dst: r(1), imm: 2 },
        ]);
        let after = program_of(vec![
            Instr::MovI { dst: r(1), imm: 2 },
            Instr::MovI { dst: r(1), imm: 1 },
        ]);
        let violations = check_schedule(&before, &after);
        assert!(violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::BrokenEdge {
                kind: EdgeKind::Waw(_),
                ..
            }
        )));
    }

    #[test]
    fn memory_violation_caught() {
        // Same base, same offset: no oracle may allow the swap.
        let before = program_of(vec![store(1, 0), load(2, 0)]);
        let after = program_of(vec![load(2, 0), store(1, 0)]);
        let violations = check_schedule(&before, &after);
        assert!(violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::BrokenEdge {
                kind: EdgeKind::Memory,
                ..
            }
        )));
    }

    #[test]
    fn disjoint_memory_may_swap() {
        let a = Instr::Store {
            src: r(1),
            base: IntReg::GP,
            offset: 0,
            alias: MemAlias::global(0).with_offset(0),
        };
        let b = Instr::Load {
            dst: r(2),
            base: IntReg::GP,
            offset: 1,
            alias: MemAlias::global(0).with_offset(1),
        };
        let before = program_of(vec![a.clone(), b.clone()]);
        let after = program_of(vec![b, a]);
        assert!(check_schedule(&before, &after).is_empty());
    }

    #[test]
    fn oracle_choice_decides_symbolic_swaps() {
        // store [GP+1]; load [GP+0], both with *unknown* aliases: only the
        // symbolic oracle can prove the swap safe, so the checker must
        // reject it exactly when pinned to the conservative oracle.
        let before = program_of(vec![store(1, 1), load(2, 0)]);
        let after = program_of(vec![load(2, 0), store(1, 1)]);
        assert!(
            check_schedule_with(&before, &after, &SymbolicOracle).is_empty(),
            "same base register, distinct offsets: provably disjoint"
        );
        assert!(
            !check_schedule_with(&before, &after, &ConservativeOracle).is_empty(),
            "annotations alone cannot justify the swap"
        );
        // The default checker matches the default scheduler.
        assert!(check_schedule(&before, &after).is_empty());
    }

    #[test]
    fn conservative_schedules_accepted_by_symbolic_checker() {
        // The symbolic oracle only removes edges: an untouched program (the
        // most conservative schedule of all) always passes.
        let p = program_of(vec![store(1, 1), load(2, 0), store(2, 2), Instr::Halt]);
        assert!(check_schedule_with(&p, &p, &SymbolicOracle).is_empty());
    }

    #[test]
    fn moving_across_control_caught() {
        // halt splits two regions of one instruction each: nothing may move.
        let before = program_of(vec![load(1, 0), Instr::Halt, load(2, 1)]);
        let after = program_of(vec![load(2, 1), Instr::Halt, load(1, 0)]);
        let violations = check_schedule(&before, &after);
        assert!(violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::MovedOutsideRegion { .. })));
    }

    #[test]
    fn moving_across_label_caught() {
        // A label target at index 1 splits the straight-line code.
        let mk = |instrs: Vec<Instr>| {
            let mut program = Program::new();
            let id = program.add_function(Function::new("f", instrs, vec![1]));
            program.set_entry(id);
            program
        };
        let before = mk(vec![load(1, 0), load(2, 1), Instr::Halt]);
        let after = mk(vec![load(2, 1), load(1, 0), Instr::Halt]);
        assert!(!check_schedule(&before, &after).is_empty());
    }

    #[test]
    fn substitution_is_not_a_permutation() {
        let before = program_of(vec![load(1, 0), load(2, 1)]);
        let after = program_of(vec![load(1, 0), load(3, 1)]);
        let violations = check_schedule(&before, &after);
        assert!(violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::NotAPermutation { .. })));
    }

    #[test]
    fn shape_mismatch_caught() {
        let before = program_of(vec![load(1, 0)]);
        let after = program_of(vec![load(1, 0), Instr::Halt]);
        let violations = check_schedule(&before, &after);
        assert!(violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::ShapeMismatch { .. })));
    }

    #[test]
    fn violations_render_as_diagnostics() {
        let before = program_of(vec![load(1, 0), add(2, 1, 1)]);
        let after = program_of(vec![add(2, 1, 1), load(1, 0)]);
        let violations = check_schedule(&before, &after);
        let text = violations[0].to_string();
        assert!(text.contains("schedule-broken-edge"), "{text}");
        assert!(text.contains("RAW"), "{text}");
        assert!(violations[0].to_diagnostic().is_error());
    }
}
