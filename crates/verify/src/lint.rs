//! The program lint: static checks over `supersym-isa` programs.
//!
//! Five analyses, all reported as [`Diagnostic`]s:
//!
//! 1. **Label validation** — every label slot bound in range, every branch
//!    naming an existing slot (errors);
//! 2. **Control-flow closure** — call targets in range, an entry function
//!    set, and no reachable path that falls off the end of a function,
//!    which the simulator treats as a fault (errors);
//! 3. **Unreachable code** — instructions no path from the function entry
//!    reaches (warning, one per run);
//! 4. **Definite-definition dataflow** — a forward must-be-defined analysis
//!    over the control-flow graph; reading a register no path has written
//!    is reported per use (warning: the simulator zero-fills, so this is
//!    suspicious rather than fatal);
//! 5. **Register-split conformance** — with a machine description in hand,
//!    any register outside the calling convention and the machine's
//!    temporary/home ranges is an error: the register allocator must never
//!    emit it.

use supersym_isa::{
    Diagnostic, FpReg, Instr, IntReg, Program, Reg, NUM_FP_REGS, NUM_INT_REGS, UNBOUND_LABEL,
};
use supersym_machine::{MachineConfig, RegisterSplit};

/// Number of argument/return registers in each file (`r1..r8`, `f1..f8`).
const NUM_ARG_REGS: u8 = 8;

/// Lints a whole program.
///
/// With `machine` present, register-split conformance is checked against
/// its [`RegisterSplit`]; without one, only machine-independent analyses
/// run. An empty result means the program is clean.
#[must_use]
pub fn lint_program(program: &Program, machine: Option<&MachineConfig>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let entry = program.entry();
    if entry.is_none() {
        out.push(
            Diagnostic::error("missing-entry", "program has no entry function")
                .in_function("<program>"),
        );
    }
    let split = machine.map(MachineConfig::register_split);
    let allowed = split.map(AllowedRegs::new);
    for (index, func) in program.functions().iter().enumerate() {
        let is_entry = entry.is_some_and(|id| id.index() == index);
        let ctx = FunctionContext {
            program,
            is_entry,
            split,
            allowed: allowed.as_ref(),
        };
        lint_function(func, &ctx, &mut out);
    }
    out
}

struct FunctionContext<'a> {
    program: &'a Program,
    is_entry: bool,
    split: Option<RegisterSplit>,
    allowed: Option<&'a AllowedRegs>,
}

/// The registers a program may legally mention under a [`RegisterSplit`]:
/// the calling convention (`r0`, args, `sp`, `gp`, `at`) plus the
/// temporary and home prefixes of the allocatable ranges. Mirrors the
/// allocator's layout independently of `supersym-regalloc`.
struct AllowedRegs {
    int: [bool; NUM_INT_REGS],
    fp: [bool; NUM_FP_REGS],
}

impl AllowedRegs {
    fn new(split: RegisterSplit) -> Self {
        let mut int = [false; NUM_INT_REGS];
        let mut fp = [false; NUM_FP_REGS];
        for index in 0..=NUM_ARG_REGS {
            int[index as usize] = true; // r0 and args
            if index > 0 {
                fp[index as usize] = true; // f1..f8
            }
        }
        for special in [IntReg::SP, IntReg::GP, IntReg::AT] {
            int[special.index() as usize] = true;
        }
        let budget = split.int_temps as usize + split.int_globals as usize;
        for (count, index) in allocatable_int_indices().enumerate() {
            if count >= budget {
                break;
            }
            int[index] = true;
        }
        let budget = split.fp_temps as usize + split.fp_globals as usize;
        for (count, index) in allocatable_fp_indices().enumerate() {
            if count >= budget {
                break;
            }
            fp[index] = true;
        }
        AllowedRegs { int, fp }
    }

    fn permits(&self, reg: Reg) -> bool {
        match reg {
            Reg::Int(r) => self.int[r.index() as usize],
            Reg::Fp(r) => self.fp[r.index() as usize],
            Reg::Vec(_) | Reg::Vl => true,
        }
    }
}

/// Allocation order of integer registers: `r9..r28`, then `r32..r63`.
fn allocatable_int_indices() -> impl Iterator<Item = usize> {
    (9..IntReg::SP.index() as usize).chain(IntReg::AT.index() as usize + 1..NUM_INT_REGS)
}

/// Allocation order of FP registers: `f0`, then `f9..f63`.
fn allocatable_fp_indices() -> impl Iterator<Item = usize> {
    std::iter::once(0).chain(NUM_ARG_REGS as usize + 1..NUM_FP_REGS)
}

/// A dense register bitset over [`Reg::DENSE_SPACE`].
#[derive(Clone, Copy, PartialEq, Eq)]
struct RegSet([u64; Self::WORDS]);

impl RegSet {
    const WORDS: usize = Reg::DENSE_SPACE.div_ceil(64);

    const fn empty() -> Self {
        RegSet([0; Self::WORDS])
    }

    const fn full() -> Self {
        RegSet([u64::MAX; Self::WORDS])
    }

    fn insert(&mut self, reg: Reg) {
        let index = reg.dense_index();
        self.0[index / 64] |= 1 << (index % 64);
    }

    fn contains(&self, reg: Reg) -> bool {
        let index = reg.dense_index();
        self.0[index / 64] & (1 << (index % 64)) != 0
    }

    fn intersect(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (word, &mask) in self.0.iter_mut().zip(&other.0) {
            let next = *word & mask;
            changed |= next != *word;
            *word = next;
        }
        changed
    }
}

/// Registers guaranteed defined when a function starts executing: the
/// hardwired zero, the stack and global pointers and the vector length
/// (initialized by the loader), variable home registers (owned by the
/// allocator across the whole program), and — for non-entry functions —
/// the argument registers.
///
/// With a known [`RegisterSplit`], the home range is exactly the
/// `int_globals`/`fp_globals` registers after the temporaries in allocation
/// order; without one, every allocatable register is treated as a potential
/// home — weaker, but never noisier.
fn entry_defined(is_entry: bool, split: Option<RegisterSplit>) -> RegSet {
    let mut set = RegSet::empty();
    set.insert(Reg::Int(IntReg::ZERO));
    set.insert(Reg::Int(IntReg::SP));
    set.insert(Reg::Int(IntReg::GP));
    set.insert(Reg::Vl);
    if !is_entry {
        for index in 1..=NUM_ARG_REGS {
            set.insert(Reg::Int(IntReg::new_unchecked(index)));
            set.insert(Reg::Fp(FpReg::new_unchecked(index)));
        }
    }
    let (int_skip, int_take, fp_skip, fp_take) = match split {
        Some(s) => (
            s.int_temps as usize,
            s.int_globals as usize,
            s.fp_temps as usize,
            s.fp_globals as usize,
        ),
        None => (0, usize::MAX, 0, usize::MAX),
    };
    for index in allocatable_int_indices().skip(int_skip).take(int_take) {
        set.insert(Reg::Int(IntReg::new_unchecked(index as u8)));
    }
    for index in allocatable_fp_indices().skip(fp_skip).take(fp_take) {
        set.insert(Reg::Fp(FpReg::new_unchecked(index as u8)));
    }
    set
}

fn lint_function(
    func: &supersym_isa::Function,
    ctx: &FunctionContext<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let name = func.name();
    let len = func.instrs().len();

    // 1. Label validation. Bound-but-out-of-range entries are reported at
    // the table; referenced-but-unbound slots (including the parser's
    // `UNBOUND_LABEL` placeholder) are reported at the branch that names
    // them. Unreferenced unbound slots are harmless padding.
    for (slot, &target) in func.label_targets().iter().enumerate() {
        if target > len && target != UNBOUND_LABEL {
            out.push(
                Diagnostic::error(
                    "dangling-label",
                    format!("label L{slot} points outside the function"),
                )
                .in_function(name),
            );
        }
    }
    for (index, instr) in func.instrs().iter().enumerate() {
        if let Instr::Br { target, .. } | Instr::Jmp { target } = instr {
            let slot = target.slot() as usize;
            let bound = func
                .label_targets()
                .get(slot)
                .is_some_and(|&bind| bind <= len);
            if !bound {
                out.push(
                    Diagnostic::error(
                        "dangling-label",
                        format!("branch target {target} is never bound"),
                    )
                    .in_function(name)
                    .at_instr(index),
                );
            }
        }
        if let Instr::Call { target } = instr {
            if target.index() >= ctx.program.functions().len() {
                out.push(
                    Diagnostic::error(
                        "unknown-call-target",
                        format!("call to nonexistent function {target}"),
                    )
                    .in_function(name)
                    .at_instr(index),
                );
            }
        }
        // 5. Register-split conformance (per instruction, machine-gated).
        if let Some(allowed) = ctx.allowed {
            let uses = instr.uses();
            for reg in instr.def().into_iter().chain(uses.iter()) {
                if !allowed.permits(reg) {
                    out.push(
                        Diagnostic::error(
                            "split-violation",
                            format!(
                                "register {reg} is outside the machine's register split \
                                 (not a temporary, home, or convention register)"
                            ),
                        )
                        .in_function(name)
                        .at_instr(index),
                    );
                }
            }
        }
    }

    if len == 0 {
        out.push(
            Diagnostic::error("falls-off-end", "function has no instructions").in_function(name),
        );
        return;
    }

    // Control-flow graph. `None` in a successor slot means "past the end";
    // branch targets whose labels dangle (reported above) contribute no edge.
    let successors: Vec<Vec<Option<usize>>> = func
        .instrs()
        .iter()
        .enumerate()
        .map(|(index, instr)| {
            let mut succs = Vec::new();
            match instr {
                Instr::Ret | Instr::Halt => {}
                Instr::Jmp { target } => {
                    if let Some(edge) = resolve(func, *target) {
                        succs.push(edge);
                    }
                }
                Instr::Br { target, .. } => {
                    if let Some(edge) = resolve(func, *target) {
                        succs.push(edge);
                    }
                    succs.push(fallthrough(index, len));
                }
                _ => succs.push(fallthrough(index, len)),
            }
            succs
        })
        .collect();

    // Reachability from the function entry.
    let mut reachable = vec![false; len];
    let mut stack = vec![0_usize];
    while let Some(index) = stack.pop() {
        if std::mem::replace(&mut reachable[index], true) {
            continue;
        }
        for succ in successors[index].iter().flatten() {
            if !reachable[*succ] {
                stack.push(*succ);
            }
        }
    }

    // 2. Fall-off detection: a reachable instruction with a past-the-end
    // successor is a latent `FellOffFunction` fault.
    for (index, succs) in successors.iter().enumerate() {
        if reachable[index] && succs.iter().any(Option::is_none) {
            out.push(
                Diagnostic::error(
                    "falls-off-end",
                    "execution can run past the last instruction",
                )
                .in_function(name)
                .at_instr(index),
            );
        }
    }

    // 3. Unreachable code, one diagnostic per maximal run.
    let mut index = 0;
    while index < len {
        if reachable[index] {
            index += 1;
            continue;
        }
        let start = index;
        while index < len && !reachable[index] {
            index += 1;
        }
        out.push(
            Diagnostic::warning(
                "unreachable-code",
                format!("instructions {start}..{index} are unreachable from the function entry"),
            )
            .in_function(name)
            .at_instr(start),
        );
    }

    // 4. Definite-definition dataflow: forward must-analysis to a fixpoint.
    let entry_set = entry_defined(ctx.is_entry, ctx.split);
    let mut defined_in = vec![RegSet::full(); len];
    defined_in[0] = entry_set;
    let mut changed = true;
    while changed {
        changed = false;
        for index in 0..len {
            if !reachable[index] {
                continue;
            }
            let mut defined_out = defined_in[index];
            apply_defs(&func.instrs()[index], &mut defined_out);
            for succ in successors[index].iter().flatten() {
                changed |= defined_in[*succ].intersect(&defined_out);
            }
        }
    }
    for (index, instr) in func.instrs().iter().enumerate() {
        if !reachable[index] {
            continue;
        }
        for reg in instr.uses().iter() {
            if !defined_in[index].contains(reg) {
                out.push(
                    Diagnostic::warning(
                        "def-before-use",
                        format!("register {reg} may be read before any definition"),
                    )
                    .in_function(name)
                    .at_instr(index),
                );
            }
        }
    }
}

/// Resolves a branch target to a control-flow edge. The outer `None` means
/// the label dangles (reported separately, contributes no edge); the inner
/// `None` means the label binds to the end of the function, which is a
/// fall-off edge.
fn resolve(func: &supersym_isa::Function, target: supersym_isa::Label) -> Option<Option<usize>> {
    let len = func.instrs().len();
    let slot = target.slot() as usize;
    let &index = func.label_targets().get(slot)?;
    match index.cmp(&len) {
        std::cmp::Ordering::Less => Some(Some(index)),
        std::cmp::Ordering::Equal => Some(None),
        std::cmp::Ordering::Greater => None,
    }
}

/// The fall-through edge out of instruction `index`, `None` past the end.
fn fallthrough(index: usize, len: usize) -> Option<usize> {
    (index + 1 < len).then_some(index + 1)
}

/// Adds the registers `instr` defines to `set`. Calls define the argument
/// and return registers of both files (the callee populated them or may
/// have); nothing is killed, matching the functional simulator where
/// register state simply persists.
fn apply_defs(instr: &Instr, set: &mut RegSet) {
    if let Some(reg) = instr.def() {
        set.insert(reg);
    }
    if matches!(instr, Instr::Call { .. }) {
        for index in 1..=NUM_ARG_REGS {
            set.insert(Reg::Int(IntReg::new_unchecked(index)));
            set.insert(Reg::Fp(FpReg::new_unchecked(index)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_isa::parse_program;
    use supersym_machine::presets;

    fn lint_text(text: &str) -> Vec<Diagnostic> {
        let program = parse_program(text).unwrap();
        lint_program(&program, Some(&presets::base()))
    }

    fn codes(diagnostics: &[Diagnostic]) -> Vec<&'static str> {
        diagnostics.iter().map(|d| d.code()).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let diagnostics =
            lint_text("main:\n  movi r9, #1\n  add r10, r9, #2\n  st 0(r30), r10\n  halt\n");
        assert!(diagnostics.is_empty(), "{diagnostics:?}");
    }

    #[test]
    fn dangling_label_reported() {
        let diagnostics = lint_text("main:\n  jmp L5\n  halt\n");
        assert!(codes(&diagnostics).contains(&"dangling-label"));
    }

    #[test]
    fn fall_off_end_reported() {
        let diagnostics = lint_text("main:\n  movi r9, #1\n");
        assert!(codes(&diagnostics).contains(&"falls-off-end"));
    }

    #[test]
    fn conditional_fallthrough_off_end_reported() {
        let diagnostics = lint_text("main:\n  L0:\n  cmpgt r9, r1, #0\n  bt r9, L0\n");
        assert!(codes(&diagnostics).contains(&"falls-off-end"));
    }

    #[test]
    fn unreachable_code_reported() {
        let diagnostics = lint_text("main:\n  halt\n  movi r9, #1\n  movi r10, #2\n");
        let unreachable: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.code() == "unreachable-code")
            .collect();
        assert_eq!(unreachable.len(), 1, "one run, one diagnostic");
        assert_eq!(unreachable[0].instr(), Some(1));
    }

    #[test]
    fn def_before_use_reported() {
        // r9 (a temporary) read before any write on some path.
        let diagnostics = lint_text("main:\n  ld r10, 0(r9)\n  halt\n");
        assert!(codes(&diagnostics).contains(&"def-before-use"));
    }

    #[test]
    fn def_before_use_respects_joins() {
        // r9 defined on only one side of a diamond: still a warning.
        let text = "\
main:
  movi r12, #1
  cmpgt r10, r12, #0
  bt r10, L0
  movi r9, #1
  L0:
  add r11, r9, #0
  halt
";
        let diagnostics = lint_text(text);
        assert!(codes(&diagnostics).contains(&"def-before-use"));
        // Defined on *both* sides: clean.
        let text = "\
main:
  movi r12, #1
  cmpgt r10, r12, #0
  bt r10, L0
  movi r9, #1
  jmp L1
  L0:
  movi r9, #2
  L1:
  add r11, r9, #0
  halt
";
        let diagnostics = lint_text(text);
        assert!(
            !codes(&diagnostics).contains(&"def-before-use"),
            "{diagnostics:?}"
        );
    }

    #[test]
    fn loop_carried_definition_accepted() {
        // r9 written each iteration before the back edge re-reads it: the
        // first read is after a straight-line write, so no warning.
        let text = "\
main:
  movi r9, #8
  L0:
  sub r9, r9, #1
  cmpgt r10, r9, #0
  bt r10, L0
  halt
";
        let diagnostics = lint_text(text);
        assert!(diagnostics.is_empty(), "{diagnostics:?}");
    }

    #[test]
    fn args_defined_for_callee_not_entry() {
        // Reading r1 in a non-entry function is fine (argument register);
        // reading an argument register in `main` warns only when unwritten.
        let text = "\
main:
  call fn#1
  halt
helper:
  add r9, r1, #1
  ret
";
        let diagnostics = lint_text(text);
        assert!(diagnostics.is_empty(), "{diagnostics:?}");
    }

    #[test]
    fn call_defines_return_registers() {
        let text = "\
main:
  call fn#1
  add r9, r1, #0
  halt
helper:
  movi r1, #7
  ret
";
        let diagnostics = lint_text(text);
        assert!(diagnostics.is_empty(), "{diagnostics:?}");
    }

    #[test]
    fn unknown_call_target_reported() {
        let diagnostics = lint_text("main:\n  call fn#9\n  halt\n");
        assert!(codes(&diagnostics).contains(&"unknown-call-target"));
    }

    #[test]
    fn split_violation_reported() {
        // r63 is past the paper split's 16+26 allocatable prefix.
        let diagnostics = lint_text("main:\n  movi r63, #1\n  halt\n");
        assert!(codes(&diagnostics).contains(&"split-violation"));
        // Without a machine description the check is off.
        let program = parse_program("main:\n  movi r63, #1\n  halt\n").unwrap();
        assert!(lint_program(&program, None).is_empty());
    }

    #[test]
    fn missing_entry_reported() {
        let program = Program::new();
        let diagnostics = lint_program(&program, None);
        assert!(codes(&diagnostics).contains(&"missing-entry"));
    }

    #[test]
    fn empty_function_reported() {
        let mut program = Program::new();
        let id = program.add_function(supersym_isa::Function::new("f", vec![], vec![]));
        program.set_entry(id);
        let diagnostics = lint_program(&program, None);
        assert!(codes(&diagnostics).contains(&"falls-off-end"));
    }

    #[test]
    fn severities_are_as_documented() {
        let diagnostics = lint_text("main:\n  ld r10, 0(r9)\n  jmp L7\n");
        for d in &diagnostics {
            match d.code() {
                "def-before-use" | "unreachable-code" => assert!(!d.is_error(), "{d}"),
                _ => assert!(d.is_error(), "{d}"),
            }
        }
    }
}
