//! # supersym-verify
//!
//! Independent static verification for the supersym system: a safety net
//! under the compiler and simulator that re-derives, rather than trusts,
//! their invariants.
//!
//! Four analyses live here:
//!
//! - [`check_schedule`] — given a program before and after instruction
//!   scheduling, proves the schedule is a dependence-preserving permutation
//!   of each scheduling region. The dependence DAG (register RAW/WAR/WAW
//!   plus oracle-filtered memory edges) comes from `supersym-analyze`,
//!   shared with the scheduler in `supersym-codegen`: both sides consult
//!   the same dependence oracle, so the checker insists on exactly the
//!   constraints the scheduler was given — no more, no fewer
//!   ([`check_schedule_with`] pins a specific oracle).
//! - [`lint_program`] — machine-level program lint: dangling labels,
//!   unknown call targets, paths that fall off the end of a function,
//!   unreachable code, reads of registers no path has written, and (given a
//!   machine description) register-split violations.
//! - [`lint_machine`] — machine-description lint: class coverage, zero
//!   latencies and multiplicities, issue width versus aggregate unit
//!   multiplicity, and superpipelining-degree consistency.
//! - [`certify_pass`] — translation validation for the IR optimizer: given
//!   module snapshots before and after one pass, re-proves equivalence
//!   either structurally (block-local symbolic summaries normalized with
//!   the machine-verified rule table from `supersym-rules`) or
//!   differentially (both modules run under a fuel-bounded IR interpreter
//!   and every observable outcome compared). The optimizer is *not*
//!   trusted: a miscompiling pass produces an error diagnostic.
//!
//! All three report [`Diagnostic`]s rather than panicking, so callers can
//! collect every problem in one pass and decide severity policy themselves
//! ([`error_count`] helps). The paper's experiments (Jouppi & Wall, ASPLOS
//! 1989) hinge on the scheduler exploiting *exactly* the parallelism the
//! dependence structure allows — a scheduler that broke an edge would
//! silently inflate the measured instruction-level parallelism, which is
//! why the legality checker is wired into compilation in debug builds.
//!
//! ## Example
//!
//! ```
//! use supersym_isa::parse_program;
//! use supersym_verify::{check_schedule, lint_machine, lint_program};
//!
//! let program = parse_program("main:\n  movi r9, #1\n  halt\n").unwrap();
//! assert!(lint_program(&program, None).is_empty());
//! assert!(check_schedule(&program, &program).is_empty());
//!
//! let machine = supersym_machine::presets::base();
//! assert!(lint_machine(&machine).iter().all(|d| !d.is_error()));
//! ```

#![deny(missing_docs)]

mod certify;
mod exec;
mod lint;
mod schedule;

pub use certify::{certify_pass, CertMethod, PassCertificate};
pub use exec::{execute, ExecError, ExecSummary, Value};
pub use lint::lint_program;
pub use schedule::{
    check_schedule, check_schedule_with, EdgeKind, ScheduleViolation, ViolationKind,
};
pub use supersym_isa::{error_count, Diagnostic, Severity};

/// Lints a machine description, returning structured diagnostics instead of
/// panicking.
///
/// This is a thin, discoverable wrapper over
/// [`MachineConfig::validate`](supersym_machine::MachineConfig::validate);
/// it exists so all three verification entry points live in one crate.
#[must_use]
pub fn lint_machine(config: &supersym_machine::MachineConfig) -> Vec<Diagnostic> {
    config.validate()
}
