//! Per-pass translation validation: re-proves that an optimizer pass
//! preserved program behavior, using the *same* machine-verified rule
//! table the optimizer consulted — but through an independent proof path.
//!
//! Two tiers, tried in order:
//!
//! 1. **Structural** — every basic block of every function is summarized
//!    symbolically: instructions build hash-consed symbolic values (with
//!    constant folding, the verified rewrite rules, `shl`-by-constant
//!    canonicalized to multiplication, and associative/commutative chains
//!    flattened and sorted for operators whose properties the table has
//!    *proven*). A block's summary is its ordered list of observable
//!    events (array stores, calls — each capturing the global state the
//!    callee could see), its final variable state, and its normalized
//!    terminator. Equal summaries block-by-block mean the pass only
//!    rewrote expressions along proven equalities. This certifies LVN,
//!    strength reduction, DCE, and reassociation — including float
//!    reassociation, where chain comparison is by multiset so no claim
//!    about rounding is made.
//! 2. **Executor-differential** — when block structure changed (LICM
//!    inserts preheaders, DSE deletes cross-block stores) the modules are
//!    run under the fuel-bounded interpreter of [`crate::exec`] and every
//!    observable outcome is compared: return value, final global state
//!    (floats bit-exact), and dynamic call count.
//!
//! A pass that fails both tiers gets an **error** diagnostic: the
//! optimizer produced a module this validator cannot prove equivalent.
//! Fuel exhaustion yields a *warning* (inconclusive), never a false
//! rejection.

use std::collections::HashMap;

use supersym_analyze::consts::eval_int;
use supersym_ir::{
    CmpOp, FloatBinOp, Function, GlobalId, Inst, IntBinOp, Module, Terminator, VarRef,
};
use supersym_isa::Diagnostic;
use supersym_lang::ast::Ty;
use supersym_rules::{Rewrite, RuleTable, SimplifyCtx};

use crate::exec::{execute, ExecError};

/// How a pass was certified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertMethod {
    /// Block-by-block symbolic summaries matched.
    Structural,
    /// The fuel-bounded executor observed identical behavior.
    Differential,
}

impl std::fmt::Display for CertMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertMethod::Structural => f.write_str("structural"),
            CertMethod::Differential => f.write_str("differential"),
        }
    }
}

/// The outcome of validating one optimizer pass.
#[derive(Debug, Clone)]
pub struct PassCertificate {
    /// The pass name (as reported by the optimizer, e.g.
    /// `local_value_numbering`).
    pub pass: String,
    /// How equivalence was established; `None` if it was not.
    pub method: Option<CertMethod>,
    /// Errors (refuted equivalence) and warnings (inconclusive).
    pub diagnostics: Vec<Diagnostic>,
}

impl PassCertificate {
    /// True when equivalence was established by either tier.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.method.is_some()
    }
}

/// Fuel for one differential run: generous enough for every workload in
/// the suite, bounded so a pass that breaks a loop bound cannot hang the
/// compiler.
const EXEC_FUEL: u64 = 4_000_000;

/// Validates that `pass` transformed `before` into an equivalent `after`.
///
/// `table` must be the rule table the optimizer itself ran with: the
/// structural tier replays exactly those proven equalities and no others.
#[must_use]
pub fn certify_pass(
    before: &Module,
    after: &Module,
    pass: &str,
    table: &RuleTable,
) -> PassCertificate {
    let structural_reason = match structural_check(before, after, table) {
        Ok(()) => {
            return PassCertificate {
                pass: pass.to_string(),
                method: Some(CertMethod::Structural),
                diagnostics: Vec::new(),
            }
        }
        Err(reason) => reason,
    };
    let mut diagnostics = Vec::new();
    let method = match (execute(before, EXEC_FUEL), execute(after, EXEC_FUEL)) {
        (Ok(x), Ok(y)) => {
            if x.ret == y.ret && x.globals == y.globals && x.calls == y.calls {
                Some(CertMethod::Differential)
            } else {
                let what = if x.ret != y.ret {
                    format!("return value {:?} vs {:?}", x.ret, y.ret)
                } else if x.calls != y.calls {
                    format!("call count {} vs {}", x.calls, y.calls)
                } else {
                    "final global state".to_string()
                };
                diagnostics.push(Diagnostic::error(
                    "certify-diverged",
                    format!(
                        "pass `{pass}` changed observable behavior: {what} \
                         (structural tier: {structural_reason})"
                    ),
                ));
                None
            }
        }
        (Err(e), _) | (_, Err(e)) => {
            diagnostics.push(match e {
                ExecError::OutOfFuel | ExecError::CallDepth => Diagnostic::warning(
                    "certify-inconclusive",
                    format!(
                        "pass `{pass}` not certified: structural tier failed \
                         ({structural_reason}) and the differential run hit a bound ({e})"
                    ),
                ),
                ExecError::Malformed(_) => Diagnostic::error(
                    "certify-malformed",
                    format!("pass `{pass}` produced IR the validator cannot execute: {e}"),
                ),
            });
            None
        }
    };
    PassCertificate {
        pass: pass.to_string(),
        method,
        diagnostics,
    }
}

/// Tier 1: block-by-block symbolic comparison. `Err` carries the reason
/// the tier does not apply (shape change) or the first mismatch.
fn structural_check(before: &Module, after: &Module, table: &RuleTable) -> Result<(), String> {
    if before.globals != after.globals {
        return Err("global tables differ".to_string());
    }
    if before.entry != after.entry || before.funcs.len() != after.funcs.len() {
        return Err("function tables differ".to_string());
    }
    for (bf, af) in before.funcs.iter().zip(&after.funcs) {
        if bf.name != af.name || bf.ret != af.ret {
            return Err(format!("function `{}`: signature differs", bf.name));
        }
        if bf.vars != af.vars {
            return Err(format!("function `{}`: variable tables differ", bf.name));
        }
        if bf.blocks.len() != af.blocks.len() {
            return Err(format!(
                "function `{}`: block count {} vs {}",
                bf.name,
                bf.blocks.len(),
                af.blocks.len()
            ));
        }
        for index in 0..bf.blocks.len() {
            let sb = summarize_block(bf, index, table)
                .map_err(|e| format!("function `{}` block {index}: {e}", bf.name))?;
            let sa = summarize_block(af, index, table)
                .map_err(|e| format!("function `{}` block {index}: {e}", bf.name))?;
            if sb != sa {
                let detail = sb
                    .iter()
                    .zip(&sa)
                    .find(|(x, y)| x != y)
                    .map(|(x, y)| format!("`{x}` vs `{y}`"))
                    .unwrap_or_else(|| format!("{} vs {} summary lines", sb.len(), sa.len()));
                return Err(format!(
                    "function `{}` block {index}: summaries differ: {detail}",
                    bf.name
                ));
            }
        }
    }
    Ok(())
}

/// Whether an associative/commutative chain is over integer or float ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainOp {
    Int(IntBinOp),
    Float(FloatBinOp),
}

/// A hash-consed arena of symbolic values. Every value has a canonical
/// print (the interning key); integer constants, binary views (for the
/// rule matcher) and chain membership ride along.
struct Arena<'t> {
    table: &'t RuleTable,
    prints: Vec<String>,
    iconsts: Vec<Option<i64>>,
    fconsts: Vec<Option<u64>>,
    binviews: Vec<Option<(IntBinOp, usize, usize)>>,
    chains: Vec<Option<(ChainOp, Vec<usize>)>>,
    intern: HashMap<String, usize>,
}

impl SimplifyCtx for Arena<'_> {
    fn const_of(&self, vn: usize) -> Option<i64> {
        self.iconsts[vn]
    }

    fn expr_of(&self, vn: usize) -> Option<(IntBinOp, usize, usize)> {
        self.binviews[vn]
    }
}

impl<'t> Arena<'t> {
    fn new(table: &'t RuleTable) -> Self {
        Arena {
            table,
            prints: Vec::new(),
            iconsts: Vec::new(),
            fconsts: Vec::new(),
            binviews: Vec::new(),
            chains: Vec::new(),
            intern: HashMap::new(),
        }
    }

    fn intern(
        &mut self,
        print: String,
        iconst: Option<i64>,
        fconst: Option<u64>,
        binview: Option<(IntBinOp, usize, usize)>,
        chain: Option<(ChainOp, Vec<usize>)>,
    ) -> usize {
        if let Some(&sym) = self.intern.get(&print) {
            // First creation wins; re-derivations keep the original views.
            return sym;
        }
        let sym = self.prints.len();
        self.prints.push(print.clone());
        self.iconsts.push(iconst);
        self.fconsts.push(fconst);
        self.binviews.push(binview);
        self.chains.push(chain);
        self.intern.insert(print, sym);
        sym
    }

    fn int_const(&mut self, value: i64) -> usize {
        self.intern(value.to_string(), Some(value), None, None, None)
    }

    fn float_const(&mut self, bits: u64) -> usize {
        self.intern(format!("f{bits:016x}"), None, Some(bits), None, None)
    }

    fn leaf(&mut self, name: String) -> usize {
        self.intern(name, None, None, None, None)
    }

    fn members_of(&self, op: ChainOp, sym: usize) -> Vec<usize> {
        match &self.chains[sym] {
            Some((chain_op, members)) if *chain_op == op => members.clone(),
            _ => vec![sym],
        }
    }

    /// Builds the symbolic value of an integer binary operation, applying
    /// (in the optimizer's order) constant folding, the verified rewrite
    /// rules, the `x / 1` residual, `shl`-by-constant canonicalization,
    /// and — for operators with proven commutativity *and* associativity —
    /// chain flattening with exact constant combination and a sorted
    /// canonical member order.
    fn build_int(&mut self, op: IntBinOp, a: usize, b: usize) -> usize {
        let (a, b) = if op.is_commutative() && self.prints[b] < self.prints[a] {
            (b, a)
        } else {
            (a, b)
        };
        if let (Some(x), Some(y)) = (self.iconsts[a], self.iconsts[b]) {
            return self.int_const(eval_int(op, x, y));
        }
        let table = self.table;
        if let Some(rewrite) = supersym_rules::simplify(table, op, a, b, self) {
            return match rewrite {
                Rewrite::Operand(sym) => sym,
                Rewrite::Const(value) => self.int_const(value),
            };
        }
        // The optimizer's sole hand-written residual: x / 1 == x.
        if op == IntBinOp::Div && self.iconsts[b] == Some(1) {
            return a;
        }
        // Canonicalize shl-by-constant to multiplication (exact mod 2^64;
        // shift counts are taken mod 64 like the simulator does). This is
        // what lets strength reduction certify structurally.
        if op == IntBinOp::Shl {
            if let Some(k) = self.iconsts[b] {
                let multiplier = 1_i64.wrapping_shl(k as u32 & 63);
                let m = self.int_const(multiplier);
                return self.build_int(IntBinOp::Mul, a, m);
            }
        }
        if table.chainable(op) {
            let mut members = Vec::new();
            for side in [a, b] {
                members.extend(self.members_of(ChainOp::Int(op), side));
            }
            // Combine constant members exactly (order-independent for the
            // wrapping integer semantics of a proven comm+assoc operator).
            let mut folded: Option<i64> = None;
            members.retain(|&m| match self.iconsts[m] {
                Some(v) => {
                    folded = Some(match folded {
                        Some(acc) => eval_int(op, acc, v),
                        None => v,
                    });
                    false
                }
                None => true,
            });
            if let Some(value) = folded {
                let c = self.int_const(value);
                members.push(c);
            }
            members.sort_by(|&x, &y| self.prints[x].cmp(&self.prints[y]));
            if members.len() == 1 {
                return members[0];
            }
            let print = format!("({op:?}* {})", self.join(&members));
            return self.intern(
                print,
                None,
                None,
                Some((op, a, b)),
                Some((ChainOp::Int(op), members)),
            );
        }
        let print = format!("({op:?} {} {})", self.prints[a], self.prints[b]);
        self.intern(print, None, None, Some((op, a, b)), None)
    }

    /// Float binary operations: exact pairwise constant folding (mirrors
    /// the optimizer), and chains for `+`/`*` **by policy** — the same
    /// reassociation license the optimizer claims. Constants inside a
    /// mixed chain are combined in bit-pattern-sorted order so both sides
    /// of a comparison fold identically.
    fn build_float(&mut self, op: FloatBinOp, a: usize, b: usize) -> usize {
        let (a, b) = if op.is_commutative() && self.prints[b] < self.prints[a] {
            (b, a)
        } else {
            (a, b)
        };
        let apply = |x: f64, y: f64| match op {
            FloatBinOp::Add => x + y,
            FloatBinOp::Sub => x - y,
            FloatBinOp::Mul => x * y,
            FloatBinOp::Div => x / y,
        };
        if let (Some(x), Some(y)) = (self.fconsts[a], self.fconsts[b]) {
            let value = apply(f64::from_bits(x), f64::from_bits(y));
            return self.float_const(value.to_bits());
        }
        if matches!(op, FloatBinOp::Add | FloatBinOp::Mul) {
            let mut members = Vec::new();
            for side in [a, b] {
                members.extend(self.members_of(ChainOp::Float(op), side));
            }
            let mut const_bits: Vec<u64> = Vec::new();
            members.retain(|&m| match self.fconsts[m] {
                Some(bits) => {
                    const_bits.push(bits);
                    false
                }
                None => true,
            });
            if !const_bits.is_empty() {
                const_bits.sort_unstable();
                let folded = const_bits
                    .iter()
                    .map(|&bits| f64::from_bits(bits))
                    .reduce(apply)
                    .expect("non-empty");
                let c = self.float_const(folded.to_bits());
                members.push(c);
            }
            members.sort_by(|&x, &y| self.prints[x].cmp(&self.prints[y]));
            if members.len() == 1 {
                return members[0];
            }
            let print = format!("(f{op:?}* {})", self.join(&members));
            return self.intern(print, None, None, None, Some((ChainOp::Float(op), members)));
        }
        let print = format!("(f{op:?} {} {})", self.prints[a], self.prints[b]);
        self.intern(print, None, None, None, None)
    }

    fn build_float_cmp(&mut self, op: CmpOp, a: usize, b: usize) -> usize {
        if let (Some(x), Some(y)) = (self.fconsts[a], self.fconsts[b]) {
            let (x, y) = (f64::from_bits(x), f64::from_bits(y));
            let value = i64::from(match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            });
            return self.int_const(value);
        }
        let print = format!("(fcmp{op:?} {} {})", self.prints[a], self.prints[b]);
        self.intern(print, None, None, None, None)
    }

    fn build_cast(&mut self, to_float: bool, src: usize) -> usize {
        if to_float {
            if let Some(v) = self.iconsts[src] {
                return self.float_const((v as f64).to_bits());
            }
        } else if let Some(bits) = self.fconsts[src] {
            return self.int_const(f64::from_bits(bits) as i64);
        }
        let tag = if to_float { "float" } else { "int" };
        let print = format!("(cast.{tag} {})", self.prints[src]);
        self.intern(print, None, None, None, None)
    }

    fn join(&self, syms: &[usize]) -> String {
        syms.iter()
            .map(|&s| self.prints[s].as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Summarizes one basic block as a list of canonical lines: observable
/// events in order, final variable state, normalized terminator.
fn summarize_block(
    func: &Function,
    index: usize,
    table: &RuleTable,
) -> Result<Vec<String>, String> {
    let block = &func.blocks[index];
    let mut arena = Arena::new(table);
    let mut vreg: Vec<Option<usize>> = vec![None; func.vreg_tys.len()];
    let mut vars: HashMap<VarRef, usize> = HashMap::new();
    // Per-array known element values (the optimizer's store-to-load map).
    let mut elems: HashMap<GlobalId, Vec<(usize, usize)>> = HashMap::new();
    // Per-array clobber counters: bumped by stores to the array; calls
    // clobber everything, so the call counter joins every leaf name.
    let mut writes: HashMap<GlobalId, u64> = HashMap::new();
    let mut calls: u64 = 0;
    let mut events: Vec<String> = Vec::new();

    let init_name = |var: VarRef, calls: u64| match var {
        VarRef::Local(l) => format!("l{}", l.0),
        VarRef::Global(g) => format!("g{}@{}", g.0, calls),
    };
    let sym_of = |vreg: &[Option<usize>], r: supersym_ir::VReg| -> Result<usize, String> {
        vreg.get(r.0 as usize)
            .copied()
            .flatten()
            .ok_or_else(|| format!("use of undefined vreg %{}", r.0))
    };

    for inst in &block.insts {
        match inst {
            Inst::ConstInt { dst, value } => {
                vreg[dst.0 as usize] = Some(arena.int_const(*value));
            }
            Inst::ConstFloat { dst, value } => {
                vreg[dst.0 as usize] = Some(arena.float_const(value.to_bits()));
            }
            Inst::IntBin { op, dst, lhs, rhs } => {
                let a = sym_of(&vreg, *lhs)?;
                let b = sym_of(&vreg, *rhs)?;
                vreg[dst.0 as usize] = Some(arena.build_int(*op, a, b));
            }
            Inst::FloatBin { op, dst, lhs, rhs } => {
                let a = sym_of(&vreg, *lhs)?;
                let b = sym_of(&vreg, *rhs)?;
                vreg[dst.0 as usize] = Some(arena.build_float(*op, a, b));
            }
            Inst::FloatCmp { op, dst, lhs, rhs } => {
                let a = sym_of(&vreg, *lhs)?;
                let b = sym_of(&vreg, *rhs)?;
                vreg[dst.0 as usize] = Some(arena.build_float_cmp(*op, a, b));
            }
            Inst::Cast { dst, src, to } => {
                let s = sym_of(&vreg, *src)?;
                vreg[dst.0 as usize] = Some(arena.build_cast(*to == Ty::Float, s));
            }
            Inst::ReadVar { dst, var } => {
                let sym = match vars.get(var) {
                    Some(&sym) => sym,
                    None => {
                        let sym = arena.leaf(init_name(*var, calls));
                        vars.insert(*var, sym);
                        sym
                    }
                };
                vreg[dst.0 as usize] = Some(sym);
            }
            Inst::WriteVar { var, src } => {
                let sym = sym_of(&vreg, *src)?;
                vars.insert(*var, sym);
            }
            Inst::ReadElem {
                dst, arr, index, ..
            } => {
                let idx = sym_of(&vreg, *index)?;
                let known = elems
                    .get(arr)
                    .and_then(|known| known.iter().find(|(i, _)| *i == idx))
                    .map(|&(_, value)| value);
                let sym = match known {
                    Some(value) => value,
                    None => {
                        let epoch = writes.get(arr).copied().unwrap_or(0);
                        let name = format!("e{}@{}c{}[{}]", arr.0, epoch, calls, arena.prints[idx]);
                        let sym = arena.leaf(name);
                        elems.entry(*arr).or_default().push((idx, sym));
                        sym
                    }
                };
                vreg[dst.0 as usize] = Some(sym);
            }
            Inst::WriteElem {
                arr, index, src, ..
            } => {
                let idx = sym_of(&vreg, *index)?;
                let value = sym_of(&vreg, *src)?;
                events.push(format!(
                    "store e{}[{}] = {}",
                    arr.0, arena.prints[idx], arena.prints[value]
                ));
                // A store invalidates everything known about the array
                // except the stored element.
                elems.insert(*arr, vec![(idx, value)]);
                *writes.entry(*arr).or_default() += 1;
            }
            Inst::Call { dst, callee, args } => {
                let mut arg_prints = Vec::with_capacity(args.len());
                for arg in args {
                    let sym = sym_of(&vreg, *arg)?;
                    arg_prints.push(arena.prints[sym].clone());
                }
                // Snapshot the global variable state the callee can see;
                // entries still holding their initial value are implicit.
                let mut globals: Vec<String> = vars
                    .iter()
                    .filter_map(|(&var, &sym)| match var {
                        VarRef::Global(g) => {
                            if arena.prints[sym] == init_name(var, calls) {
                                None
                            } else {
                                Some(format!("g{}={}", g.0, arena.prints[sym]))
                            }
                        }
                        VarRef::Local(_) => None,
                    })
                    .collect();
                globals.sort();
                events.push(format!(
                    "call f{} ({}) [{}]",
                    callee,
                    arg_prints.join(" "),
                    globals.join(" ")
                ));
                // The callee may read or write any global or array element.
                vars.retain(|var, _| matches!(var, VarRef::Local(_)));
                elems.clear();
                calls += 1;
                if let Some(dst) = dst {
                    let sym = arena.leaf(format!("ret{calls}"));
                    vreg[dst.0 as usize] = Some(sym);
                }
            }
        }
    }

    let mut lines = events;
    let mut var_lines: Vec<String> = vars
        .iter()
        .filter(|(&var, &sym)| arena.prints[sym] != init_name(var, calls))
        .map(|(&var, &sym)| {
            let name = match var {
                VarRef::Local(l) => format!("l{}", l.0),
                VarRef::Global(g) => format!("g{}", g.0),
            };
            format!("var {name} = {}", arena.prints[sym])
        })
        .collect();
    var_lines.sort();
    lines.extend(var_lines);
    lines.push(match &block.term {
        Terminator::Jump(bb) => format!("jump b{}", bb.index()),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            let sym = sym_of(&vreg, *cond)?;
            match arena.iconsts[sym] {
                // Mirror the optimizer's branch folding.
                Some(value) => format!(
                    "jump b{}",
                    if value != 0 {
                        then_bb.index()
                    } else {
                        else_bb.index()
                    }
                ),
                None => format!(
                    "branch {} b{} b{}",
                    arena.prints[sym],
                    then_bb.index(),
                    else_bb.index()
                ),
            }
        }
        Terminator::Return(Some(v)) => format!("return {}", arena.prints[sym_of(&vreg, *v)?]),
        Terminator::Return(None) => "return".to_string(),
    });
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_rules::default_table;

    fn module(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        supersym_ir::lower(&ast).unwrap()
    }

    fn certified(src: &str, pass: &str, run: impl FnOnce(&mut Module) -> bool) -> PassCertificate {
        let before = module(src);
        let mut after = before.clone();
        assert!(run(&mut after), "pass must change the module");
        after.validate().unwrap();
        certify_pass(&before, &after, pass, default_table())
    }

    #[test]
    fn lvn_certifies_structurally() {
        let cert = certified(
            "global var g;
             fn main() -> int {
                 var a = g * 3 + 1;
                 var b = g * 3 + 1;
                 return (a + b) * 1 + (a - a);
             }",
            "local_value_numbering",
            supersym_opt::local_value_numbering,
        );
        assert_eq!(cert.method, Some(CertMethod::Structural), "{cert:?}");
    }

    #[test]
    fn branch_folding_certifies_structurally() {
        let cert = certified(
            "fn main() -> int { if (1) { return 5; } return 6; }",
            "local_value_numbering",
            supersym_opt::local_value_numbering,
        );
        assert_eq!(cert.method, Some(CertMethod::Structural), "{cert:?}");
    }

    #[test]
    fn strength_reduction_certifies_structurally() {
        let src = "global var g; fn main() -> int { return g * 8 + g * 3; }";
        let before = module(src);
        let mut after = before.clone();
        supersym_opt::local_value_numbering(&mut after);
        let lvn = after.clone();
        assert!(supersym_opt::strength_reduce(&mut after));
        let cert = certify_pass(&lvn, &after, "strength_reduce", default_table());
        assert_eq!(cert.method, Some(CertMethod::Structural), "{cert:?}");
    }

    #[test]
    fn dce_unreachable_block_removal_certifies_differentially() {
        // Lowering leaves a trailing unreachable block; DCE's first run
        // deletes it, so block-wise comparison does not apply.
        let src = "fn main(int x) -> int { var dead = x * 7; return x + 1; }";
        let before = module(src);
        let mut after = before.clone();
        supersym_opt::local_value_numbering(&mut after);
        let lvn = after.clone();
        assert!(supersym_opt::dead_code_elimination(&mut after));
        let cert = certify_pass(&lvn, &after, "dead_code_elimination", default_table());
        assert_eq!(cert.method, Some(CertMethod::Differential), "{cert:?}");
    }

    #[test]
    fn dce_pure_inst_removal_certifies_structurally() {
        // With the CFG already clean, a later DCE run only drops pure
        // instructions whose results went unused after LVN collapsed
        // `(x + y) - y` to `x` — block summaries are untouched.
        let src = "fn main(int x, int y) -> int { return (x + y) - y; }";
        let mut before = module(src);
        supersym_opt::dead_code_elimination(&mut before);
        supersym_opt::local_value_numbering(&mut before);
        let mut after = before.clone();
        assert!(supersym_opt::dead_code_elimination(&mut after));
        assert_eq!(before.funcs[0].blocks.len(), after.funcs[0].blocks.len());
        let cert = certify_pass(&before, &after, "dead_code_elimination", default_table());
        assert_eq!(cert.method, Some(CertMethod::Structural), "{cert:?}");
    }

    #[test]
    fn float_reassociation_certifies_structurally() {
        let cert = certified(
            "fn main(float a, float b, float c, float d) -> float {
                 return a + b + c + d;
             }",
            "reassociate",
            supersym_opt::reassociate,
        );
        assert_eq!(cert.method, Some(CertMethod::Structural), "{cert:?}");
    }

    #[test]
    fn int_reassociation_certifies_structurally() {
        let cert = certified(
            "fn main(int a, int b, int c, int d, int e) -> int {
                 return a ^ b ^ c ^ d ^ e;
             }",
            "reassociate",
            supersym_opt::reassociate,
        );
        assert_eq!(cert.method, Some(CertMethod::Structural), "{cert:?}");
    }

    #[test]
    fn licm_certifies_differentially() {
        let cert = certified(
            "global var g;
             global arr out[16];
             fn main() -> int {
                 for (i = 0; i < 16; i = i + 1) { out[i] = g * 3 + i; }
                 return out[7];
             }",
            "loop_invariant_code_motion",
            supersym_opt::loop_invariant_code_motion,
        );
        assert_eq!(cert.method, Some(CertMethod::Differential), "{cert:?}");
    }

    #[test]
    fn dse_certifies_differentially() {
        let cert = certified(
            "fn main(int x) -> int {
                 var dead = 0;
                 if (x > 0) { dead = x * 3; }
                 return x + 1;
             }",
            "dead_store_elimination",
            supersym_opt::dead_store_elimination,
        );
        assert_eq!(cert.method, Some(CertMethod::Differential), "{cert:?}");
    }

    #[test]
    fn tampered_constant_is_rejected() {
        let before = module("global var g; fn main() -> int { g = 40 + 2; return g; }");
        let mut after = before.clone();
        supersym_opt::local_value_numbering(&mut after);
        // Corrupt the folded constant: a miscompile the validator must catch.
        for block in &mut after.funcs[0].blocks {
            for inst in &mut block.insts {
                if let Inst::ConstInt { value, .. } = inst {
                    *value += 1;
                }
            }
        }
        let cert = certify_pass(&before, &after, "local_value_numbering", default_table());
        assert!(!cert.is_certified());
        assert_eq!(cert.diagnostics.len(), 1);
        assert_eq!(cert.diagnostics[0].code(), "certify-diverged");
    }

    #[test]
    fn tampered_store_order_is_rejected() {
        let before = module(
            "global arr a[4];
             fn main() -> int { a[0] = 1; a[1] = 2; return a[0] + a[1]; }",
        );
        let mut after = before.clone();
        // Swap the two stores' indices: same instructions, different meaning.
        let mut indices = Vec::new();
        for inst in &after.funcs[0].blocks[0].insts {
            if let Inst::WriteElem { src, .. } = inst {
                indices.push(*src);
            }
        }
        indices.reverse();
        let mut next = 0;
        for inst in &mut after.funcs[0].blocks[0].insts {
            if let Inst::WriteElem { src, .. } = inst {
                *src = indices[next];
                next += 1;
            }
        }
        let cert = certify_pass(&before, &after, "dead_store_elimination", default_table());
        assert!(!cert.is_certified(), "{cert:?}");
    }

    #[test]
    fn identical_modules_certify_trivially() {
        let m = module("fn main() -> int { return 1 + 2; }");
        let cert = certify_pass(&m, &m, "noop", default_table());
        assert_eq!(cert.method, Some(CertMethod::Structural));
    }
}
