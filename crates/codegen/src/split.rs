//! Call legalization: no vreg may be live across a `Call`.
//!
//! Values needed after a call are written to fresh compiler locals before
//! the call and re-read (into the same vreg) after it. This matches the
//! paper's model in which temporaries hold only "short-term expressions":
//! the callee is free to use every temporary register.

use std::collections::HashMap;
use supersym_ir::{Inst, Module, VReg, VarRef};

/// Splits vreg live ranges around every call. Idempotent.
pub fn split_live_across_calls(module: &mut Module) {
    for func in &mut module.funcs {
        for block_index in 0..func.blocks.len() {
            loop {
                let block = &func.blocks[block_index];
                // Find the first call with a vreg live across it.
                let mut fix: Option<(usize, Vec<VReg>)> = None;
                'calls: for (pos, inst) in block.insts.iter().enumerate() {
                    if !matches!(inst, Inst::Call { .. }) {
                        continue;
                    }
                    // Defs before (or at) the call...
                    let mut defined_before: HashMap<VReg, ()> = HashMap::new();
                    for earlier in &block.insts[..pos] {
                        if let Some(d) = earlier.dst() {
                            defined_before.insert(d, ());
                        }
                    }
                    // ...used strictly after it.
                    let mut live: Vec<VReg> = Vec::new();
                    let mut redefined: HashMap<VReg, ()> = HashMap::new();
                    if let Some(d) = block.insts[pos].dst() {
                        redefined.insert(d, ());
                    }
                    for later in &block.insts[pos + 1..] {
                        later.for_each_use(|v| {
                            if defined_before.contains_key(&v)
                                && !redefined.contains_key(&v)
                                && !live.contains(&v)
                            {
                                live.push(v);
                            }
                        });
                        if let Some(d) = later.dst() {
                            redefined.insert(d, ());
                        }
                    }
                    if let Some(v) = block.term.used_vreg() {
                        if defined_before.contains_key(&v)
                            && !redefined.contains_key(&v)
                            && !live.contains(&v)
                        {
                            live.push(v);
                        }
                    }
                    if !live.is_empty() {
                        fix = Some((pos, live));
                        break 'calls;
                    }
                }
                let Some((pos, live)) = fix else { break };
                // Insert WriteVar before the call and ReadVar after it.
                let mut pairs = Vec::with_capacity(live.len());
                for vreg in live {
                    let ty = func.vreg_ty(vreg);
                    let tmp = func.new_local(format!("$call{}", vreg.0), ty);
                    pairs.push((vreg, tmp));
                }
                let block = &mut func.blocks[block_index];
                for (offset, &(vreg, tmp)) in pairs.iter().enumerate() {
                    block.insts.insert(
                        pos + offset,
                        Inst::WriteVar {
                            var: VarRef::Local(tmp),
                            src: vreg,
                        },
                    );
                }
                let after = pos + pairs.len() + 1;
                for (offset, &(vreg, tmp)) in pairs.iter().enumerate() {
                    block.insts.insert(
                        after + offset,
                        Inst::ReadVar {
                            dst: vreg,
                            var: VarRef::Local(tmp),
                        },
                    );
                }
            }
        }
    }
}

/// Checks the invariant (used by tests and debug assertions).
#[must_use]
pub fn no_vreg_live_across_calls(module: &Module) -> bool {
    for func in &module.funcs {
        for block in &func.blocks {
            for (pos, inst) in block.insts.iter().enumerate() {
                if !matches!(inst, Inst::Call { .. }) {
                    continue;
                }
                let mut defined_before = std::collections::HashSet::new();
                for earlier in &block.insts[..pos] {
                    if let Some(d) = earlier.dst() {
                        defined_before.insert(d);
                    }
                }
                let mut redefined = std::collections::HashSet::new();
                if let Some(d) = block.insts[pos].dst() {
                    redefined.insert(d);
                }
                let mut ok = true;
                for later in &block.insts[pos + 1..] {
                    later.for_each_use(|v| {
                        if defined_before.contains(&v) && !redefined.contains(&v) {
                            ok = false;
                        }
                    });
                    if let Some(d) = later.dst() {
                        redefined.insert(d);
                    }
                }
                if let Some(v) = block.term.used_vreg() {
                    if defined_before.contains(&v) && !redefined.contains(&v) {
                        ok = false;
                    }
                }
                if !ok {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepare(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        supersym_ir::lower(&ast).unwrap()
    }

    #[test]
    fn splits_value_live_across_call() {
        let mut module = prepare(
            "fn f(int x) -> int { return x; }
             fn main() -> int { var a = 3; return a + f(4); }",
        );
        split_live_across_calls(&mut module);
        module.validate().unwrap();
        assert!(no_vreg_live_across_calls(&module));
    }

    #[test]
    fn idempotent() {
        let mut module = prepare(
            "fn f() -> int { return 1; }
             fn main() -> int { var a = 3; return a + f() + a; }",
        );
        split_live_across_calls(&mut module);
        let once = module.clone();
        split_live_across_calls(&mut module);
        assert_eq!(module, once);
    }

    #[test]
    fn nested_calls() {
        let mut module = prepare(
            "fn f(int x) -> int { return x * 2; }
             fn main() -> int { var a = 1; return a + f(a + f(a)); }",
        );
        split_live_across_calls(&mut module);
        module.validate().unwrap();
        assert!(no_vreg_live_across_calls(&module));
    }

    #[test]
    fn call_result_usable() {
        let mut module = prepare(
            "fn f() -> int { return 7; }
             fn main() -> int { return f() + f(); }",
        );
        split_live_across_calls(&mut module);
        module.validate().unwrap();
        assert!(no_vreg_live_across_calls(&module));
    }
}
