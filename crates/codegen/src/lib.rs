//! # supersym-codegen
//!
//! The back end of the supersym compiler: IR → MultiTitan-style machine
//! code, plus the **pipeline instruction scheduler** — the machine-
//! description-driven list scheduler at the heart of the paper's
//! methodology (§3: "The compile-time pipeline instruction scheduler knows
//! this and schedules the instructions in a basic block so that the
//! resulting stall time will be minimized").
//!
//! * [`split_live_across_calls`] — legalization: establishes the invariant
//!   that no virtual register is live across a call (values that must
//!   survive go through compiler temporaries, as in the paper's compiler).
//! * [`lower_program`] — instruction selection, temporary-register
//!   assignment from the [`TempPool`](supersym_regalloc::TempPool)s (with
//!   spilling when the pool runs dry), frame construction, the calling
//!   convention, and memory-disambiguation tagging
//!   ([`MemAlias`](supersym_isa::MemAlias)) that lets the scheduler overlap
//!   carefully-unrolled loop bodies.
//! * [`schedule_program`] — list scheduling of every straight-line region
//!   against a [`MachineConfig`](supersym_machine::MachineConfig):
//!   operation latencies, functional-unit multiplicity and issue latency,
//!   and the issue-width limit all shape the chosen order.
//!
//! ## Example
//!
//! ```
//! use supersym_machine::{presets, RegisterSplit};
//!
//! let ast = supersym_lang::parse(
//!     "fn main() -> int { var a = 3; var b = 4; return a * b + 2; }",
//! )?;
//! supersym_lang::check(&ast)?;
//! let mut ir = supersym_ir::lower(&ast)?;
//! supersym_codegen::split_live_across_calls(&mut ir);
//! let homes = supersym_regalloc::allocate(&ir, RegisterSplit::paper_default(), true);
//! let mut program = supersym_codegen::lower_program(&ir, &homes);
//! supersym_codegen::schedule_program(&mut program, &presets::ideal_superscalar(4));
//! program.validate()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod lower;
mod sched;
mod split;

pub use lower::{lower_program, MIN_TEMP_REGS};
pub use sched::{schedule_program, schedule_program_with};
pub use split::{no_vreg_live_across_calls, split_live_across_calls};
