//! The pipeline instruction scheduler.
//!
//! List scheduling of straight-line regions against a machine description
//! (§3): "The compile-time pipeline instruction scheduler knows this and
//! schedules the instructions in a basic block so that the resulting stall
//! time will be minimized" — and likewise for functional-unit issue
//! latencies: "In either case, the pipeline instruction scheduler tries to
//! minimize the resulting stall time."
//!
//! Regions are maximal runs of non-control instructions not crossed by any
//! branch target. Within a region the scheduler builds the dependence DAG —
//! register RAW/WAR/WAW plus memory edges filtered through
//! [`MemAlias::may_conflict`] — and greedily issues ready instructions in
//! critical-path order while simulating the machine's issue width, operation
//! latencies and functional-unit reservations.

use std::collections::HashSet;
use supersym_isa::{Function, Instr, Program, Reg};
use supersym_machine::MachineConfig;

/// Schedules every function of the program for `config`.
pub fn schedule_program(program: &mut Program, config: &MachineConfig) {
    for func in program.functions_mut() {
        schedule_function(func, config);
    }
}

fn schedule_function(func: &mut Function, config: &MachineConfig) {
    let boundaries: HashSet<usize> = func.label_targets().iter().copied().collect();
    let len = func.instrs().len();
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    let mut pos = 0;
    while pos < len {
        let at_label = pos > start && boundaries.contains(&pos);
        let control = func.instrs()[pos].is_control();
        if at_label {
            regions.push((start, pos));
            start = pos;
        }
        if control {
            regions.push((start, pos));
            start = pos + 1;
        }
        pos += 1;
    }
    if start < len {
        regions.push((start, len));
    }
    for (begin, end) in regions {
        if end - begin >= 2 {
            let scheduled = schedule_region(&func.instrs()[begin..end], config);
            func.instrs_mut()[begin..end].clone_from_slice(&scheduled);
        }
    }
}

/// Schedules one region, returning the new instruction order.
fn schedule_region(region: &[Instr], config: &MachineConfig) -> Vec<Instr> {
    let n = region.len();
    let latency = |i: usize| -> u64 { u64::from(config.latency(region[i].class())) };

    // Dependence edges (pred, succ, delay).
    let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut pred_count = vec![0_usize; n];
    let add_edge = |from: usize,
                    to: usize,
                    delay: u64,
                    succs: &mut Vec<Vec<(usize, u64)>>,
                    pred_count: &mut Vec<usize>| {
        succs[from].push((to, delay));
        pred_count[to] += 1;
    };

    // Register dependences via last-writer / readers tracking.
    const NUM_REGS: usize = Reg::DENSE_SPACE;
    let mut last_writer: Vec<Option<usize>> = vec![None; NUM_REGS];
    let mut readers_since_write: Vec<Vec<usize>> = vec![Vec::new(); NUM_REGS];
    for (index, instr) in region.iter().enumerate() {
        instr.uses().iter().for_each(|reg| {
            let slot = reg.dense_index();
            if let Some(writer) = last_writer[slot] {
                add_edge(writer, index, latency(writer), &mut succs, &mut pred_count);
                // RAW
            }
            readers_since_write[slot].push(index);
        });
        if let Some(def) = instr.def() {
            let slot = def.dense_index();
            if let Some(writer) = last_writer[slot] {
                add_edge(writer, index, latency(writer), &mut succs, &mut pred_count);
                // WAW
            }
            for &reader in &readers_since_write[slot] {
                if reader != index {
                    add_edge(reader, index, 0, &mut succs, &mut pred_count); // WAR
                }
            }
            last_writer[slot] = Some(index);
            readers_since_write[slot].clear();
        }
    }
    // Memory dependences.
    for i in 0..n {
        let Some((alias_i, store_i)) = region[i].mem_ref() else {
            continue;
        };
        for (j, other) in region.iter().enumerate().skip(i + 1) {
            let Some((alias_j, store_j)) = other.mem_ref() else {
                continue;
            };
            if !store_i && !store_j {
                continue; // loads commute
            }
            if alias_i.may_conflict(alias_j) {
                let delay = if store_i { latency(i) } else { 0 };
                add_edge(i, j, delay, &mut succs, &mut pred_count);
            }
        }
    }

    // Critical-path heights.
    let mut height = vec![0_u64; n];
    for i in (0..n).rev() {
        let tail = succs[i]
            .iter()
            .map(|&(j, delay)| delay + height[j])
            .max()
            .unwrap_or(0);
        height[i] = latency(i).max(1) + tail;
    }

    // Greedy list scheduling with machine simulation.
    let mut fu_slots: Vec<Vec<u64>> = config
        .functional_units()
        .iter()
        .map(|fu| vec![0_u64; fu.multiplicity() as usize])
        .collect();
    let fu_issue: Vec<u64> = config
        .functional_units()
        .iter()
        .map(|fu| u64::from(fu.issue_latency()))
        .collect();
    let width = config.issue_width();

    let mut remaining_preds = pred_count;
    let mut earliest = vec![0_u64; n];
    let mut scheduled = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut cycle = 0_u64;
    let mut issued_in_cycle = 0_u32;

    while order.len() < n {
        // Candidates issueable this cycle.
        let mut best: Option<usize> = None;
        if issued_in_cycle < width {
            for &i in &ready {
                if scheduled[i] || earliest[i] > cycle {
                    continue;
                }
                let fu = config.unit_of(region[i].class());
                if !fu_slots[fu].iter().any(|&free| free <= cycle) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        (height[i], std::cmp::Reverse(i)) > (height[b], std::cmp::Reverse(b))
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        match best {
            Some(i) => {
                scheduled[i] = true;
                issued_in_cycle += 1;
                let fu = config.unit_of(region[i].class());
                let slot = fu_slots[fu]
                    .iter_mut()
                    .find(|free| **free <= cycle)
                    .expect("checked above");
                *slot = cycle + fu_issue[fu];
                for &(j, delay) in &succs[i] {
                    earliest[j] = earliest[j].max(cycle + delay);
                    remaining_preds[j] -= 1;
                    if remaining_preds[j] == 0 {
                        ready.push(j);
                    }
                }
                order.push(i);
                ready.retain(|&r| !scheduled[r]);
            }
            None => {
                cycle += 1;
                issued_in_cycle = 0;
            }
        }
    }

    order.into_iter().map(|i| region[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_isa::{AsmBuilder, IntReg, MemAlias, Operand};
    use supersym_machine::presets;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    /// Two independent dependent-pairs interleaved badly:
    /// a1 -> a2 and b1 -> b2 with a2 right after a1.
    fn badly_ordered() -> Vec<Instr> {
        vec![
            Instr::Load {
                dst: r(1),
                base: IntReg::GP,
                offset: 0,
                alias: MemAlias::global(0).with_offset(0),
            },
            Instr::IntOp {
                op: supersym_isa::IntOp::Add,
                dst: r(2),
                lhs: r(1),
                rhs: Operand::Imm(1),
            },
            Instr::Load {
                dst: r(3),
                base: IntReg::GP,
                offset: 1,
                alias: MemAlias::global(0).with_offset(1),
            },
            Instr::IntOp {
                op: supersym_isa::IntOp::Add,
                dst: r(4),
                lhs: r(3),
                rhs: Operand::Imm(1),
            },
        ]
    }

    #[test]
    fn fills_load_delay_slots() {
        // Loads take 2 cycles on the MultiTitan: the scheduler should hoist
        // the second load into the first load's delay slot.
        let region = badly_ordered();
        let scheduled = schedule_region(&region, &presets::multititan());
        // Both loads first.
        assert!(matches!(scheduled[0], Instr::Load { .. }));
        assert!(matches!(scheduled[1], Instr::Load { .. }));
    }

    #[test]
    fn preserves_instruction_multiset() {
        let region = badly_ordered();
        let mut scheduled = schedule_region(&region, &presets::multititan());
        assert_eq!(scheduled.len(), region.len());
        for instr in &region {
            let pos = scheduled
                .iter()
                .position(|s| s == instr)
                .expect("instruction preserved");
            scheduled.remove(pos);
        }
    }

    #[test]
    fn respects_raw_dependences() {
        let region = badly_ordered();
        for config in [presets::base(), presets::multititan(), presets::cray1()] {
            let scheduled = schedule_region(&region, &config);
            // add-of-r1 must come after load-of-r1.
            let load1 = scheduled
                .iter()
                .position(|i| matches!(i, Instr::Load { dst, .. } if *dst == r(1)))
                .unwrap();
            let add1 = scheduled
                .iter()
                .position(|i| matches!(i, Instr::IntOp { dst, .. } if *dst == r(2)))
                .unwrap();
            assert!(load1 < add1);
        }
    }

    #[test]
    fn respects_memory_conflicts() {
        // Store then load of the same (unknown) location must not swap.
        let region = vec![
            Instr::Store {
                src: r(1),
                base: r(2),
                offset: 0,
                alias: MemAlias::unknown(),
            },
            Instr::Load {
                dst: r(3),
                base: r(4),
                offset: 0,
                alias: MemAlias::unknown(),
            },
        ];
        let scheduled = schedule_region(&region, &presets::multititan());
        assert!(matches!(scheduled[0], Instr::Store { .. }));
    }

    #[test]
    fn disambiguated_accesses_may_swap() {
        // Store a[i+1]; load a[i]: provably disjoint; the load (feeding
        // nothing) can move above the slow store when beneficial.
        let store = Instr::Store {
            src: r(1),
            base: r(2),
            offset: 0,
            alias: MemAlias::global(0).with_base(7).with_offset(1),
        };
        let load = Instr::Load {
            dst: r(3),
            base: r(2),
            offset: 0,
            alias: MemAlias::global(0).with_base(7).with_offset(0),
        };
        let use_load = Instr::IntOp {
            op: supersym_isa::IntOp::Add,
            dst: r(4),
            lhs: r(3),
            rhs: Operand::Imm(1),
        };
        let region = vec![store.clone(), load.clone(), use_load.clone()];
        let scheduled = schedule_region(&region, &presets::multititan());
        // The load's chain (load + dependent add, height 3) outweighs the
        // store: the load should be issued first.
        assert_eq!(scheduled[0], load);
    }

    #[test]
    fn war_not_reordered() {
        // use r1 then redefine r1: redefinition must not move first.
        let region = vec![
            Instr::IntOp {
                op: supersym_isa::IntOp::Add,
                dst: r(2),
                lhs: r(1),
                rhs: Operand::Imm(0),
            },
            Instr::MovI { dst: r(1), imm: 5 },
        ];
        let scheduled = schedule_region(&region, &presets::ideal_superscalar(4));
        assert!(matches!(scheduled[0], Instr::IntOp { .. }));
    }

    #[test]
    fn schedule_program_keeps_validity() {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 8);
        asm.bind(top);
        asm.load(r(2), IntReg::GP, 0);
        asm.add(r(3), r(2), 1.into());
        asm.store(r(3), IntReg::GP, 0);
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(4), r(1), 0.into());
        asm.br_true(r(4), top);
        asm.halt();
        let mut program = asm.finish_program();
        schedule_program(&mut program, &presets::multititan());
        program.validate().unwrap();
        assert_eq!(program.static_size(), 8);
    }
}
