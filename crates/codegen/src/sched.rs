//! The pipeline instruction scheduler.
//!
//! List scheduling of straight-line regions against a machine description
//! (§3): "The compile-time pipeline instruction scheduler knows this and
//! schedules the instructions in a basic block so that the resulting stall
//! time will be minimized" — and likewise for functional-unit issue
//! latencies: "In either case, the pipeline instruction scheduler tries to
//! minimize the resulting stall time."
//!
//! Regions are maximal runs of non-control instructions not crossed by any
//! branch target. Within a region the scheduler builds the dependence DAG —
//! register RAW/WAR/WAW plus memory edges filtered through a
//! [`DependenceOracle`] — and greedily issues ready instructions in
//! critical-path order while simulating the machine's issue width, operation
//! latencies and functional-unit reservations.
//!
//! The DAG construction lives in `supersym-analyze` ([`dependence_edges`]),
//! shared with the legality checker in `supersym-verify`: the scheduler and
//! its checker consult the *same* dependence oracle, so a disambiguation
//! fact is either available to both or to neither. The default oracle is
//! the symbolic one — §4.4's observation that "provided that the
//! compile-time disambiguation works well, loads from early copies of the
//! loop can be moved above stores from previous copies" is exactly the
//! edge-removal it performs.

use supersym_analyze::{
    dependence_edges, scheduling_regions, DepKind, LoopCarriedOracle, OracleKind,
};
use supersym_isa::{Function, Instr, Program};
use supersym_machine::MachineConfig;

/// Schedules every function of the program for `config` with the default
/// (symbolic) dependence oracle.
pub fn schedule_program(program: &mut Program, config: &MachineConfig) {
    schedule_program_with(program, config, OracleKind::default().as_loop_oracle());
}

/// Schedules every function of the program for `config`, disambiguating
/// memory through `oracle`.
///
/// The oracle is loop-aware so scheduler, legality checker and the static
/// bound layer (`supersym_analyze::bound`) share one fact source; carried
/// edges have distance >= 1 and thus never constrain the within-region
/// reorderings performed here.
pub fn schedule_program_with(
    program: &mut Program,
    config: &MachineConfig,
    oracle: &dyn LoopCarriedOracle,
) {
    for func in program.functions_mut() {
        schedule_function(func, config, oracle);
    }
}

fn schedule_function(func: &mut Function, config: &MachineConfig, oracle: &dyn LoopCarriedOracle) {
    for (begin, end) in scheduling_regions(func) {
        if end - begin >= 2 {
            let scheduled = schedule_region(&func.instrs()[begin..end], config, oracle);
            func.instrs_mut()[begin..end].clone_from_slice(&scheduled);
        }
    }
}

/// Schedules one region, returning the new instruction order.
fn schedule_region(
    region: &[Instr],
    config: &MachineConfig,
    oracle: &dyn LoopCarriedOracle,
) -> Vec<Instr> {
    let n = region.len();
    let latency = |i: usize| -> u64 { u64::from(config.latency(region[i].class())) };

    // The dependence DAG, with each edge weighted by the delay the machine
    // imposes between issue of its endpoints: a value edge (RAW/WAW) waits
    // out the writer's latency; anti edges (WAR) only forbid swapping; a
    // memory edge waits for a store to complete, while load-then-store
    // pairs again only forbid swapping.
    let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut pred_count = vec![0_usize; n];
    for edge in dependence_edges(region, oracle) {
        let delay = match edge.kind {
            DepKind::Raw(_) | DepKind::Waw(_) => latency(edge.pred),
            DepKind::War(_) => 0,
            DepKind::Memory => {
                let (_, is_store) = region[edge.pred].mem_ref().expect("memory edge");
                if is_store {
                    latency(edge.pred)
                } else {
                    0
                }
            }
        };
        succs[edge.pred].push((edge.succ, delay));
        pred_count[edge.succ] += 1;
    }

    // Critical-path heights.
    let mut height = vec![0_u64; n];
    for i in (0..n).rev() {
        let tail = succs[i]
            .iter()
            .map(|&(j, delay)| delay + height[j])
            .max()
            .unwrap_or(0);
        height[i] = latency(i).max(1) + tail;
    }

    // Greedy list scheduling with machine simulation.
    let mut fu_slots: Vec<Vec<u64>> = config
        .functional_units()
        .iter()
        .map(|fu| vec![0_u64; fu.multiplicity() as usize])
        .collect();
    let fu_issue: Vec<u64> = config
        .functional_units()
        .iter()
        .map(|fu| u64::from(fu.issue_latency()))
        .collect();
    let width = config.issue_width();

    let mut remaining_preds = pred_count;
    let mut earliest = vec![0_u64; n];
    let mut scheduled = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut cycle = 0_u64;
    let mut issued_in_cycle = 0_u32;

    while order.len() < n {
        // Candidates issueable this cycle.
        let mut best: Option<usize> = None;
        if issued_in_cycle < width {
            for &i in &ready {
                if scheduled[i] || earliest[i] > cycle {
                    continue;
                }
                let fu = config.unit_of(region[i].class());
                if !fu_slots[fu].iter().any(|&free| free <= cycle) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        (height[i], std::cmp::Reverse(i)) > (height[b], std::cmp::Reverse(b))
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        match best {
            Some(i) => {
                scheduled[i] = true;
                issued_in_cycle += 1;
                let fu = config.unit_of(region[i].class());
                let slot = fu_slots[fu]
                    .iter_mut()
                    .find(|free| **free <= cycle)
                    .expect("checked above");
                *slot = cycle + fu_issue[fu];
                for &(j, delay) in &succs[i] {
                    earliest[j] = earliest[j].max(cycle + delay);
                    remaining_preds[j] -= 1;
                    if remaining_preds[j] == 0 {
                        ready.push(j);
                    }
                }
                order.push(i);
                ready.retain(|&r| !scheduled[r]);
            }
            None => {
                // Nothing issues this cycle: jump straight to the next
                // cycle at which a ready instruction clears its data or
                // functional-unit constraint. Stepping one cycle at a time
                // here would make scheduling time proportional to the
                // operation latencies, which are input-controlled through
                // `.machine` descriptions (a multi-billion-cycle latency
                // must not turn compilation into a spin).
                let mut next = u64::MAX;
                for &i in &ready {
                    if scheduled[i] {
                        continue;
                    }
                    let fu = config.unit_of(region[i].class());
                    let slot_free = fu_slots[fu].iter().copied().min().unwrap_or(0);
                    next = next.min(earliest[i].max(slot_free).max(cycle + 1));
                }
                cycle = if next == u64::MAX { cycle + 1 } else { next };
                issued_in_cycle = 0;
            }
        }
    }

    order.into_iter().map(|i| region[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_analyze::{ConservativeOracle, SymbolicOracle};
    use supersym_isa::{AsmBuilder, IntReg, MemAlias, Operand};
    use supersym_machine::presets;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn schedule_region_default(region: &[Instr], config: &MachineConfig) -> Vec<Instr> {
        schedule_region(region, config, OracleKind::default().as_loop_oracle())
    }

    /// Two independent dependent-pairs interleaved badly:
    /// a1 -> a2 and b1 -> b2 with a2 right after a1.
    fn badly_ordered() -> Vec<Instr> {
        vec![
            Instr::Load {
                dst: r(1),
                base: IntReg::GP,
                offset: 0,
                alias: MemAlias::global(0).with_offset(0),
            },
            Instr::IntOp {
                op: supersym_isa::IntOp::Add,
                dst: r(2),
                lhs: r(1),
                rhs: Operand::Imm(1),
            },
            Instr::Load {
                dst: r(3),
                base: IntReg::GP,
                offset: 1,
                alias: MemAlias::global(0).with_offset(1),
            },
            Instr::IntOp {
                op: supersym_isa::IntOp::Add,
                dst: r(4),
                lhs: r(3),
                rhs: Operand::Imm(1),
            },
        ]
    }

    #[test]
    fn fills_load_delay_slots() {
        // Loads take 2 cycles on the MultiTitan: the scheduler should hoist
        // the second load into the first load's delay slot.
        let region = badly_ordered();
        let scheduled = schedule_region_default(&region, &presets::multititan());
        // Both loads first.
        assert!(matches!(scheduled[0], Instr::Load { .. }));
        assert!(matches!(scheduled[1], Instr::Load { .. }));
    }

    #[test]
    fn preserves_instruction_multiset() {
        let region = badly_ordered();
        let mut scheduled = schedule_region_default(&region, &presets::multititan());
        assert_eq!(scheduled.len(), region.len());
        for instr in &region {
            let pos = scheduled
                .iter()
                .position(|s| s == instr)
                .expect("instruction preserved");
            scheduled.remove(pos);
        }
    }

    #[test]
    fn respects_raw_dependences() {
        let region = badly_ordered();
        for config in [presets::base(), presets::multititan(), presets::cray1()] {
            let scheduled = schedule_region_default(&region, &config);
            // add-of-r1 must come after load-of-r1.
            let load1 = scheduled
                .iter()
                .position(|i| matches!(i, Instr::Load { dst, .. } if *dst == r(1)))
                .unwrap();
            let add1 = scheduled
                .iter()
                .position(|i| matches!(i, Instr::IntOp { dst, .. } if *dst == r(2)))
                .unwrap();
            assert!(load1 < add1);
        }
    }

    #[test]
    fn respects_memory_conflicts() {
        // Store then load of the same (unknown) location must not swap —
        // here even the symbolic oracle sees distinct base registers with
        // equal offsets, which may collide.
        let region = vec![
            Instr::Store {
                src: r(1),
                base: r(2),
                offset: 0,
                alias: MemAlias::unknown(),
            },
            Instr::Load {
                dst: r(3),
                base: r(4),
                offset: 0,
                alias: MemAlias::unknown(),
            },
        ];
        let scheduled = schedule_region_default(&region, &presets::multititan());
        assert!(matches!(scheduled[0], Instr::Store { .. }));
    }

    #[test]
    fn disambiguated_accesses_may_swap() {
        // Store a[i+1]; load a[i]: provably disjoint; the load (feeding
        // nothing) can move above the slow store when beneficial.
        let store = Instr::Store {
            src: r(1),
            base: r(2),
            offset: 0,
            alias: MemAlias::global(0).with_base(7).with_offset(1),
        };
        let load = Instr::Load {
            dst: r(3),
            base: r(2),
            offset: 0,
            alias: MemAlias::global(0).with_base(7).with_offset(0),
        };
        let use_load = Instr::IntOp {
            op: supersym_isa::IntOp::Add,
            dst: r(4),
            lhs: r(3),
            rhs: Operand::Imm(1),
        };
        let region = vec![store.clone(), load.clone(), use_load.clone()];
        let scheduled = schedule_region_default(&region, &presets::multititan());
        // The load's chain (load + dependent add, height 3) outweighs the
        // store: the load should be issued first.
        assert_eq!(scheduled[0], load);
    }

    #[test]
    fn symbolic_oracle_swaps_what_annotations_cannot() {
        // Same base register, distinct offsets, *unknown* aliases: the
        // annotation-only oracle must keep the order, the symbolic oracle
        // proves the words disjoint and may hoist the load with its chain.
        let store = Instr::Store {
            src: r(1),
            base: r(5),
            offset: 1,
            alias: MemAlias::unknown(),
        };
        let load = Instr::Load {
            dst: r(3),
            base: r(5),
            offset: 0,
            alias: MemAlias::unknown(),
        };
        let use_load = Instr::IntOp {
            op: supersym_isa::IntOp::Add,
            dst: r(4),
            lhs: r(3),
            rhs: Operand::Imm(1),
        };
        let region = vec![store.clone(), load.clone(), use_load];
        let conservative = schedule_region(&region, &presets::multititan(), &ConservativeOracle);
        assert_eq!(conservative[0], store, "annotations alone cannot reorder");
        let symbolic = schedule_region(&region, &presets::multititan(), &SymbolicOracle);
        assert_eq!(symbolic[0], load, "base+offset reasoning frees the load");
    }

    #[test]
    fn war_not_reordered() {
        // use r1 then redefine r1: redefinition must not move first.
        let region = vec![
            Instr::IntOp {
                op: supersym_isa::IntOp::Add,
                dst: r(2),
                lhs: r(1),
                rhs: Operand::Imm(0),
            },
            Instr::MovI { dst: r(1), imm: 5 },
        ];
        let scheduled = schedule_region_default(&region, &presets::ideal_superscalar(4));
        assert!(matches!(scheduled[0], Instr::IntOp { .. }));
    }

    #[test]
    fn schedule_program_keeps_validity() {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 8);
        asm.bind(top);
        asm.load(r(2), IntReg::GP, 0);
        asm.add(r(3), r(2), 1.into());
        asm.store(r(3), IntReg::GP, 0);
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(4), r(1), 0.into());
        asm.br_true(r(4), top);
        asm.halt();
        let mut program = asm.finish_program();
        schedule_program(&mut program, &presets::multititan());
        program.validate().unwrap();
        assert_eq!(program.static_size(), 8);
    }
}
