//! IR → machine-code lowering.
//!
//! Responsibilities: instruction selection, expression-temporary assignment
//! (with spilling when the configured temporary pool runs dry — the paper's
//! register-pressure effect, §4.4), frame layout, the calling convention
//! (`r1..r8`/`f1..f8` argument registers, results in `r1`/`f1`), home-
//! register moves for promoted variables, and [`MemAlias`] disambiguation
//! tags consumed by the scheduler.

use std::collections::HashMap;
use supersym_ir as ir;
use supersym_ir::{GlobalKind, Inst, Terminator, VReg, VarRef};
use supersym_isa::{
    FpCmpOp, FpOp, FpReg, Function, Instr, IntOp, IntReg, Label, MemAlias, Operand, Program,
};
use supersym_lang::ast::Ty;
use supersym_regalloc::{Home, HomeAllocation, TempPool};

/// The smallest temporary pool lowering can work with, per register file:
/// a binary operation needs two operand registers plus a result, and the
/// spill path needs one more to reload into while both operands are held.
/// Callers with a configurable split must check against this *before*
/// calling [`lower_program`] (the pipeline surfaces it as a typed
/// `RegisterSplit` error); the assert below is the last-line defense.
pub const MIN_TEMP_REGS: usize = 4;

/// Lowers an IR module (with homes allocated) to a machine program.
///
/// Requires [`crate::split_live_across_calls`] to have run; lowering
/// `debug_assert`s that no vreg is live across a call.
///
/// # Panics
///
/// Panics if the IR is malformed (use [`ir::Module::validate`] first) or if
/// a temporary pool holds fewer than [`MIN_TEMP_REGS`] registers.
#[must_use]
pub fn lower_program(module: &ir::Module, homes: &HomeAllocation) -> Program {
    assert!(
        homes.int_temps().len() >= MIN_TEMP_REGS && homes.fp_temps().len() >= MIN_TEMP_REGS,
        "temporary pools must hold at least {MIN_TEMP_REGS} registers"
    );
    let mut program = Program::new();
    program.alloc_globals(homes.globals_words());
    // Data image for memory-resident scalars.
    for (index, global) in module.globals.iter().enumerate() {
        if let GlobalKind::Scalar { init } = global.kind {
            if let Home::GlobalMem(addr) = homes.global_home(ir::GlobalId(index as u32)) {
                let bits = match global.ty {
                    Ty::Int => init as i64,
                    Ty::Float => init.to_bits() as i64,
                };
                if bits != 0 {
                    program.add_data(addr, bits);
                }
            }
        }
    }
    let mut next_stack_sym = module.globals.len() as u32;
    for (func_index, func) in module.funcs.iter().enumerate() {
        let lowered = FnLower::new(module, homes, func_index, func, &mut next_stack_sym).run();
        program.add_function(lowered);
    }
    program.set_entry(supersym_isa::FuncId::new(module.entry as u32));
    program
}

/// Where a vreg's value currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Loc {
    /// In a temporary integer register.
    TempInt(IntReg),
    /// In a temporary FP register.
    TempFp(FpReg),
    /// Readable from a variable's home register (until that variable is
    /// written).
    PinnedInt(IntReg, VarRef),
    /// Readable from a variable's FP home register.
    PinnedFp(FpReg, VarRef),
    /// A known integer constant, not yet materialized (folded into
    /// immediate operands where the ISA allows).
    Imm(i64),
    /// Spilled to a frame slot.
    Spill(usize),
}

struct FnLower<'a> {
    module: &'a ir::Module,
    homes: &'a HomeAllocation,
    func_index: usize,
    func: &'a ir::Function,
    out: Vec<Instr>,
    labels: Vec<usize>,
    int_pool: TempPool<IntReg>,
    fp_pool: TempPool<FpReg>,
    locs: HashMap<VReg, Loc>,
    /// Per-vreg positions of uses within the current block (terminator =
    /// `insts.len()`).
    use_positions: HashMap<VReg, Vec<usize>>,
    cur_pos: usize,
    /// vreg -> lowering position of its definition (for alias-tag validity).
    def_pos: HashMap<VReg, usize>,
    /// var -> position of the last tag-clearing event (write or call).
    last_clear: HashMap<VarRef, usize>,
    /// index-base fingerprint -> current alias base tag.
    cur_tags: HashMap<u64, u32>,
    /// var -> index-base fingerprints whose tags it invalidates.
    base_vars: HashMap<VarRef, Vec<u64>>,
    next_tag: u32,
    spill_slots: HashMap<VReg, usize>,
    spill_count: usize,
    frame_patch: Vec<usize>,
    /// Stack alias symbols: one per frame/spill slot.
    slot_syms: HashMap<usize, u32>,
    next_stack_sym: &'a mut u32,
}

impl<'a> FnLower<'a> {
    fn new(
        module: &'a ir::Module,
        homes: &'a HomeAllocation,
        func_index: usize,
        func: &'a ir::Function,
        next_stack_sym: &'a mut u32,
    ) -> Self {
        FnLower {
            module,
            homes,
            func_index,
            func,
            out: Vec::new(),
            labels: vec![0; func.blocks.len()],
            int_pool: TempPool::new(homes.int_temps().to_vec()),
            fp_pool: TempPool::new(homes.fp_temps().to_vec()),
            locs: HashMap::new(),
            use_positions: HashMap::new(),
            cur_pos: 0,
            def_pos: HashMap::new(),
            last_clear: HashMap::new(),
            cur_tags: HashMap::new(),
            base_vars: HashMap::new(),
            next_tag: 0,
            spill_slots: HashMap::new(),
            spill_count: 0,
            frame_patch: Vec::new(),
            slot_syms: HashMap::new(),
            next_stack_sym,
        }
    }

    fn run(mut self) -> Function {
        self.emit_prologue();
        if self.func_index == self.module.entry {
            self.emit_global_reg_inits();
        }
        for block_index in 0..self.func.blocks.len() {
            self.labels[block_index] = self.out.len();
            self.lower_block(block_index);
        }
        // Patch frame-size immediates.
        let total = self.homes.frame_words(self.func_index) + self.spill_count;
        for &pos in &self.frame_patch {
            if let Instr::IntOp { rhs, .. } = &mut self.out[pos] {
                *rhs = Operand::Imm(total as i64);
            }
        }
        Function::new(self.func.name.clone(), self.out, self.labels)
    }

    fn emit(&mut self, instr: Instr) {
        self.out.push(instr);
    }

    fn emit_prologue(&mut self) {
        // sp -= frame (patched once spill count is known).
        self.frame_patch.push(self.out.len());
        self.emit(Instr::IntOp {
            op: IntOp::Sub,
            dst: IntReg::SP,
            lhs: IntReg::SP,
            rhs: Operand::Imm(0),
        });
        // Move parameters from argument registers to their homes.
        let mut int_seen = 0_u8;
        let mut fp_seen = 0_u8;
        let mut params: Vec<(usize, usize)> = self
            .func
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.param_index.map(|p| (p, i)))
            .collect();
        params.sort_unstable();
        for (_, var_index) in params {
            let var = ir::LocalId(var_index as u32);
            let ty = self.func.vars[var_index].ty;
            let home = self.homes.local_home(self.func_index, var);
            match ty {
                Ty::Int => {
                    int_seen += 1;
                    let arg = IntReg::new_unchecked(int_seen);
                    match home {
                        Home::IntReg(r) => self.emit(Instr::IntOp {
                            op: IntOp::Add,
                            dst: r,
                            lhs: arg,
                            rhs: Operand::Imm(0),
                        }),
                        Home::Frame(slot) => {
                            let alias = self.slot_alias(slot);
                            self.emit(Instr::Store {
                                src: arg,
                                base: IntReg::SP,
                                offset: slot as i64,
                                alias,
                            });
                        }
                        _ => unreachable!("locals live in registers or frames"),
                    }
                }
                Ty::Float => {
                    fp_seen += 1;
                    let arg = FpReg::new_unchecked(fp_seen);
                    match home {
                        Home::FpReg(r) => self.emit(Instr::FMov { dst: r, src: arg }),
                        Home::Frame(slot) => {
                            let alias = self.slot_alias(slot);
                            self.emit(Instr::StoreF {
                                src: arg,
                                base: IntReg::SP,
                                offset: slot as i64,
                                alias,
                            });
                        }
                        _ => unreachable!("locals live in registers or frames"),
                    }
                }
            }
        }
    }

    /// Initial values for globals promoted to registers (entry function
    /// preamble).
    fn emit_global_reg_inits(&mut self) {
        for (index, global) in self.module.globals.iter().enumerate() {
            let GlobalKind::Scalar { init } = global.kind else {
                continue;
            };
            if init == 0.0 {
                continue; // registers reset to zero
            }
            match self.homes.global_home(ir::GlobalId(index as u32)) {
                Home::IntReg(r) => self.emit(Instr::MovI {
                    dst: r,
                    imm: init as i64,
                }),
                Home::FpReg(r) => self.emit(Instr::MovF { dst: r, imm: init }),
                _ => {}
            }
        }
    }

    fn slot_sym(&mut self, key: usize) -> u32 {
        if let Some(&sym) = self.slot_syms.get(&key) {
            sym
        } else {
            let sym = *self.next_stack_sym;
            *self.next_stack_sym += 1;
            self.slot_syms.insert(key, sym);
            sym
        }
    }

    fn slot_alias(&mut self, slot: usize) -> MemAlias {
        let sym = self.slot_sym(slot);
        MemAlias::stack(sym).with_offset(0)
    }

    fn lower_block(&mut self, block_index: usize) {
        let block = &self.func.blocks[block_index];
        // Reset per-block state.
        self.int_pool.reset();
        self.fp_pool.reset();
        self.locs.clear();
        self.use_positions.clear();
        self.def_pos.clear();
        self.last_clear.clear();
        self.cur_tags.clear();
        self.base_vars.clear();
        // Use positions.
        for (pos, inst) in block.insts.iter().enumerate() {
            inst.for_each_use(|v| self.use_positions.entry(v).or_default().push(pos));
        }
        if let Some(v) = block.term.used_vreg() {
            self.use_positions
                .entry(v)
                .or_default()
                .push(block.insts.len());
        }

        for (pos, inst) in block.insts.iter().enumerate() {
            self.cur_pos = pos;
            self.lower_inst(inst);
        }
        self.cur_pos = block.insts.len();
        self.lower_terminator(block_index, &block.term);
    }

    fn next_use(&self, vreg: VReg, after: usize) -> Option<usize> {
        self.use_positions
            .get(&vreg)
            .and_then(|uses| uses.iter().copied().find(|&u| u > after))
    }

    fn is_dead_after(&self, vreg: VReg, pos: usize) -> bool {
        self.next_use(vreg, pos).is_none()
    }

    fn release_loc(&mut self, vreg: VReg) {
        match self.locs.remove(&vreg) {
            Some(Loc::TempInt(r)) => self.int_pool.release(r),
            Some(Loc::TempFp(r)) => self.fp_pool.release(r),
            _ => {}
        }
    }

    fn release_if_dead(&mut self, vreg: VReg) {
        if self.is_dead_after(vreg, self.cur_pos) {
            self.release_loc(vreg);
        }
    }

    /// Allocates an integer temp, spilling the temp whose next use is
    /// farthest if the pool is dry. `locked` registers are exempt.
    fn alloc_int(&mut self, locked: &[IntReg]) -> IntReg {
        if let Some(r) = self.int_pool.alloc() {
            return r;
        }
        // Pick a victim.
        let victim = self
            .locs
            .iter()
            .filter_map(|(&v, &loc)| match loc {
                Loc::TempInt(r) if !locked.contains(&r) => {
                    Some((v, r, self.next_use(v, self.cur_pos).unwrap_or(usize::MAX)))
                }
                _ => None,
            })
            .max_by_key(|&(_, _, next)| next)
            .map(|(v, r, _)| (v, r))
            .expect("an unlocked integer temp must exist");
        let (victim_vreg, reg) = victim;
        let slot = self.spill_slot(victim_vreg);
        let alias = self.spill_alias(slot);
        self.emit(Instr::Store {
            src: reg,
            base: IntReg::SP,
            offset: self.spill_offset(slot),
            alias,
        });
        self.locs.insert(victim_vreg, Loc::Spill(slot));
        reg
    }

    fn alloc_fp(&mut self, locked: &[FpReg]) -> FpReg {
        if let Some(r) = self.fp_pool.alloc() {
            return r;
        }
        let victim = self
            .locs
            .iter()
            .filter_map(|(&v, &loc)| match loc {
                Loc::TempFp(r) if !locked.contains(&r) => {
                    Some((v, r, self.next_use(v, self.cur_pos).unwrap_or(usize::MAX)))
                }
                _ => None,
            })
            .max_by_key(|&(_, _, next)| next)
            .map(|(v, r, _)| (v, r))
            .expect("an unlocked FP temp must exist");
        let (victim_vreg, reg) = victim;
        let slot = self.spill_slot(victim_vreg);
        let alias = self.spill_alias(slot);
        self.emit(Instr::StoreF {
            src: reg,
            base: IntReg::SP,
            offset: self.spill_offset(slot),
            alias,
        });
        self.locs.insert(victim_vreg, Loc::Spill(slot));
        reg
    }

    fn spill_slot(&mut self, vreg: VReg) -> usize {
        if let Some(&slot) = self.spill_slots.get(&vreg) {
            slot
        } else {
            let slot = self.spill_count;
            self.spill_count += 1;
            self.spill_slots.insert(vreg, slot);
            slot
        }
    }

    /// Spill slots live after the frame words.
    fn spill_offset(&self, slot: usize) -> i64 {
        (self.homes.frame_words(self.func_index) + slot) as i64
    }

    fn spill_alias(&mut self, slot: usize) -> MemAlias {
        // Spill slots share the frame-slot keyspace at frame_words + slot.
        let key = self.homes.frame_words(self.func_index) + slot;
        let sym = self.slot_sym(key);
        MemAlias::stack(sym).with_offset(0)
    }

    /// Fetches a vreg into an integer register.
    fn use_int(&mut self, vreg: VReg, locked: &[IntReg]) -> IntReg {
        match self.locs.get(&vreg).copied() {
            Some(Loc::TempInt(r)) | Some(Loc::PinnedInt(r, _)) => r,
            Some(Loc::Imm(value)) => {
                let r = self.alloc_int(locked);
                self.emit(Instr::MovI { dst: r, imm: value });
                self.locs.insert(vreg, Loc::TempInt(r));
                r
            }
            Some(Loc::Spill(slot)) => {
                let r = self.alloc_int(locked);
                let alias = self.spill_alias(slot);
                self.emit(Instr::Load {
                    dst: r,
                    base: IntReg::SP,
                    offset: self.spill_offset(slot),
                    alias,
                });
                self.locs.insert(vreg, Loc::TempInt(r));
                r
            }
            other => panic!("vreg {vreg:?} not in an int location: {other:?}"),
        }
    }

    /// Fetches a vreg as an ALU operand, using an immediate when possible.
    fn use_int_operand(&mut self, vreg: VReg, locked: &[IntReg]) -> Operand {
        if let Some(&Loc::Imm(value)) = self.locs.get(&vreg) {
            Operand::Imm(value)
        } else {
            Operand::Reg(self.use_int(vreg, locked))
        }
    }

    /// The constant a vreg holds, if it is an unmaterialized immediate.
    fn const_of(&self, vreg: VReg) -> Option<i64> {
        match self.locs.get(&vreg) {
            Some(&Loc::Imm(value)) => Some(value),
            _ => None,
        }
    }

    fn use_fp(&mut self, vreg: VReg, locked: &[FpReg]) -> FpReg {
        match self.locs.get(&vreg).copied() {
            Some(Loc::TempFp(r)) | Some(Loc::PinnedFp(r, _)) => r,
            Some(Loc::Spill(slot)) => {
                let r = self.alloc_fp(locked);
                let alias = self.spill_alias(slot);
                self.emit(Instr::LoadF {
                    dst: r,
                    base: IntReg::SP,
                    offset: self.spill_offset(slot),
                    alias,
                });
                self.locs.insert(vreg, Loc::TempFp(r));
                r
            }
            other => panic!("vreg {vreg:?} not in an fp location: {other:?}"),
        }
    }

    /// Allocates the destination register for a (re)defined vreg.
    fn def_int(&mut self, vreg: VReg, locked: &[IntReg]) -> IntReg {
        self.release_loc(vreg); // redefinition drops the old location
        let r = self.alloc_int(locked);
        self.locs.insert(vreg, Loc::TempInt(r));
        self.def_pos.insert(vreg, self.cur_pos);
        r
    }

    fn def_fp(&mut self, vreg: VReg, locked: &[FpReg]) -> FpReg {
        self.release_loc(vreg);
        let r = self.alloc_fp(locked);
        self.locs.insert(vreg, Loc::TempFp(r));
        self.def_pos.insert(vreg, self.cur_pos);
        r
    }

    /// Current alias tag for an index base fingerprint (fresh after any of
    /// its variables is written or clobbered by a call).
    fn tag_for(&mut self, base: u64) -> u32 {
        if let Some(&tag) = self.cur_tags.get(&base) {
            tag
        } else {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.cur_tags.insert(base, tag);
            tag
        }
    }

    fn elem_alias(
        &mut self,
        arr: ir::GlobalId,
        index: VReg,
        origin: Option<&ir::IndexOrigin>,
    ) -> MemAlias {
        let base_alias = MemAlias::global(arr.0);
        match origin {
            None => base_alias,
            Some(ir::IndexOrigin::Absolute(delta)) => base_alias.with_offset(*delta),
            Some(ir::IndexOrigin::Relative { base, vars, delta }) => {
                // The tag is valid only if no clearing event (a write to any
                // base variable, or a call when one is global) occurred
                // since the index was computed.
                let defined = self.def_pos.get(&index).copied().unwrap_or(0);
                for var in vars {
                    if let Some(&cleared) = self.last_clear.get(var) {
                        if cleared >= defined {
                            return base_alias;
                        }
                    }
                }
                let tag = self.tag_for(*base);
                for var in vars {
                    self.base_vars.entry(*var).or_default().push(*base);
                }
                base_alias.with_base(tag).with_offset(*delta)
            }
        }
    }

    /// Invalidates alias tags whose base expressions read `var`.
    fn clear_tags_for_var(&mut self, var: VarRef) {
        self.last_clear.insert(var, self.cur_pos);
        if let Some(bases) = self.base_vars.remove(&var) {
            for base in bases {
                self.cur_tags.remove(&base);
            }
        }
    }

    fn arr_base(&self, arr: ir::GlobalId) -> i64 {
        match self.homes.global_home(arr) {
            Home::GlobalMem(addr) => addr as i64,
            _ => unreachable!("arrays always live in memory"),
        }
    }

    fn lower_inst(&mut self, inst: &Inst) {
        match inst {
            Inst::ConstInt { dst, value } => {
                // Deferred: most uses fold the constant into an immediate
                // operand; only register-position uses materialize a MovI.
                self.release_loc(*dst);
                self.locs.insert(*dst, Loc::Imm(*value));
                self.def_pos.insert(*dst, self.cur_pos);
                self.release_if_dead(*dst);
            }
            Inst::ConstFloat { dst, value } => {
                let r = self.def_fp(*dst, &[]);
                self.emit(Instr::MovF {
                    dst: r,
                    imm: *value,
                });
                self.release_if_dead(*dst);
            }
            Inst::IntBin { op, dst, lhs, rhs } => {
                // Fold a constant into the immediate operand slot; commute
                // when the constant is on the left and the op allows it.
                let (mut lhs, mut rhs) = (*lhs, *rhs);
                if self.const_of(lhs).is_some()
                    && self.const_of(rhs).is_none()
                    && op.is_commutative()
                {
                    std::mem::swap(&mut lhs, &mut rhs);
                }
                let a = self.use_int(lhs, &[]);
                let b = self.use_int_operand(rhs, &[a]);
                self.release_if_dead(lhs);
                self.release_if_dead(rhs);
                let locked = match b {
                    Operand::Reg(r) => vec![a, r],
                    Operand::Imm(_) => vec![a],
                };
                let d = self.def_int(*dst, &locked);
                self.emit(Instr::IntOp {
                    op: int_op(*op),
                    dst: d,
                    lhs: a,
                    rhs: b,
                });
                self.release_if_dead(*dst);
            }
            Inst::FloatBin { op, dst, lhs, rhs } => {
                let a = self.use_fp(*lhs, &[]);
                let b = self.use_fp(*rhs, &[a]);
                self.release_if_dead(*lhs);
                self.release_if_dead(*rhs);
                let d = self.def_fp(*dst, &[a, b]);
                self.emit(Instr::FpOp {
                    op: fp_op(*op),
                    dst: d,
                    lhs: a,
                    rhs: b,
                });
                self.release_if_dead(*dst);
            }
            Inst::FloatCmp { op, dst, lhs, rhs } => {
                let a = self.use_fp(*lhs, &[]);
                let b = self.use_fp(*rhs, &[a]);
                self.release_if_dead(*lhs);
                self.release_if_dead(*rhs);
                let d = self.def_int(*dst, &[]);
                self.emit(Instr::FpCmp {
                    op: fp_cmp(*op),
                    dst: d,
                    lhs: a,
                    rhs: b,
                });
                self.release_if_dead(*dst);
            }
            Inst::Cast { dst, src, to } => match to {
                Ty::Float => {
                    let s = self.use_int(*src, &[]);
                    self.release_if_dead(*src);
                    let d = self.def_fp(*dst, &[]);
                    self.emit(Instr::IToF { dst: d, src: s });
                    self.release_if_dead(*dst);
                }
                Ty::Int => {
                    let s = self.use_fp(*src, &[]);
                    self.release_if_dead(*src);
                    let d = self.def_int(*dst, &[]);
                    self.emit(Instr::FToI { dst: d, src: s });
                    self.release_if_dead(*dst);
                }
            },
            Inst::ReadVar { dst, var } => {
                self.def_pos.insert(*dst, self.cur_pos);
                self.release_loc(*dst);
                match self.homes.home(self.func_index, *var) {
                    Home::IntReg(r) => {
                        self.locs.insert(*dst, Loc::PinnedInt(r, *var));
                    }
                    Home::FpReg(r) => {
                        self.locs.insert(*dst, Loc::PinnedFp(r, *var));
                    }
                    Home::GlobalMem(addr) => {
                        let sym = self.var_sym(*var);
                        let alias = MemAlias::global(sym).with_offset(0);
                        match self.func.vreg_ty(*dst) {
                            Ty::Int => {
                                let d = self.def_int(*dst, &[]);
                                self.emit(Instr::Load {
                                    dst: d,
                                    base: IntReg::GP,
                                    offset: addr as i64,
                                    alias,
                                });
                            }
                            Ty::Float => {
                                let d = self.def_fp(*dst, &[]);
                                self.emit(Instr::LoadF {
                                    dst: d,
                                    base: IntReg::GP,
                                    offset: addr as i64,
                                    alias,
                                });
                            }
                        }
                    }
                    Home::Frame(slot) => {
                        let alias = self.slot_alias(slot);
                        match self.func.vreg_ty(*dst) {
                            Ty::Int => {
                                let d = self.def_int(*dst, &[]);
                                self.emit(Instr::Load {
                                    dst: d,
                                    base: IntReg::SP,
                                    offset: slot as i64,
                                    alias,
                                });
                            }
                            Ty::Float => {
                                let d = self.def_fp(*dst, &[]);
                                self.emit(Instr::LoadF {
                                    dst: d,
                                    base: IntReg::SP,
                                    offset: slot as i64,
                                    alias,
                                });
                            }
                        }
                    }
                }
                self.release_if_dead(*dst);
            }
            Inst::WriteVar { var, src } => {
                // Materialize pinned readers of the old value first. When
                // none are needed, the defining instruction of `src` can
                // often be retargeted to write the home register directly.
                let retarget_ok = !self.has_needed_pinned(*var);
                self.unpin_var(*var);
                self.clear_tags_for_var(*var);
                match self.homes.home(self.func_index, *var) {
                    Home::IntReg(home) => {
                        if let Some(&Loc::Imm(value)) = self.locs.get(src) {
                            self.emit(Instr::MovI {
                                dst: home,
                                imm: value,
                            });
                        } else if retarget_ok && self.try_retarget_int(*src, home) {
                            // Defining instruction now writes the home.
                        } else {
                            let s = self.use_int(*src, &[]);
                            self.emit(Instr::IntOp {
                                op: IntOp::Add,
                                dst: home,
                                lhs: s,
                                rhs: Operand::Imm(0),
                            });
                        }
                    }
                    Home::FpReg(home) => {
                        if retarget_ok && self.try_retarget_fp(*src, home) {
                            // Defining instruction now writes the home.
                        } else {
                            let s = self.use_fp(*src, &[]);
                            self.emit(Instr::FMov { dst: home, src: s });
                        }
                    }
                    Home::GlobalMem(addr) => {
                        let sym = self.var_sym(*var);
                        let alias = MemAlias::global(sym).with_offset(0);
                        match self.func.vreg_ty(*src) {
                            Ty::Int => {
                                let s = self.use_int(*src, &[]);
                                self.emit(Instr::Store {
                                    src: s,
                                    base: IntReg::GP,
                                    offset: addr as i64,
                                    alias,
                                });
                            }
                            Ty::Float => {
                                let s = self.use_fp(*src, &[]);
                                self.emit(Instr::StoreF {
                                    src: s,
                                    base: IntReg::GP,
                                    offset: addr as i64,
                                    alias,
                                });
                            }
                        }
                    }
                    Home::Frame(slot) => {
                        let alias = self.slot_alias(slot);
                        match self.func.vreg_ty(*src) {
                            Ty::Int => {
                                let s = self.use_int(*src, &[]);
                                self.emit(Instr::Store {
                                    src: s,
                                    base: IntReg::SP,
                                    offset: slot as i64,
                                    alias,
                                });
                            }
                            Ty::Float => {
                                let s = self.use_fp(*src, &[]);
                                self.emit(Instr::StoreF {
                                    src: s,
                                    base: IntReg::SP,
                                    offset: slot as i64,
                                    alias,
                                });
                            }
                        }
                    }
                }
                self.release_if_dead(*src);
            }
            Inst::ReadElem {
                dst,
                arr,
                index,
                origin,
            } => {
                let alias = self.elem_alias(*arr, *index, origin.as_ref());
                let mut base = self.arr_base(*arr);
                let idx = if let Some(k) = self.const_of(*index) {
                    // Wrapping: a huge constant index must fold into the
                    // same (bogus) address the add instruction would have
                    // computed, for the executor's bounds check to reject
                    // — not overflow at compile time.
                    base = base.wrapping_add(k);
                    IntReg::GP
                } else {
                    self.use_int(*index, &[])
                };
                self.release_if_dead(*index);
                match self.func.vreg_ty(*dst) {
                    Ty::Int => {
                        let d = self.def_int(*dst, &[idx]);
                        self.emit(Instr::Load {
                            dst: d,
                            base: idx,
                            offset: base,
                            alias,
                        });
                    }
                    Ty::Float => {
                        let d = self.def_fp(*dst, &[]);
                        self.emit(Instr::LoadF {
                            dst: d,
                            base: idx,
                            offset: base,
                            alias,
                        });
                    }
                }
                self.release_if_dead(*dst);
            }
            Inst::WriteElem {
                arr,
                index,
                src,
                origin,
            } => {
                let alias = self.elem_alias(*arr, *index, origin.as_ref());
                let mut base = self.arr_base(*arr);
                let idx = if let Some(k) = self.const_of(*index) {
                    // Wrapping, as for `ReadElem` above.
                    base = base.wrapping_add(k);
                    IntReg::GP
                } else {
                    self.use_int(*index, &[])
                };
                match self.func.vreg_ty(*src) {
                    Ty::Int => {
                        let s = self.use_int(*src, &[idx]);
                        self.emit(Instr::Store {
                            src: s,
                            base: idx,
                            offset: base,
                            alias,
                        });
                    }
                    Ty::Float => {
                        let s = self.use_fp(*src, &[]);
                        self.emit(Instr::StoreF {
                            src: s,
                            base: idx,
                            offset: base,
                            alias,
                        });
                    }
                }
                self.release_if_dead(*index);
                self.release_if_dead(*src);
            }
            Inst::Call { dst, callee, args } => {
                // Marshal arguments.
                let mut int_seen = 0_u8;
                let mut fp_seen = 0_u8;
                for &arg in args {
                    match self.func.vreg_ty(arg) {
                        Ty::Int => {
                            int_seen += 1;
                            assert!(
                                (int_seen as usize) <= supersym_regalloc::NUM_ARG_REGS,
                                "too many integer arguments"
                            );
                            let dst = IntReg::new_unchecked(int_seen);
                            if let Some(&Loc::Imm(value)) = self.locs.get(&arg) {
                                self.emit(Instr::MovI { dst, imm: value });
                            } else {
                                let s = self.use_int(arg, &[]);
                                self.emit(Instr::IntOp {
                                    op: IntOp::Add,
                                    dst,
                                    lhs: s,
                                    rhs: Operand::Imm(0),
                                });
                            }
                        }
                        Ty::Float => {
                            fp_seen += 1;
                            assert!(
                                (fp_seen as usize) <= supersym_regalloc::NUM_ARG_REGS,
                                "too many FP arguments"
                            );
                            let s = self.use_fp(arg, &[]);
                            self.emit(Instr::FMov {
                                dst: FpReg::new_unchecked(fp_seen),
                                src: s,
                            });
                        }
                    }
                    self.release_if_dead(arg);
                }
                // The callee may write any global: pinned globals and their
                // alias tags are invalid afterwards.
                let pinned_globals: Vec<VReg> = self
                    .locs
                    .iter()
                    .filter_map(|(&v, &loc)| match loc {
                        Loc::PinnedInt(_, VarRef::Global(_))
                        | Loc::PinnedFp(_, VarRef::Global(_)) => Some(v),
                        _ => None,
                    })
                    .collect();
                for v in pinned_globals {
                    // Either the vreg is dead, or split_live_across_calls
                    // arranged a re-read that redefines it after this call;
                    // in both cases the stale pinned location must go.
                    self.locs.remove(&v);
                }
                for index in 0..self.module.globals.len() {
                    if matches!(self.module.globals[index].kind, GlobalKind::Scalar { .. }) {
                        let var = VarRef::Global(ir::GlobalId(index as u32));
                        self.clear_tags_for_var(var);
                    }
                }
                self.emit(Instr::Call {
                    target: supersym_isa::FuncId::new(*callee),
                });
                if let Some(dst) = dst {
                    match self.func.vreg_ty(*dst) {
                        Ty::Int => {
                            let d = self.def_int(*dst, &[]);
                            self.emit(Instr::IntOp {
                                op: IntOp::Add,
                                dst: d,
                                lhs: IntReg::new_unchecked(1),
                                rhs: Operand::Imm(0),
                            });
                        }
                        Ty::Float => {
                            let d = self.def_fp(*dst, &[]);
                            self.emit(Instr::FMov {
                                dst: d,
                                src: FpReg::new_unchecked(1),
                            });
                        }
                    }
                    self.release_if_dead(*dst);
                }
            }
        }
    }

    /// Whether any vreg pinned to `var`'s home register still has uses at
    /// or after the current position.
    fn has_needed_pinned(&self, var: VarRef) -> bool {
        self.locs.iter().any(|(&v, &loc)| match loc {
            Loc::PinnedInt(_, pvar) | Loc::PinnedFp(_, pvar) if pvar == var => self
                .use_positions
                .get(&v)
                .is_some_and(|uses| uses.iter().any(|&p| p >= self.cur_pos)),
            _ => false,
        })
    }

    /// If the most recently emitted instruction defines `src`'s register
    /// and `src` dies here, rewrites that instruction to write `home`
    /// directly (eliding the register move). Returns success.
    fn try_retarget_int(&mut self, src: VReg, home: IntReg) -> bool {
        let Some(&Loc::TempInt(reg)) = self.locs.get(&src) else {
            return false;
        };
        if !self.is_dead_after(src, self.cur_pos) {
            return false;
        }
        let Some(last) = self.out.last_mut() else {
            return false;
        };
        if last.def() != Some(supersym_isa::Reg::Int(reg)) {
            return false;
        }
        match last {
            Instr::IntOp { dst, .. }
            | Instr::MovI { dst, .. }
            | Instr::FpCmp { dst, .. }
            | Instr::FToI { dst, .. }
            | Instr::Load { dst, .. } => *dst = home,
            _ => return false,
        }
        self.release_loc(src);
        true
    }

    /// FP counterpart of [`Self::try_retarget_int`].
    fn try_retarget_fp(&mut self, src: VReg, home: FpReg) -> bool {
        let Some(&Loc::TempFp(reg)) = self.locs.get(&src) else {
            return false;
        };
        if !self.is_dead_after(src, self.cur_pos) {
            return false;
        }
        let Some(last) = self.out.last_mut() else {
            return false;
        };
        if last.def() != Some(supersym_isa::Reg::Fp(reg)) {
            return false;
        }
        match last {
            Instr::FpOp { dst, .. }
            | Instr::MovF { dst, .. }
            | Instr::FMov { dst, .. }
            | Instr::IToF { dst, .. }
            | Instr::LoadF { dst, .. } => *dst = home,
            _ => return false,
        }
        self.release_loc(src);
        true
    }

    /// Materializes still-needed vregs pinned to `var`'s home register
    /// before the variable is overwritten.
    fn unpin_var(&mut self, var: VarRef) {
        let pinned: Vec<(VReg, Loc)> = self
            .locs
            .iter()
            .filter_map(|(&v, &loc)| match loc {
                Loc::PinnedInt(_, pvar) | Loc::PinnedFp(_, pvar) if pvar == var => Some((v, loc)),
                _ => None,
            })
            .collect();
        for (vreg, loc) in pinned {
            let needed = self
                .use_positions
                .get(&vreg)
                .is_some_and(|uses| uses.iter().any(|&p| p >= self.cur_pos));
            if !needed {
                self.locs.remove(&vreg);
                continue;
            }
            match loc {
                Loc::PinnedInt(home, _) => {
                    let r = self.alloc_int(&[home]);
                    self.emit(Instr::IntOp {
                        op: IntOp::Add,
                        dst: r,
                        lhs: home,
                        rhs: Operand::Imm(0),
                    });
                    self.locs.insert(vreg, Loc::TempInt(r));
                }
                Loc::PinnedFp(home, _) => {
                    let r = self.alloc_fp(&[home]);
                    self.emit(Instr::FMov { dst: r, src: home });
                    self.locs.insert(vreg, Loc::TempFp(r));
                }
                _ => unreachable!(),
            }
        }
    }

    /// Alias symbol for a memory-resident global scalar (locals in memory
    /// use frame-slot aliases instead).
    fn var_sym(&mut self, var: VarRef) -> u32 {
        match var {
            VarRef::Global(g) => g.0,
            VarRef::Local(_) => unreachable!("memory-resident locals use slot aliases"),
        }
    }

    fn lower_terminator(&mut self, block_index: usize, term: &Terminator) {
        let next = block_index + 1;
        match term {
            Terminator::Jump(target) => {
                if target.index() != next {
                    self.emit(Instr::Jmp {
                        target: Label::new(target.0),
                    });
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.use_int(*cond, &[]);
                self.release_if_dead(*cond);
                if else_bb.index() == next {
                    self.emit(Instr::Br {
                        cond: c,
                        expect: true,
                        target: Label::new(then_bb.0),
                    });
                } else if then_bb.index() == next {
                    self.emit(Instr::Br {
                        cond: c,
                        expect: false,
                        target: Label::new(else_bb.0),
                    });
                } else {
                    self.emit(Instr::Br {
                        cond: c,
                        expect: true,
                        target: Label::new(then_bb.0),
                    });
                    self.emit(Instr::Jmp {
                        target: Label::new(else_bb.0),
                    });
                }
            }
            Terminator::Return(value) => {
                if let Some(value) = value {
                    match self.func.vreg_ty(*value) {
                        Ty::Int => {
                            if let Some(&Loc::Imm(imm)) = self.locs.get(value) {
                                self.emit(Instr::MovI {
                                    dst: IntReg::new_unchecked(1),
                                    imm,
                                });
                            } else {
                                let s = self.use_int(*value, &[]);
                                self.emit(Instr::IntOp {
                                    op: IntOp::Add,
                                    dst: IntReg::new_unchecked(1),
                                    lhs: s,
                                    rhs: Operand::Imm(0),
                                });
                            }
                        }
                        Ty::Float => {
                            let s = self.use_fp(*value, &[]);
                            self.emit(Instr::FMov {
                                dst: FpReg::new_unchecked(1),
                                src: s,
                            });
                        }
                    }
                    self.release_if_dead(*value);
                }
                self.frame_patch.push(self.out.len());
                self.emit(Instr::IntOp {
                    op: IntOp::Add,
                    dst: IntReg::SP,
                    lhs: IntReg::SP,
                    rhs: Operand::Imm(0),
                });
                self.emit(Instr::Ret);
            }
        }
    }
}

fn int_op(op: ir::IntBinOp) -> IntOp {
    use ir::{CmpOp, IntBinOp};
    match op {
        IntBinOp::Add => IntOp::Add,
        IntBinOp::Sub => IntOp::Sub,
        IntBinOp::Mul => IntOp::Mul,
        IntBinOp::Div => IntOp::Div,
        IntBinOp::Rem => IntOp::Rem,
        IntBinOp::And => IntOp::And,
        IntBinOp::Or => IntOp::Or,
        IntBinOp::Xor => IntOp::Xor,
        IntBinOp::Shl => IntOp::Sll,
        IntBinOp::Shr => IntOp::Sra,
        IntBinOp::Cmp(CmpOp::Eq) => IntOp::CmpEq,
        IntBinOp::Cmp(CmpOp::Ne) => IntOp::CmpNe,
        IntBinOp::Cmp(CmpOp::Lt) => IntOp::CmpLt,
        IntBinOp::Cmp(CmpOp::Le) => IntOp::CmpLe,
        IntBinOp::Cmp(CmpOp::Gt) => IntOp::CmpGt,
        IntBinOp::Cmp(CmpOp::Ge) => IntOp::CmpGe,
    }
}

fn fp_op(op: ir::FloatBinOp) -> FpOp {
    match op {
        ir::FloatBinOp::Add => FpOp::FAdd,
        ir::FloatBinOp::Sub => FpOp::FSub,
        ir::FloatBinOp::Mul => FpOp::FMul,
        ir::FloatBinOp::Div => FpOp::FDiv,
    }
}

fn fp_cmp(op: ir::CmpOp) -> FpCmpOp {
    match op {
        ir::CmpOp::Eq => FpCmpOp::FEq,
        ir::CmpOp::Ne => FpCmpOp::FNe,
        ir::CmpOp::Lt => FpCmpOp::FLt,
        ir::CmpOp::Le => FpCmpOp::FLe,
        ir::CmpOp::Gt => FpCmpOp::FGt,
        ir::CmpOp::Ge => FpCmpOp::FGe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_machine::RegisterSplit;

    fn compile(src: &str, promote: bool) -> Program {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        let mut ir = supersym_ir::lower(&ast).unwrap();
        crate::split_live_across_calls(&mut ir);
        ir.validate().unwrap();
        let homes = supersym_regalloc::allocate(&ir, RegisterSplit::paper_default(), promote);
        let program = lower_program(&ir, &homes);
        program.validate().unwrap();
        program
    }

    #[test]
    fn lowers_arithmetic_program() {
        let program = compile("fn main() -> int { return 6 * 7; }", true);
        assert_eq!(program.functions().len(), 1);
        assert!(program.static_size() >= 4);
    }

    #[test]
    fn lowers_calls_and_params() {
        let program = compile(
            "fn add(int a, int b) -> int { return a + b; }
             fn main() -> int { return add(20, 22); }",
            true,
        );
        assert_eq!(program.functions().len(), 2);
        let main = program.function_by_name("main").unwrap().1;
        assert!(main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Call { .. })));
    }

    #[test]
    fn promoted_global_init_in_entry() {
        let program = compile(
            "global var g = 42;
             fn main() -> int { g = g + 1; return g; }",
            true,
        );
        let main = program.function_by_name("main").unwrap().1;
        assert!(main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::MovI { imm: 42, .. })));
        // Promoted: no loads/stores for g.
        assert!(!main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Load { .. } | Instr::Store { .. })));
    }

    #[test]
    fn unpromoted_global_in_memory() {
        let program = compile(
            "global var g = 42;
             fn main() -> int { g = g + 1; return g; }",
            false,
        );
        let main = program.function_by_name("main").unwrap().1;
        assert!(main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Load { .. })));
        assert!(main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Store { .. })));
        // Initial value in the data image instead of a MovI 42.
        assert!(program.data().iter().any(|&(_, v)| v == 42));
    }

    #[test]
    fn array_access_uses_base_offset() {
        let program = compile(
            "global var pad; global arr a[8];
             fn main() -> int { a[3] = 9; return a[3]; }",
            false,
        );
        let main = program.function_by_name("main").unwrap().1;
        // Array sits after the scalar (base 1); the constant index 3 folds
        // into a GP-relative store at offset 4.
        assert!(main.instrs().iter().any(|i| matches!(
            i,
            Instr::Store {
                offset: 4,
                base: IntReg::GP,
                ..
            }
        )));
    }

    #[test]
    fn branch_fallthrough() {
        let program = compile(
            "fn main(int x) -> int { if (x > 0) { return 1; } return 2; }",
            true,
        );
        let main = program.function_by_name("main").unwrap().1;
        let jumps = main
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Jmp { .. }))
            .count();
        // Fallthrough elision keeps unconditional jumps rare.
        assert!(jumps <= 1, "found {jumps} jumps");
    }

    #[test]
    fn frame_patched_for_recursive_function() {
        let program = compile(
            "fn fib(int n) -> int {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }
             fn main() -> int { return fib(6); }",
            true,
        );
        let fib = program.function_by_name("fib").unwrap().1;
        // Prologue must reserve at least n's slot + call temporaries.
        let Instr::IntOp {
            op: IntOp::Sub,
            rhs: Operand::Imm(frame),
            ..
        } = &fib.instrs()[0]
        else {
            panic!("prologue missing: {:?}", fib.instrs()[0]);
        };
        assert!(*frame >= 1, "frame {frame}");
    }

    #[test]
    fn spilling_under_tiny_pool() {
        // Deep expression tree forces spills with a 4-temp pool.
        let split = RegisterSplit {
            int_temps: 4,
            int_globals: 0,
            fp_temps: 4,
            fp_globals: 0,
        };
        // Right-nested expression keeps many partial values live at once.
        let src = "global var a; global var b; global var c; global var d;
             global var e; global var f;
             fn main() -> int {
                 return a + b * (c + d * (e + f * (a + b * (c + d * (e + f)))));
             }";
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        let mut ir = supersym_ir::lower(&ast).unwrap();
        crate::split_live_across_calls(&mut ir);
        let homes = supersym_regalloc::allocate(&ir, split, false);
        let program = lower_program(&ir, &homes);
        program.validate().unwrap();
        let main = program.function_by_name("main").unwrap().1;
        // Spill traffic: stores to the frame (sp-based).
        let sp_stores = main
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Store { base, .. } if *base == IntReg::SP))
            .count();
        assert!(sp_stores > 0, "expected spill stores");
    }

    #[test]
    fn alias_tags_on_disambiguated_accesses() {
        let program = compile(
            "global arr a[100];
             fn main() {
                 for (i = 0; i < 99; i = i + 1) { a[i + 1] = a[i]; }
             }",
            true,
        );
        let main = program.function_by_name("main").unwrap().1;
        let load_alias = main.instrs().iter().find_map(|i| match i {
            Instr::Load { alias, .. } => Some(*alias),
            _ => None,
        });
        let store_alias = main.instrs().iter().find_map(|i| match i {
            Instr::Store { alias, base, .. } if *base != IntReg::SP => Some(*alias),
            _ => None,
        });
        let (Some(load_alias), Some(store_alias)) = (load_alias, store_alias) else {
            panic!("missing element accesses");
        };
        assert!(
            !load_alias.may_conflict(&store_alias),
            "a[i] vs a[i+1] must be provably disjoint: {load_alias:?} vs {store_alias:?}"
        );
    }

    #[test]
    fn fp_programs_lower() {
        let program = compile(
            "global farr x[16]; global fvar s;
             fn main() {
                 for (i = 0; i < 16; i = i + 1) { s = s + x[i] * 2.0; }
             }",
            true,
        );
        let main = program.function_by_name("main").unwrap().1;
        assert!(main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::FpOp { .. })));
        assert!(main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::LoadF { .. })));
    }
}

#[cfg(test)]
mod peephole_tests {
    use super::*;
    use supersym_machine::RegisterSplit;
    use supersym_sim::{ExecOptions, Executor};

    fn compile_and_run(src: &str) -> (Program, i64) {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        let mut ir = supersym_ir::lower(&ast).unwrap();
        supersym_opt::run_local(&mut ir);
        supersym_opt::dead_store_elimination(&mut ir);
        supersym_opt::run_local(&mut ir);
        crate::split_live_across_calls(&mut ir);
        let homes = supersym_regalloc::allocate(&ir, RegisterSplit::paper_default(), true);
        let program = lower_program(&ir, &homes);
        program.validate().unwrap();
        let mut exec = Executor::new(&program, ExecOptions::default()).unwrap();
        exec.run().unwrap();
        let result = exec.int_reg(IntReg::new_unchecked(1));
        (program, result)
    }

    #[test]
    fn retarget_elides_register_moves() {
        // `s = s + i` with both promoted: the add should write s's home
        // directly, with no `add home, tmp, #0` move.
        let (program, result) = compile_and_run(
            "global var s;
             fn main() -> int {
                 for (i = 0; i < 10; i = i + 1) { s = s + i; }
                 return s;
             }",
        );
        assert_eq!(result, 45);
        let main = program.function_by_name("main").unwrap().1;
        let moves = main
            .instrs()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::IntOp {
                        op: IntOp::Add,
                        rhs: Operand::Imm(0),
                        lhs,
                        dst,
                    } if !lhs.is_zero() && *dst != IntReg::SP && dst.index() > 8
                )
            })
            .count();
        assert_eq!(moves, 0, "unexpected register-register moves:\n{main}");
    }

    #[test]
    fn constants_fold_into_immediates() {
        let (program, result) = compile_and_run(
            "fn main() -> int {
                 var x = 5;
                 return x * 3 + 7;
             }",
        );
        assert_eq!(result, 22);
        let main = program.function_by_name("main").unwrap().1;
        // LVN folds the whole expression; at most one MovI materializes the
        // final constant into r1.
        let movis = main
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::MovI { .. }))
            .count();
        assert!(movis <= 1, "{main}");
    }

    #[test]
    fn constant_array_index_uses_gp() {
        let (program, result) = compile_and_run(
            "global arr a[4];
             fn main() -> int { a[2] = 9; return a[2]; }",
        );
        assert_eq!(result, 9);
        let main = program.function_by_name("main").unwrap().1;
        assert!(main.instrs().iter().any(|i| matches!(
            i,
            Instr::Store {
                base: IntReg::GP,
                offset: 2,
                ..
            }
        )));
    }

    #[test]
    fn fp_retarget_into_home() {
        let (program, result) = compile_and_run(
            "global fvar acc;
             fn main() -> int {
                 for (i = 0; i < 8; i = i + 1) { acc = acc + 1.5; }
                 return ftoi(acc);
             }",
        );
        assert_eq!(result, 12);
        let main = program.function_by_name("main").unwrap().1;
        let fmovs = main
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::FMov { .. }))
            .count();
        assert_eq!(
            fmovs, 0,
            "FP accumulator should be updated in place:\n{main}"
        );
    }

    #[test]
    fn immediate_argument_and_return() {
        let (program, result) = compile_and_run(
            "fn id(int x) -> int { return x; }
             fn main() -> int { return id(41) + 1; }",
        );
        assert_eq!(result, 42);
        let main = program.function_by_name("main").unwrap().1;
        // The literal argument lands in r1 via MovI, not via a temp + move.
        assert!(main
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::MovI { imm: 41, dst } if dst.index() == 1)));
    }
}
