//! Sound certifiers for candidate identities.
//!
//! Fingerprint equality (see `synth`) is evidence, not proof: two terms
//! agreeing on every sample vector may still differ somewhere in `i64`.
//! Every rule that ships must pass one of three *sound* verification
//! backends, each complete for a fragment of the grammar:
//!
//! * **ring** — terms over {add, sub, mul, neg, shift-left-by-constant,
//!   const, var} denote polynomial functions over Z/2^64 (two's-complement
//!   wrapping arithmetic *is* arithmetic mod 2^64). A polynomial function
//!   vanishes identically mod 2^64 iff all of its mixed finite differences
//!   at the origin vanish (the Newton/Mahler expansion: `f(x) = Σ_k Δ^k
//!   f(0) · C(x,k)`, and the binomials `C(x,k)` are integer-valued). The
//!   differences are integer combinations of `f`'s values on the grid
//!   `[0, deg₁] × … × [0, degₙ]`, so the certificate is a finite, exact
//!   computation on term *evaluations* — the same `eval_int` the simulator
//!   uses, leaving no gap between the proof and the semantics.
//! * **bits** — terms over {and, or, xor, shift-by-constant, const, var}
//!   compute each output bit as a boolean function of input bits
//!   (arithmetic right shift replicates the sign bit — still a renaming).
//!   Both sides are compiled to 64 per-bit boolean functions in truth-table
//!   form and compared exhaustively; sound and complete for the fragment.
//! * **range** — both sides abstractly evaluate (via the `analyze` value
//!   range lattice) to the *same singleton* interval with all variables at
//!   ⊤; sound because a singleton abstract value is an exact result. This
//!   is the PR-2 lattice acting as a verification engine, and it covers
//!   annihilator rules (`x & 0 → 0`, `x * 0 → 0`) independently of the
//!   algebraic backends.
//!
//! A candidate no backend can prove is dropped — never shipped.

use crate::term::{Term, MAX_VARS};
use crate::RuleOp;
use supersym_analyze::range::eval_range;
use supersym_analyze::Interval;

/// Which backend proved a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CertKind {
    /// Polynomial nullity over Z/2^64 by mixed finite differences.
    Ring,
    /// Per-bit exhaustive boolean equivalence.
    Bits,
    /// Both sides collapse to one singleton in the value-range lattice.
    Range,
}

impl CertKind {
    /// Stable name used in the rule-file format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CertKind::Ring => "ring",
            CertKind::Bits => "bits",
            CertKind::Range => "range",
        }
    }

    /// Parses a backend name from the rule-file format.
    #[must_use]
    pub fn from_name(name: &str) -> Option<CertKind> {
        match name {
            "ring" => Some(CertKind::Ring),
            "bits" => Some(CertKind::Bits),
            "range" => Some(CertKind::Range),
            _ => None,
        }
    }
}

/// Attempts to prove `lhs ≡ rhs` as functions of their variables, trying
/// each backend in fixed order. Returns the backend that succeeded.
#[must_use]
pub fn certify(lhs: &Term, rhs: &Term) -> Option<CertKind> {
    if cert_ring(lhs, rhs) {
        Some(CertKind::Ring)
    } else if cert_bits(lhs, rhs) {
        Some(CertKind::Bits)
    } else if cert_range(lhs, rhs) {
        Some(CertKind::Range)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Ring backend
// ---------------------------------------------------------------------------

/// Per-variable degree cap; keeps the certification grid small. Depth-3
/// terms stay far below it.
const MAX_DEGREE: u32 = 12;

/// Per-variable degree bound of a ring-fragment term, or `None` when the
/// term leaves the fragment (or exceeds [`MAX_DEGREE`]).
fn ring_degree(term: &Term) -> Option<[u32; MAX_VARS]> {
    let deg = match term {
        Term::Const(_) => [0; MAX_VARS],
        Term::Var(v) => {
            let mut d = [0; MAX_VARS];
            d[*v as usize] = 1;
            d
        }
        Term::Neg(t) => ring_degree(t)?,
        Term::Bin(op, a, b) => {
            let da = ring_degree(a)?;
            match op {
                RuleOp::Add | RuleOp::Sub => {
                    let db = ring_degree(b)?;
                    [da[0].max(db[0]), da[1].max(db[1]), da[2].max(db[2])]
                }
                RuleOp::Mul => {
                    let db = ring_degree(b)?;
                    [da[0] + db[0], da[1] + db[1], da[2] + db[2]]
                }
                // `x << c` is multiplication by 2^(c mod 64): polynomial.
                RuleOp::Shl if matches!(**b, Term::Const(_)) => da,
                RuleOp::Shl | RuleOp::Shr | RuleOp::And | RuleOp::Or | RuleOp::Xor => return None,
            }
        }
    };
    deg.iter().all(|&d| d <= MAX_DEGREE).then_some(deg)
}

/// Proves `lhs - rhs ≡ 0 (mod 2^64)` for *all* variable values by exact
/// evaluation on the degree grid. Sound and complete for the ring
/// fragment: with `f = lhs - rhs` of per-variable degree `degᵢ`, the mixed
/// finite differences `Δ^k f(0)` for `k ≤ deg` are (triangular, ±1)
/// integer combinations of `f`'s values on `[0, deg₁] × … × [0, degₙ]`,
/// so `f ≡ 0` on that grid mod 2^64 forces every Newton coefficient to 0
/// mod 2^64, and the Newton expansion then makes `f ≡ 0` everywhere.
fn cert_ring(lhs: &Term, rhs: &Term) -> bool {
    let (Some(dl), Some(dr)) = (ring_degree(lhs), ring_degree(rhs)) else {
        return false;
    };
    let deg = [dl[0].max(dr[0]), dl[1].max(dr[1]), dl[2].max(dr[2])];
    for x in 0..=deg[0] as i64 {
        for y in 0..=deg[1] as i64 {
            for z in 0..=deg[2] as i64 {
                let vars = [x, y, z];
                if lhs.eval(&vars) != rhs.eval(&vars) {
                    return false;
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Bits backend
// ---------------------------------------------------------------------------

/// Cap on distinct input-bit atoms per boolean function (truth tables are
/// `2^n` bits). Rule terms have at most a handful of leaves, so this is
/// generous.
const MAX_ATOMS: usize = 16;

/// A boolean function of input-bit atoms `(variable, bit index)`, as an
/// explicit truth table over its (sorted, deduplicated) atom list.
#[derive(Debug, Clone)]
struct BoolFn {
    atoms: Vec<(u8, u8)>,
    /// Truth table: bit `m` is the output for the assignment whose bit `i`
    /// (of `m`) gives the value of `atoms[i]`.
    table: Vec<u64>,
}

impl BoolFn {
    fn constant(value: bool) -> BoolFn {
        BoolFn {
            atoms: Vec::new(),
            table: vec![u64::from(value)],
        }
    }

    fn atom(var: u8, bit: u8) -> BoolFn {
        BoolFn {
            atoms: vec![(var, bit)],
            table: vec![0b10],
        }
    }

    fn get(&self, assignment: usize) -> bool {
        self.table[assignment / 64] >> (assignment % 64) & 1 == 1
    }

    /// Combines two functions over the union of their atom lists.
    fn combine(op: RuleOp, f: &BoolFn, g: &BoolFn) -> Option<BoolFn> {
        let mut atoms: Vec<(u8, u8)> = f.atoms.iter().chain(&g.atoms).copied().collect();
        atoms.sort_unstable();
        atoms.dedup();
        if atoms.len() > MAX_ATOMS {
            return None;
        }
        // For each operand: the position in the union of each of its atoms.
        let positions = |h: &BoolFn| -> Vec<usize> {
            h.atoms
                .iter()
                .map(|a| atoms.binary_search(a).expect("atom in union"))
                .collect()
        };
        let (fp, gp) = (positions(f), positions(g));
        let project = |h: &BoolFn, hp: &[usize], m: usize| -> bool {
            let mut sub = 0_usize;
            for (i, &p) in hp.iter().enumerate() {
                sub |= (m >> p & 1) << i;
            }
            h.get(sub)
        };
        let entries = 1_usize << atoms.len();
        let mut table = vec![0_u64; entries.div_ceil(64)];
        for m in 0..entries {
            let a = project(f, &fp, m);
            let b = project(g, &gp, m);
            let out = match op {
                RuleOp::And => a && b,
                RuleOp::Or => a || b,
                RuleOp::Xor => a != b,
                _ => unreachable!("combine only used for bitwise ops"),
            };
            if out {
                table[m / 64] |= 1 << (m % 64);
            }
        }
        Some(BoolFn { atoms, table })
    }

    /// Semantic equality (over the union of both atom lists).
    fn equivalent(f: &BoolFn, g: &BoolFn) -> bool {
        match BoolFn::combine(RuleOp::Xor, f, g) {
            Some(x) => x.table.iter().all(|&w| w == 0),
            None => false,
        }
    }
}

/// Compiles a bit-fragment term to its 64 per-bit boolean functions, or
/// `None` when the term leaves the fragment.
fn bit_compile(term: &Term) -> Option<Vec<BoolFn>> {
    match term {
        Term::Const(c) => Some((0..64).map(|j| BoolFn::constant(c >> j & 1 == 1)).collect()),
        Term::Var(v) => Some((0..64).map(|j| BoolFn::atom(*v, j)).collect()),
        Term::Neg(_) => None, // two's-complement negation is not bitwise
        Term::Bin(op, a, b) => match op {
            RuleOp::And | RuleOp::Or | RuleOp::Xor => {
                let fa = bit_compile(a)?;
                let fb = bit_compile(b)?;
                fa.iter()
                    .zip(&fb)
                    .map(|(x, y)| BoolFn::combine(*op, x, y))
                    .collect()
            }
            RuleOp::Shl => {
                let Term::Const(c) = **b else { return None };
                let k = (c as u32 & 63) as usize;
                let fa = bit_compile(a)?;
                Some(
                    (0..64)
                        .map(|j| {
                            if j >= k {
                                fa[j - k].clone()
                            } else {
                                BoolFn::constant(false)
                            }
                        })
                        .collect(),
                )
            }
            RuleOp::Shr => {
                let Term::Const(c) = **b else { return None };
                let k = (c as u32 & 63) as usize;
                let fa = bit_compile(a)?;
                // Arithmetic shift: bits above the top replicate the sign.
                Some((0..64).map(|j| fa[(j + k).min(63)].clone()).collect())
            }
            RuleOp::Add | RuleOp::Sub | RuleOp::Mul => None,
        },
    }
}

/// Proves per-bit boolean equivalence of the two sides. Sound and complete
/// for the bit fragment.
fn cert_bits(lhs: &Term, rhs: &Term) -> bool {
    let (Some(fl), Some(fr)) = (bit_compile(lhs), bit_compile(rhs)) else {
        return false;
    };
    fl.iter().zip(&fr).all(|(f, g)| BoolFn::equivalent(f, g))
}

// ---------------------------------------------------------------------------
// Range backend
// ---------------------------------------------------------------------------

/// Abstract evaluation of a term over the `analyze` value-range lattice
/// with every variable at ⊤.
fn range_of(term: &Term) -> Interval {
    match term {
        Term::Var(_) => Interval::FULL,
        Term::Const(c) => Interval::constant(*c),
        Term::Neg(t) => eval_range(
            supersym_ir::IntBinOp::Sub,
            &Interval::constant(0),
            &range_of(t),
        ),
        Term::Bin(op, a, b) => eval_range(op.to_int_bin(), &range_of(a), &range_of(b)),
    }
}

/// Proves equality by abstract interpretation: both sides collapse to the
/// same singleton interval. Sound (a singleton is exact); complete only
/// for rules whose result is independent of the variables.
fn cert_range(lhs: &Term, rhs: &Term) -> bool {
    match (range_of(lhs).as_constant(), range_of(rhs).as_constant()) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term;

    fn t(s: &str) -> Term {
        parse_term(s).unwrap()
    }

    #[test]
    fn ring_proves_arithmetic_identities() {
        assert!(cert_ring(&t("(add ?a 0)"), &t("?a")));
        assert!(cert_ring(&t("(sub ?a ?a)"), &t("0")));
        assert!(cert_ring(&t("(mul ?a 1)"), &t("?a")));
        assert!(cert_ring(&t("(sub (add ?a ?b) ?b)"), &t("?a")));
        assert!(cert_ring(&t("(add ?a (neg ?a))"), &t("0")));
        assert!(cert_ring(&t("(mul ?a 2)"), &t("(shl ?a 1)")));
        assert!(cert_ring(&t("(add ?a ?b)"), &t("(add ?b ?a)")));
        assert!(cert_ring(
            &t("(mul (mul ?a ?b) ?c)"),
            &t("(mul ?a (mul ?b ?c))")
        ));
    }

    #[test]
    fn ring_rejects_non_identities() {
        assert!(!cert_ring(&t("(add ?a 1)"), &t("?a")));
        assert!(!cert_ring(&t("(sub ?a ?b)"), &t("0")));
        // 2^63 of an odd multiplier difference still shows up mod 2^64.
        assert!(!cert_ring(&t("(mul ?a 3)"), &t("(mul ?a 2)")));
        // Holds mod 2^8 but not mod 2^64 — the classic small-bitwidth trap.
        assert!(!cert_ring(&t("(shl ?a 8)"), &t("0")));
    }

    #[test]
    fn ring_understands_wrapping() {
        // x * 2^64 ≡ x << (64 mod 64) = x, NOT 0: the shift count masks.
        assert!(cert_ring(&t("(shl ?a 64)"), &t("?a")));
        // But x << 63 + x << 63 ≡ x · 2^64 ≡ 0 mod 2^64 — a genuinely
        // wrapping identity invisible to plain small-bitwidth testing.
        assert!(cert_ring(&t("(add (shl ?a 63) (shl ?a 63))"), &t("0")));
    }

    #[test]
    fn bits_proves_boolean_identities() {
        assert!(cert_bits(&t("(and ?a ?a)"), &t("?a")));
        assert!(cert_bits(&t("(xor ?a ?a)"), &t("0")));
        assert!(cert_bits(&t("(or ?a 0)"), &t("?a")));
        assert!(cert_bits(&t("(and ?a -1)"), &t("?a")));
        assert!(cert_bits(&t("(xor (xor ?a ?b) ?b)"), &t("?a")));
        assert!(cert_bits(&t("(and (or ?a ?b) ?a)"), &t("?a")));
        assert!(cert_bits(&t("(shl ?a 0)"), &t("?a")));
        assert!(cert_bits(&t("(shr (shl ?a 0) 0)"), &t("?a")));
        assert!(cert_bits(&t("(or ?a ?b)"), &t("(or ?b ?a)")));
    }

    #[test]
    fn bits_rejects_non_identities() {
        assert!(!cert_bits(&t("(and ?a ?b)"), &t("?a")));
        assert!(!cert_bits(&t("(shl ?a 1)"), &t("?a")));
        // Arithmetic (not logical) right shift: shr by 63 is the sign
        // smear, not 0 or 1.
        assert!(!cert_bits(&t("(shr ?a 63)"), &t("0")));
        // Fragment escape: addition is not per-bit.
        assert!(!cert_bits(&t("(add ?a 0)"), &t("?a")));
    }

    #[test]
    fn bits_handles_arithmetic_shift_sign() {
        // (x >> 63) >> 5 == x >> 63: the sign smear is idempotent.
        assert!(cert_bits(&t("(shr (shr ?a 63) 5)"), &t("(shr ?a 63)")));
    }

    #[test]
    fn range_proves_annihilators() {
        assert!(cert_range(&t("(and ?a 0)"), &t("0")));
        assert!(cert_range(&t("(mul ?a 0)"), &t("0")));
        assert!(!cert_range(&t("(add ?a 0)"), &t("?a"))); // not constant
        assert!(!cert_range(&t("(and ?a 1)"), &t("0"))); // range [0,1]
    }

    #[test]
    fn certify_picks_a_backend() {
        assert_eq!(certify(&t("(add ?a 0)"), &t("?a")), Some(CertKind::Ring));
        assert_eq!(certify(&t("(or ?a ?a)"), &t("?a")), Some(CertKind::Bits));
        assert_eq!(certify(&t("(add ?a 1)"), &t("?a")), None);
        // Mixed fragment (bitwise inside arithmetic): only the range
        // lattice can collapse it.
        assert_eq!(
            certify(&t("(mul (and ?a 0) ?b)"), &t("0")),
            Some(CertKind::Range)
        );
    }
}
