//! Ruler-style rule synthesis: enumerate → fingerprint → verify.
//!
//! Terms of the grammar are enumerated layer by layer up to a depth bound.
//! Each term is evaluated on a shared *characteristic vector* (cvec) of
//! variable assignments — boundary values plus SplitMix64-seeded random
//! samples, under exact simulator semantics — and terms are bucketed by
//! cvec. A term falling into an existing bucket is a candidate identity
//! with that bucket's (simpler) representative. Matching cvecs are
//! evidence, not proof: every candidate must then pass one of the sound
//! certifiers in [`crate::cert`], and candidates no backend can prove are
//! dropped. Only *collapsing* candidates (representative is a variable or
//! a constant) ship as rewrite rules — they are exactly what local value
//! numbering can consume without materializing new instructions.
//!
//! Operator properties (commutativity, associativity) are not enumerated;
//! their defining identities are certified directly and shipped as `prop`
//! facts for the reassociation pass.
//!
//! Everything is deterministic: fixed enumeration order, fixed seed, and a
//! final canonical sort — `titalc synth` must reproduce the checked-in
//! table byte for byte.

use crate::cert::{certify, CertKind};
use crate::table::{OpProps, Rule, RuleTable};
use crate::term::{Term, MAX_VARS};
use crate::RuleOp;
use std::collections::{BTreeSet, HashMap};
use supersym_rng::SplitMix64;

/// Synthesis parameters. [`SynthConfig::default`] is the configuration
/// that generates the checked-in `rules.tital-rules`.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Maximum term depth (leaves have depth 1).
    pub max_depth: usize,
    /// Constant leaves.
    pub consts: Vec<i64>,
    /// Seed for the random portion of the fingerprint vectors.
    pub seed: u64,
    /// Number of random assignments appended to the boundary assignments.
    pub random_samples: usize,
    /// Cap on equivalence-class representatives carried into the next
    /// enumeration layer (simplest first), bounding the search.
    pub max_reps: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_depth: 3,
            consts: vec![0, 1, -1, 2],
            seed: 6,
            random_samples: 24,
            max_reps: 256,
        }
    }
}

/// The outcome of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthReport {
    /// The verified table (collapsing rules + operator properties).
    pub table: RuleTable,
    /// Terms enumerated across all layers.
    pub terms_enumerated: usize,
    /// Candidate identities whose cvecs matched.
    pub candidates: usize,
    /// Candidates dropped because no certifier could prove them.
    pub rejected: usize,
}

/// Boundary values every fingerprint mixes in; chosen to separate
/// wrapping, shifting and masking behaviors early.
const BOUNDARY: [i64; 10] = [0, 1, -1, 2, -2, 3, 63, 64, i64::MAX, i64::MIN];

fn fingerprint_assignments(config: &SynthConfig) -> Vec<[i64; MAX_VARS]> {
    let mut samples = Vec::new();
    for &b in &BOUNDARY {
        samples.push([b, b, b]);
        samples.push([b, 0, 1]);
        samples.push([1, b, 0]);
        samples.push([0, 1, b]);
    }
    let mut rng = SplitMix64::new(config.seed);
    for _ in 0..config.random_samples {
        samples.push([
            rng.interesting_i64(),
            rng.interesting_i64(),
            rng.interesting_i64(),
        ]);
    }
    samples
}

fn cvec(term: &Term, samples: &[[i64; MAX_VARS]]) -> Vec<i64> {
    samples.iter().map(|s| term.eval(s)).collect()
}

/// Runs the full synthesis pipeline and returns the verified table.
#[must_use]
pub fn synthesize(config: &SynthConfig) -> SynthReport {
    let samples = fingerprint_assignments(config);
    // cvec -> class representative (the first, and thus simplest-layer,
    // term observed with that behavior).
    let mut classes: HashMap<Vec<i64>, Term> = HashMap::new();
    let mut reps: Vec<Term> = Vec::new();
    let mut terms_enumerated = 0_usize;
    let mut candidates: Vec<(Term, Term)> = Vec::new();

    // Layer 1: leaves, simplest first (constants in config order, then
    // variables).
    let mut layer: Vec<Term> = config
        .consts
        .iter()
        .map(|&c| Term::Const(c))
        .chain((0..MAX_VARS as u8).map(Term::Var))
        .collect();
    for term in layer.drain(..) {
        terms_enumerated += 1;
        let fp = cvec(&term, &samples);
        classes.entry(fp).or_insert_with(|| {
            reps.push(term.clone());
            term
        });
    }

    // Growth layers: negation and every binary operator over the
    // representatives discovered so far, with at least one operand from
    // the previous layer (so each term's depth is exactly `depth`).
    for depth in 2..=config.max_depth {
        let grown: Vec<Term> = {
            let deep = |t: &&Term| t.depth() == depth - 1;
            let prev: Vec<&Term> = reps.iter().filter(deep).take(config.max_reps).collect();
            let all: Vec<&Term> = reps
                .iter()
                .filter(|t| t.depth() < depth)
                .take(config.max_reps)
                .collect();
            let mut grown = Vec::new();
            for t in &prev {
                grown.push(Term::Neg(Box::new((*t).clone())));
            }
            for op in RuleOp::ALL {
                for a in &all {
                    for b in &all {
                        if a.depth().max(b.depth()) == depth - 1 {
                            grown.push(Term::bin(op, (*a).clone(), (*b).clone()));
                        }
                    }
                }
            }
            grown
        };
        for term in grown {
            terms_enumerated += 1;
            let fp = cvec(&term, &samples);
            match classes.get(&fp) {
                Some(rep) => {
                    if *rep != term {
                        candidates.push((term, rep.clone()));
                    }
                }
                None => {
                    reps.push(term.clone());
                    classes.insert(fp, term);
                }
            }
        }
    }

    // Verify collapsing candidates; drop everything unprovable.
    let seen_candidates = candidates.len();
    let mut rejected = 0_usize;
    let mut verified: BTreeSet<(String, String, CertKind)> = BTreeSet::new();
    for (lhs, rhs) in candidates {
        if !matches!(rhs, Term::Var(_) | Term::Const(_)) {
            continue; // not collapsing: no rule, but not a rejection either
        }
        if matches!(lhs, Term::Var(_)) || lhs.var_mask() == 0 {
            continue; // trivial or ground (constant folding's job)
        }
        if rhs.var_mask() & !lhs.var_mask() != 0 {
            continue; // rhs must not invent variables
        }
        // Constant folding collapses ground subterms before rules are
        // consulted, so a pattern containing a ground compound (e.g.
        // `(neg 2)`) can never fire in the optimizer.
        let mut ground_compound = false;
        lhs.for_each_proper_subterm(&mut |t| {
            ground_compound |= t.var_mask() == 0 && !matches!(t, Term::Const(_));
        });
        if ground_compound {
            continue;
        }
        let (lhs, rhs) = canonize(&lhs, &rhs);
        match certify(&lhs, &rhs) {
            Some(cert) => {
                verified.insert((lhs.to_string(), rhs.to_string(), cert));
            }
            None => rejected += 1,
        }
    }
    let verified: Vec<Rule> = verified
        .into_iter()
        .map(|(lhs, rhs, cert)| Rule {
            lhs: crate::term::parse_term(&lhs).expect("printed term reparses"),
            rhs: crate::term::parse_term(&rhs).expect("printed term reparses"),
            cert,
        })
        .collect();
    let rules = minimize(verified);

    // Operator properties: certify the defining identities directly.
    let props: Vec<OpProps> = RuleOp::ALL
        .into_iter()
        .map(|op| {
            let (a, b, c) = (Term::Var(0), Term::Var(1), Term::Var(2));
            let comm = certify(
                &Term::bin(op, a.clone(), b.clone()),
                &Term::bin(op, b.clone(), a.clone()),
            );
            let assoc = certify(
                &Term::bin(op, Term::bin(op, a.clone(), b.clone()), c.clone()),
                &Term::bin(op, a, Term::bin(op, b, c)),
            );
            OpProps { op, comm, assoc }
        })
        .collect();

    SynthReport {
        table: RuleTable::new(rules, props),
        terms_enumerated,
        candidates: seen_candidates,
        rejected,
    }
}

/// Renames metavariables in first-occurrence order of the left-hand side,
/// so α-equivalent candidates deduplicate.
fn canonize(lhs: &Term, rhs: &Term) -> (Term, Term) {
    let mut map: [Option<u8>; MAX_VARS] = [None; MAX_VARS];
    let mut next = 0_u8;
    fn walk(t: &Term, map: &mut [Option<u8>; MAX_VARS], next: &mut u8) -> Term {
        match t {
            Term::Var(v) => {
                let slot = &mut map[*v as usize];
                let renamed = *slot.get_or_insert_with(|| {
                    let n = *next;
                    *next += 1;
                    n
                });
                Term::Var(renamed)
            }
            Term::Const(c) => Term::Const(*c),
            Term::Neg(inner) => Term::Neg(Box::new(walk(inner, map, next))),
            Term::Bin(op, a, b) => {
                // Left first: first occurrence order is pre-order.
                let a = walk(a, map, next);
                let b = walk(b, map, next);
                Term::bin(*op, a, b)
            }
        }
    }
    let new_lhs = walk(lhs, &mut map, &mut next);
    let new_rhs = walk(rhs, &mut map, &mut next);
    (new_lhs, new_rhs)
}

/// Drops redundant rules: a rule is removed when it is an instance of a
/// simpler kept rule (same rewrite under substitution), or when a proper
/// subterm of its left-hand side is already reducible by a kept rule —
/// the optimizer simplifies operands before their parents, so such a
/// pattern can never fire whole.
fn minimize(mut rules: Vec<Rule>) -> Vec<Rule> {
    rules.sort_by(|a, b| {
        a.lhs
            .simplicity_cmp(&b.lhs)
            .then_with(|| a.rhs.simplicity_cmp(&b.rhs))
    });
    let mut kept: Vec<Rule> = Vec::new();
    'outer: for rule in rules {
        for prior in &kept {
            if pair_instance_of(&rule, prior) {
                continue 'outer;
            }
        }
        let mut reducible = false;
        rule.lhs.for_each_proper_subterm(&mut |sub| {
            reducible |= kept.iter().any(|prior| sub.is_instance_of(&prior.lhs));
        });
        if reducible {
            continue;
        }
        kept.push(rule);
    }
    kept
}

/// Whether `rule` is an instance of `general`: one substitution maps
/// `general.lhs` to `rule.lhs` *and* `general.rhs` to `rule.rhs`.
fn pair_instance_of(rule: &Rule, general: &Rule) -> bool {
    fn match_into<'a>(
        term: &'a Term,
        pat: &Term,
        subst: &mut [Option<&'a Term>; MAX_VARS],
    ) -> bool {
        match pat {
            Term::Var(v) => match subst[*v as usize] {
                Some(bound) => bound == term,
                None => {
                    subst[*v as usize] = Some(term);
                    true
                }
            },
            Term::Const(c) => matches!(term, Term::Const(d) if d == c),
            Term::Neg(p) => matches!(term, Term::Neg(t) if match_into(t, p, subst)),
            Term::Bin(pop, p, q) => match term {
                Term::Bin(top, a, b) if top == pop => {
                    match_into(a, p, subst) && match_into(b, q, subst)
                }
                _ => false,
            },
        }
    }
    let mut subst: [Option<&Term>; MAX_VARS] = [None; MAX_VARS];
    match_into(&rule.lhs, &general.lhs, &mut subst)
        && match_into(&rule.rhs, &general.rhs, &mut subst)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced configuration that keeps unit tests quick; the shipped
    /// table is generated (and CI-checked) at the default configuration.
    fn quick() -> SynthConfig {
        SynthConfig {
            max_depth: 2,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn finds_the_optimizer_identities() {
        let report = synthesize(&quick());
        let text = report.table.to_text();
        for expected in [
            "rule (add ?a 0) => ?a",
            "rule (sub ?a 0) => ?a",
            "rule (sub ?a ?a) => 0",
            "rule (mul ?a 1) => ?a",
            "rule (mul ?a 0) => 0",
            "rule (and ?a ?a) => ?a",
            "rule (or ?a ?a) => ?a",
            "rule (xor ?a ?a) => 0",
            "rule (xor ?a 0) => ?a",
            "rule (shl ?a 0) => ?a",
            "rule (shr ?a 0) => ?a",
        ] {
            assert!(text.contains(expected), "missing `{expected}` in:\n{text}");
        }
    }

    #[test]
    fn proves_operator_properties() {
        let report = synthesize(&quick());
        let table = &report.table;
        for op in [
            RuleOp::Add,
            RuleOp::Mul,
            RuleOp::And,
            RuleOp::Or,
            RuleOp::Xor,
        ] {
            assert!(table.chainable(op.to_int_bin()), "{op:?} chainable");
        }
        for op in [RuleOp::Sub, RuleOp::Shl, RuleOp::Shr] {
            assert!(!table.chainable(op.to_int_bin()), "{op:?} not chainable");
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(&quick()).table.to_text();
        let b = synthesize(&quick()).table.to_text();
        assert_eq!(a, b);
    }

    #[test]
    fn every_shipped_rule_is_verified() {
        let report = synthesize(&quick());
        report
            .table
            .verify_all()
            .expect("cold-start reverification");
        assert!(report.rejected > 0, "fingerprinting alone must not suffice");
    }

    /// Regenerates the checked-in table in-place. Run explicitly with
    /// `cargo test -p supersym-rules --release regenerate_table -- --ignored`
    /// (equivalent to `titalc synth > crates/rules/rules.tital-rules`).
    #[test]
    #[ignore = "writes the checked-in table; run explicitly to regenerate"]
    fn regenerate_table() {
        let report = synthesize(&SynthConfig::default());
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/rules.tital-rules");
        std::fs::write(path, report.table.to_text()).expect("write rules.tital-rules");
    }

    #[test]
    fn canonize_renames_in_lhs_order() {
        let lhs = crate::term::parse_term("(add ?c 0)").unwrap();
        let rhs = crate::term::parse_term("?c").unwrap();
        let (l, r) = canonize(&lhs, &rhs);
        assert_eq!(l.to_string(), "(add ?a 0)");
        assert_eq!(r.to_string(), "?a");
    }

    #[test]
    fn minimize_drops_instances_and_reducible_patterns() {
        let rule = |l: &str, r: &str, cert| Rule {
            lhs: crate::term::parse_term(l).unwrap(),
            rhs: crate::term::parse_term(r).unwrap(),
            cert,
        };
        let kept = minimize(vec![
            rule("(add ?a 0)", "?a", CertKind::Ring),
            // Instance of the first (with ?a := (neg ?a)).
            rule("(add (neg ?a) 0)", "(neg ?a)", CertKind::Ring),
            // Subterm (sub ?a ?a) is reducible; the whole can never fire.
            rule("(mul (sub ?a ?a) 1)", "(sub ?a ?a)", CertKind::Ring),
            rule("(sub ?a ?a)", "0", CertKind::Ring),
        ]);
        let texts: Vec<String> = kept
            .iter()
            .map(|r| format!("{} => {}", r.lhs, r.rhs))
            .collect();
        assert!(texts.contains(&"(add ?a 0) => ?a".to_string()));
        assert!(texts.contains(&"(sub ?a ?a) => 0".to_string()));
        assert_eq!(kept.len(), 2, "{texts:?}");
    }
}
