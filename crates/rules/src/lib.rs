//! # supersym-rules
//!
//! Verified rewrite-rule synthesis and the machine-checked rule table the
//! optimizer consumes.
//!
//! The crate follows the Ruler recipe, shrunk to the simulator's integer
//! expression language:
//!
//! 1. **Enumerate** ([`synth`]) expression shapes over
//!    `{add, sub, mul, shl, shr, and, or, xor, neg, const}` up to a depth
//!    bound, keeping one representative per behavior class;
//! 2. **Fingerprint**: behavior classes are keyed by evaluation on shared
//!    characteristic vectors (boundary values + [`supersym_rng::SplitMix64`]
//!    samples) under exact simulator semantics — wrapping arithmetic,
//!    shift counts mod 64;
//! 3. **Verify** ([`cert`]): a fingerprint match is only a conjecture;
//!    each candidate must be *proven* by a sound certifier (polynomial
//!    identity testing over `Z/2^64`, per-bit truth tables, or the
//!    `supersym-analyze` value-range lattice) or it is dropped. Nothing
//!    unproven ships.
//!
//! The surviving *collapsing* rules (right-hand side is a variable or a
//! constant) are written to `rules.tital-rules` ([`table`]), checked in,
//! and re-proven from cold start by the test suite. Local value numbering
//! applies them through the [`matcher`]; the reassociation pass consults
//! the table's proven commutativity/associativity facts to decide which
//! operators it may chain.

#![deny(missing_docs)]

pub mod cert;
pub mod matcher;
pub mod synth;
pub mod table;
pub mod term;

pub use cert::{certify, CertKind};
pub use matcher::{simplify, Rewrite, SimplifyCtx};
pub use synth::{synthesize, SynthConfig, SynthReport};
pub use table::{default_table, OpProps, Rule, RuleTable, DEFAULT_TABLE_TEXT};
pub use term::{parse_term, RuleOp, Term, MAX_VARS};
