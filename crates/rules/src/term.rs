//! The rule term language: small integer expression shapes over the
//! synthesis grammar {add, sub, mul, shl, shr, and, or, xor, neg, const}.
//!
//! A [`Term`] does double duty: during synthesis it is a concrete
//! expression evaluated on fingerprint vectors; in the shipped table it is
//! a *pattern* whose variables are metavariables the matcher binds to
//! value numbers. Evaluation semantics are exactly the simulator's
//! ([`supersym_analyze::consts::eval_int`]): wrapping arithmetic and shift
//! counts taken modulo 64.

use std::cmp::Ordering;
use std::fmt;
use supersym_ir::IntBinOp;

/// The binary operators of the synthesis grammar (a strict subset of
/// [`IntBinOp`]: no division, remainder or comparisons — those have no
/// sound certifier here and keep their constant folding in the optimizer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Left shift (count modulo 64).
    Shl,
    /// Arithmetic right shift (count modulo 64).
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl RuleOp {
    /// Every grammar operator, in table order.
    pub const ALL: [RuleOp; 8] = [
        RuleOp::Add,
        RuleOp::Sub,
        RuleOp::Mul,
        RuleOp::Shl,
        RuleOp::Shr,
        RuleOp::And,
        RuleOp::Or,
        RuleOp::Xor,
    ];

    /// The IR operator this grammar operator denotes.
    #[must_use]
    pub fn to_int_bin(self) -> IntBinOp {
        match self {
            RuleOp::Add => IntBinOp::Add,
            RuleOp::Sub => IntBinOp::Sub,
            RuleOp::Mul => IntBinOp::Mul,
            RuleOp::Shl => IntBinOp::Shl,
            RuleOp::Shr => IntBinOp::Shr,
            RuleOp::And => IntBinOp::And,
            RuleOp::Or => IntBinOp::Or,
            RuleOp::Xor => IntBinOp::Xor,
        }
    }

    /// The grammar operator denoting an IR operator, if it is in the
    /// grammar.
    #[must_use]
    pub fn from_int_bin(op: IntBinOp) -> Option<RuleOp> {
        match op {
            IntBinOp::Add => Some(RuleOp::Add),
            IntBinOp::Sub => Some(RuleOp::Sub),
            IntBinOp::Mul => Some(RuleOp::Mul),
            IntBinOp::Shl => Some(RuleOp::Shl),
            IntBinOp::Shr => Some(RuleOp::Shr),
            IntBinOp::And => Some(RuleOp::And),
            IntBinOp::Or => Some(RuleOp::Or),
            IntBinOp::Xor => Some(RuleOp::Xor),
            IntBinOp::Div | IntBinOp::Rem | IntBinOp::Cmp(_) => None,
        }
    }

    /// The operator's name in the rule-file format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleOp::Add => "add",
            RuleOp::Sub => "sub",
            RuleOp::Mul => "mul",
            RuleOp::Shl => "shl",
            RuleOp::Shr => "shr",
            RuleOp::And => "and",
            RuleOp::Or => "or",
            RuleOp::Xor => "xor",
        }
    }

    /// Parses an operator name from the rule-file format.
    #[must_use]
    pub fn from_name(name: &str) -> Option<RuleOp> {
        RuleOp::ALL.into_iter().find(|op| op.name() == name)
    }
}

/// The maximum number of distinct metavariables a term may mention.
pub const MAX_VARS: usize = 3;

/// A term of the synthesis grammar.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A metavariable (`?a`, `?b`, `?c`; index `< MAX_VARS`).
    Var(u8),
    /// An integer literal.
    Const(i64),
    /// Wrapping negation (matched in IR as `0 - x`).
    Neg(Box<Term>),
    /// A binary operator application.
    Bin(RuleOp, Box<Term>, Box<Term>),
}

impl Term {
    /// Convenience constructor for a binary application.
    #[must_use]
    pub fn bin(op: RuleOp, lhs: Term, rhs: Term) -> Term {
        Term::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Node count.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::Neg(t) => 1 + t.size(),
            Term::Bin(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Tree depth (leaves have depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::Neg(t) => 1 + t.depth(),
            Term::Bin(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// Bitmask of the metavariables the term mentions.
    #[must_use]
    pub fn var_mask(&self) -> u8 {
        match self {
            Term::Var(v) => 1 << v,
            Term::Const(_) => 0,
            Term::Neg(t) => t.var_mask(),
            Term::Bin(_, a, b) => a.var_mask() | b.var_mask(),
        }
    }

    /// Evaluates the term under a variable assignment, with exactly the
    /// simulator's integer semantics.
    #[must_use]
    pub fn eval(&self, vars: &[i64; MAX_VARS]) -> i64 {
        match self {
            Term::Var(v) => vars[*v as usize],
            Term::Const(c) => *c,
            Term::Neg(t) => 0_i64.wrapping_sub(t.eval(vars)),
            Term::Bin(op, a, b) => {
                supersym_analyze::consts::eval_int(op.to_int_bin(), a.eval(vars), b.eval(vars))
            }
        }
    }

    /// Whether `self` is an instance of `pattern` under some substitution
    /// of the pattern's metavariables.
    #[must_use]
    pub fn is_instance_of(&self, pattern: &Term) -> bool {
        fn go<'a>(term: &'a Term, pat: &Term, subst: &mut [Option<&'a Term>; MAX_VARS]) -> bool {
            match pat {
                Term::Var(v) => match subst[*v as usize] {
                    Some(bound) => bound == term,
                    None => {
                        subst[*v as usize] = Some(term);
                        true
                    }
                },
                Term::Const(c) => matches!(term, Term::Const(d) if d == c),
                Term::Neg(p) => matches!(term, Term::Neg(t) if go(t, p, subst)),
                Term::Bin(pop, p, q) => match term {
                    Term::Bin(top, a, b) if top == pop => go(a, p, subst) && go(b, q, subst),
                    _ => false,
                },
            }
        }
        go(self, pattern, &mut [None; MAX_VARS])
    }

    /// Proper subterms, outermost first.
    pub fn for_each_proper_subterm(&self, f: &mut impl FnMut(&Term)) {
        let mut visit = |t: &Term| {
            f(t);
            t.for_each_proper_subterm(&mut *f);
        };
        match self {
            Term::Var(_) | Term::Const(_) => {}
            Term::Neg(t) => visit(t),
            Term::Bin(_, a, b) => {
                visit(a);
                visit(b);
            }
        }
    }

    /// A total order on terms: by size, then depth, then structure. The
    /// minimum of a fingerprint class is its canonical representative, so
    /// this order decides which side of an identity becomes the rewrite
    /// target.
    #[must_use]
    pub fn simplicity_cmp(&self, other: &Term) -> Ordering {
        self.size()
            .cmp(&other.size())
            .then_with(|| self.depth().cmp(&other.depth()))
            .then_with(|| structural_cmp(self, other))
    }
}

fn rank(t: &Term) -> u8 {
    match t {
        Term::Const(_) => 0,
        Term::Var(_) => 1,
        Term::Neg(_) => 2,
        Term::Bin(..) => 3,
    }
}

fn structural_cmp(a: &Term, b: &Term) -> Ordering {
    rank(a).cmp(&rank(b)).then_with(|| match (a, b) {
        (Term::Const(x), Term::Const(y)) => x.cmp(y),
        (Term::Var(x), Term::Var(y)) => x.cmp(y),
        (Term::Neg(x), Term::Neg(y)) => structural_cmp(x, y),
        (Term::Bin(xop, xa, xb), Term::Bin(yop, ya, yb)) => xop
            .cmp(yop)
            .then_with(|| structural_cmp(xa, ya))
            .then_with(|| structural_cmp(xb, yb)),
        _ => unreachable!("rank() equality implies same constructor"),
    })
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{}", (b'a' + v) as char),
            Term::Const(c) => write!(f, "{c}"),
            Term::Neg(t) => write!(f, "(neg {t})"),
            Term::Bin(op, a, b) => write!(f, "({} {a} {b})", op.name()),
        }
    }
}

/// Parses the s-expression term syntax used by the rule file:
/// `(add ?a (neg 1))`, `?b`, `-7`.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_term(text: &str) -> Result<Term, String> {
    let tokens = tokenize(text)?;
    let mut pos = 0;
    let term = parse_at(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens after term in `{text}`"));
    }
    Ok(term)
}

#[derive(Debug, PartialEq)]
enum Token {
    Open,
    Close,
    Word(String),
}

fn tokenize(text: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    for ch in text.chars() {
        match ch {
            '(' | ')' => {
                if !word.is_empty() {
                    tokens.push(Token::Word(std::mem::take(&mut word)));
                }
                tokens.push(if ch == '(' { Token::Open } else { Token::Close });
            }
            c if c.is_whitespace() => {
                if !word.is_empty() {
                    tokens.push(Token::Word(std::mem::take(&mut word)));
                }
            }
            c => word.push(c),
        }
    }
    if !word.is_empty() {
        tokens.push(Token::Word(word));
    }
    Ok(tokens)
}

fn parse_at(tokens: &[Token], pos: &mut usize) -> Result<Term, String> {
    match tokens.get(*pos) {
        None => Err("unexpected end of term".to_string()),
        Some(Token::Close) => Err("unexpected `)`".to_string()),
        Some(Token::Word(w)) => {
            *pos += 1;
            parse_atom(w)
        }
        Some(Token::Open) => {
            *pos += 1;
            let Some(Token::Word(head)) = tokens.get(*pos) else {
                return Err("expected an operator after `(`".to_string());
            };
            *pos += 1;
            let term = if head == "neg" {
                Term::Neg(Box::new(parse_at(tokens, pos)?))
            } else {
                let op =
                    RuleOp::from_name(head).ok_or_else(|| format!("unknown operator `{head}`"))?;
                let a = parse_at(tokens, pos)?;
                let b = parse_at(tokens, pos)?;
                Term::bin(op, a, b)
            };
            match tokens.get(*pos) {
                Some(Token::Close) => {
                    *pos += 1;
                    Ok(term)
                }
                _ => Err("expected `)`".to_string()),
            }
        }
    }
}

fn parse_atom(word: &str) -> Result<Term, String> {
    if let Some(v) = word.strip_prefix('?') {
        let mut chars = v.chars();
        match (chars.next(), chars.next()) {
            (Some(c @ 'a'..='z'), None) if ((c as u8 - b'a') as usize) < MAX_VARS => {
                Ok(Term::Var(c as u8 - b'a'))
            }
            _ => Err(format!("bad metavariable `{word}`")),
        }
    } else {
        word.parse::<i64>()
            .map(Term::Const)
            .map_err(|_| format!("bad atom `{word}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let terms = [
            Term::Var(0),
            Term::Const(-7),
            Term::Neg(Box::new(Term::Var(1))),
            Term::bin(
                RuleOp::Add,
                Term::Var(0),
                Term::bin(RuleOp::Xor, Term::Const(1), Term::Var(2)),
            ),
        ];
        for t in terms {
            let text = t.to_string();
            assert_eq!(parse_term(&text).unwrap(), t, "round trip of {text}");
        }
    }

    #[test]
    fn eval_matches_simulator_semantics() {
        let shl = Term::bin(RuleOp::Shl, Term::Var(0), Term::Const(64));
        // Shift counts are taken modulo 64: x << 64 == x.
        assert_eq!(shl.eval(&[5, 0, 0]), 5);
        let neg = Term::Neg(Box::new(Term::Const(i64::MIN)));
        assert_eq!(neg.eval(&[0; 3]), i64::MIN);
    }

    #[test]
    fn instance_matching_binds_consistently() {
        let pattern = parse_term("(sub ?a ?a)").unwrap();
        assert!(parse_term("(sub (add ?a ?b) (add ?a ?b))")
            .unwrap()
            .is_instance_of(&pattern));
        assert!(!parse_term("(sub ?a ?b)").unwrap().is_instance_of(&pattern));
    }

    #[test]
    fn simplicity_prefers_smaller_terms() {
        let small = Term::Var(0);
        let large = parse_term("(add ?a 0)").unwrap();
        assert_eq!(small.simplicity_cmp(&large), Ordering::Less);
    }

    #[test]
    fn bad_syntax_is_rejected() {
        assert!(parse_term("(add ?a)").is_err());
        assert!(parse_term("(frob ?a ?b)").is_err());
        assert!(parse_term("?z").is_err());
        assert!(parse_term("(add ?a ?b) junk").is_err());
    }
}
