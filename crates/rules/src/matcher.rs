//! Rule matching against value-numbered expressions.
//!
//! The optimizer's local value numbering (and the translation validator's
//! symbolic evaluator) expose their state through [`SimplifyCtx`]: what a
//! value number's constant is (if known) and which expression it names (if
//! any). [`simplify`] then tries every table rule whose pattern can match
//! the instruction's root operator, binding metavariables to value
//! numbers. Repeated metavariables require *equal* value numbers — in a
//! value-numbered block, equal numbers mean proven-equal values, which is
//! exactly the semantic equality the rule's proof assumed.
//!
//! Commutative retries consult the table's *proven* `prop` facts, not
//! hard-coded operator knowledge: an operator with no commutativity proof
//! is only matched in pattern order.

use crate::table::RuleTable;
use crate::term::{Term, MAX_VARS};
use supersym_ir::IntBinOp;

/// What the matcher needs to know about the surrounding value-numbered
/// block.
pub trait SimplifyCtx {
    /// The constant a value number is known to hold, if any.
    fn const_of(&self, vn: usize) -> Option<i64>;
    /// The integer binary expression a value number names, if any (with
    /// operand value numbers).
    fn expr_of(&self, vn: usize) -> Option<(IntBinOp, usize, usize)>;
}

/// The result of a successful rule application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rewrite {
    /// The instruction collapses to an existing value number.
    Operand(usize),
    /// The instruction collapses to a constant.
    Const(i64),
}

/// Tries every applicable table rule against the instruction
/// `op(a, b)` (operands as value numbers) and returns the first rewrite
/// that matches. Rules are tried in canonical table order, so the result
/// is deterministic.
#[must_use]
pub fn simplify(
    table: &RuleTable,
    op: IntBinOp,
    a: usize,
    b: usize,
    ctx: &impl SimplifyCtx,
) -> Option<Rewrite> {
    for &idx in table.rules_for(op) {
        let rule = table.rule(idx);
        let mut bind: [Option<usize>; MAX_VARS] = [None; MAX_VARS];
        let matched = match &rule.lhs {
            Term::Bin(pop, p, q) if pop.to_int_bin() == op => {
                match_children(p, q, a, b, op, table, ctx, &mut bind)
            }
            // `neg`-rooted patterns match the IR's `0 - x` encoding.
            Term::Neg(p) if op == IntBinOp::Sub => {
                ctx.const_of(a) == Some(0) && match_pat(p, b, table, ctx, &mut bind)
            }
            _ => false,
        };
        if matched {
            return Some(match &rule.rhs {
                Term::Var(v) => {
                    Rewrite::Operand(bind[*v as usize].expect("rhs variables bound by lhs"))
                }
                Term::Const(c) => Rewrite::Const(*c),
                _ => unreachable!("shipped rules are collapsing (checked at parse)"),
            });
        }
    }
    None
}

/// Matches a pattern pair against an operand pair, retrying in swapped
/// order when the operator's commutativity is proven.
#[allow(clippy::too_many_arguments)]
fn match_children(
    p: &Term,
    q: &Term,
    a: usize,
    b: usize,
    op: IntBinOp,
    table: &RuleTable,
    ctx: &impl SimplifyCtx,
    bind: &mut [Option<usize>; MAX_VARS],
) -> bool {
    let saved = *bind;
    if match_pat(p, a, table, ctx, bind) && match_pat(q, b, table, ctx, bind) {
        return true;
    }
    *bind = saved;
    if table.commutative(op)
        && match_pat(p, b, table, ctx, bind)
        && match_pat(q, a, table, ctx, bind)
    {
        return true;
    }
    *bind = saved;
    false
}

fn match_pat(
    pat: &Term,
    vn: usize,
    table: &RuleTable,
    ctx: &impl SimplifyCtx,
    bind: &mut [Option<usize>; MAX_VARS],
) -> bool {
    match pat {
        Term::Var(v) => match bind[*v as usize] {
            Some(bound) => bound == vn,
            None => {
                bind[*v as usize] = Some(vn);
                true
            }
        },
        Term::Const(c) => ctx.const_of(vn) == Some(*c),
        Term::Neg(p) => match ctx.expr_of(vn) {
            Some((IntBinOp::Sub, l, r)) => {
                ctx.const_of(l) == Some(0) && match_pat(p, r, table, ctx, bind)
            }
            _ => false,
        },
        Term::Bin(pop, p, q) => match ctx.expr_of(vn) {
            Some((top, l, r)) if top == pop.to_int_bin() => {
                match_children(p, q, l, r, top, table, ctx, bind)
            }
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RuleTable;

    /// A toy value-numbered block for matcher tests.
    #[derive(Default)]
    struct Block {
        consts: Vec<Option<i64>>,
        exprs: Vec<Option<(IntBinOp, usize, usize)>>,
    }

    impl Block {
        fn val(&mut self) -> usize {
            self.consts.push(None);
            self.exprs.push(None);
            self.consts.len() - 1
        }
        fn konst(&mut self, c: i64) -> usize {
            let vn = self.val();
            self.consts[vn] = Some(c);
            vn
        }
        fn expr(&mut self, op: IntBinOp, a: usize, b: usize) -> usize {
            let vn = self.val();
            self.exprs[vn] = Some((op, a, b));
            vn
        }
    }

    impl SimplifyCtx for Block {
        fn const_of(&self, vn: usize) -> Option<i64> {
            self.consts[vn]
        }
        fn expr_of(&self, vn: usize) -> Option<(IntBinOp, usize, usize)> {
            self.exprs[vn]
        }
    }

    fn table() -> RuleTable {
        RuleTable::parse(
            "prop add comm cert=ring\n\
             rule (add ?a 0) => ?a cert=ring\n\
             rule (sub ?a ?a) => 0 cert=ring\n\
             rule (neg (neg ?a)) => ?a cert=ring\n",
        )
        .expect("test table parses")
    }

    #[test]
    fn collapses_to_operand_and_constant() {
        let table = table();
        let mut blk = Block::default();
        let x = blk.val();
        let zero = blk.konst(0);
        assert_eq!(
            simplify(&table, IntBinOp::Add, x, zero, &blk),
            Some(Rewrite::Operand(x))
        );
        assert_eq!(
            simplify(&table, IntBinOp::Sub, x, x, &blk),
            Some(Rewrite::Const(0))
        );
        let y = blk.val();
        assert_eq!(simplify(&table, IntBinOp::Sub, x, y, &blk), None);
    }

    #[test]
    fn commutative_retry_uses_proven_props_only() {
        let table = table();
        let mut blk = Block::default();
        let x = blk.val();
        let zero = blk.konst(0);
        // `0 + x`: pattern is `(add ?a 0)`, so only the proven-commutative
        // retry can match it.
        assert_eq!(
            simplify(&table, IntBinOp::Add, zero, x, &blk),
            Some(Rewrite::Operand(x))
        );
        // `0 - x` matches no rule here (`sub` has no comm proof, and the
        // double-negation pattern needs a nested neg).
        assert_eq!(simplify(&table, IntBinOp::Sub, zero, x, &blk), None);
    }

    #[test]
    fn neg_pattern_matches_sub_from_zero() {
        let table = table();
        let mut blk = Block::default();
        let x = blk.val();
        let zero = blk.konst(0);
        let neg_x = blk.expr(IntBinOp::Sub, zero, x);
        // `0 - (0 - x)` => x via `(neg (neg ?a)) => ?a`.
        assert_eq!(
            simplify(&table, IntBinOp::Sub, zero, neg_x, &blk),
            Some(Rewrite::Operand(x))
        );
    }

    #[test]
    fn repeated_variables_require_equal_value_numbers() {
        let table = table();
        let mut blk = Block::default();
        let x = blk.val();
        let y = blk.val();
        let xy = blk.expr(IntBinOp::Add, x, y);
        let xy2 = blk.expr(IntBinOp::Add, x, y);
        // Distinct value numbers, even for structurally equal exprs: LVN
        // would have given them the same number if they were equal.
        assert_eq!(simplify(&table, IntBinOp::Sub, xy, xy2, &blk), None);
        assert_eq!(
            simplify(&table, IntBinOp::Sub, xy, xy, &blk),
            Some(Rewrite::Const(0))
        );
    }
}
