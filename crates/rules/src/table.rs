//! The shipped rule table: verified rewrite rules plus proven operator
//! properties, with a line-oriented text format (`rules.tital-rules`)
//! that `titalc synth` regenerates byte for byte.
//!
//! Format, one fact per line, `#` comments:
//!
//! ```text
//! prop add comm cert=ring
//! rule (add ?a 0) => ?a cert=ring
//! ```
//!
//! Every line carries the certifier that proved it; [`RuleTable::verify_all`]
//! re-proves the whole table from cold start, so a hand-edited or corrupted
//! table is caught by tests and CI, never trusted by the optimizer.

use crate::cert::{certify, CertKind};
use crate::term::{parse_term, Term};
use crate::RuleOp;
use std::fmt::Write as _;
use std::sync::OnceLock;
use supersym_ir::IntBinOp;

/// A verified rewrite rule: `lhs` rewrites to `rhs`, proven by `cert`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The pattern (metavariables bind IR value numbers).
    pub lhs: Term,
    /// The replacement; always a metavariable or a constant in shipped
    /// tables (collapsing rules only).
    pub rhs: Term,
    /// Which certifier proved the identity.
    pub cert: CertKind,
}

/// Proven algebraic properties of one grammar operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpProps {
    /// The operator.
    pub op: RuleOp,
    /// Certifier that proved commutativity, if any did.
    pub comm: Option<CertKind>,
    /// Certifier that proved associativity, if any did.
    pub assoc: Option<CertKind>,
}

/// The verified rule table consumed by the optimizer and the translation
/// validator.
#[derive(Debug, Clone)]
pub struct RuleTable {
    rules: Vec<Rule>,
    props: Vec<OpProps>,
    /// Rule indices bucketed by the root IR operator their pattern
    /// matches (`neg`-rooted patterns match `Sub`).
    by_op: Vec<(IntBinOp, Vec<usize>)>,
}

impl RuleTable {
    /// Builds a table (and its root-operator index) from parts.
    #[must_use]
    pub fn new(rules: Vec<Rule>, props: Vec<OpProps>) -> RuleTable {
        let mut by_op: Vec<(IntBinOp, Vec<usize>)> = Vec::new();
        for (idx, rule) in rules.iter().enumerate() {
            let Some(op) = root_op(&rule.lhs) else {
                continue;
            };
            match by_op.iter_mut().find(|(o, _)| *o == op) {
                Some((_, bucket)) => bucket.push(idx),
                None => by_op.push((op, vec![idx])),
            }
        }
        RuleTable {
            rules,
            props,
            by_op,
        }
    }

    /// A table with no rules and no proven properties; the optimizer
    /// degrades to its built-in constant folding.
    #[must_use]
    pub fn empty() -> RuleTable {
        RuleTable::new(Vec::new(), Vec::new())
    }

    /// All rules, in canonical (simplicity) order.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// All operator property facts.
    #[must_use]
    pub fn props(&self) -> &[OpProps] {
        &self.props
    }

    /// Rules whose pattern can match an instruction with root operator
    /// `op`.
    #[must_use]
    pub fn rules_for(&self, op: IntBinOp) -> &[usize] {
        self.by_op
            .iter()
            .find(|(o, _)| *o == op)
            .map_or(&[], |(_, bucket)| bucket.as_slice())
    }

    /// The rule at `idx` (as returned by [`RuleTable::rules_for`]).
    #[must_use]
    pub fn rule(&self, idx: usize) -> &Rule {
        &self.rules[idx]
    }

    /// Whether commutativity of `op` was proven.
    #[must_use]
    pub fn commutative(&self, op: IntBinOp) -> bool {
        RuleOp::from_int_bin(op)
            .is_some_and(|rop| self.props.iter().any(|p| p.op == rop && p.comm.is_some()))
    }

    /// Whether `op` may be treated as a reassociable chain operator:
    /// both commutativity and associativity were proven.
    #[must_use]
    pub fn chainable(&self, op: IntBinOp) -> bool {
        RuleOp::from_int_bin(op).is_some_and(|rop| {
            self.props
                .iter()
                .any(|p| p.op == rop && p.comm.is_some() && p.assoc.is_some())
        })
    }

    /// Renders the table in the checked-in text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        for p in &self.props {
            if let Some(cert) = p.comm {
                let _ = writeln!(out, "prop {} comm cert={}", p.op.name(), cert.name());
            }
            if let Some(cert) = p.assoc {
                let _ = writeln!(out, "prop {} assoc cert={}", p.op.name(), cert.name());
            }
        }
        for r in &self.rules {
            let _ = writeln!(out, "rule {} => {} cert={}", r.lhs, r.rhs, r.cert.name());
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending line.
    pub fn parse(text: &str) -> Result<RuleTable, String> {
        let mut rules = Vec::new();
        let mut props: Vec<OpProps> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: `{raw}`", lineno + 1);
            if let Some(rest) = line.strip_prefix("prop ") {
                let mut words = rest.split_whitespace();
                let (Some(opname), Some(kind), Some(cert), None) =
                    (words.next(), words.next(), words.next(), words.next())
                else {
                    return Err(err("expected `prop <op> <comm|assoc> cert=<kind>`"));
                };
                let op = RuleOp::from_name(opname).ok_or_else(|| err("unknown operator"))?;
                let cert = cert
                    .strip_prefix("cert=")
                    .and_then(CertKind::from_name)
                    .ok_or_else(|| err("bad certificate"))?;
                let entry = match props.iter_mut().find(|p| p.op == op) {
                    Some(entry) => entry,
                    None => {
                        props.push(OpProps {
                            op,
                            comm: None,
                            assoc: None,
                        });
                        props.last_mut().expect("just pushed")
                    }
                };
                match kind {
                    "comm" => entry.comm = Some(cert),
                    "assoc" => entry.assoc = Some(cert),
                    _ => return Err(err("expected `comm` or `assoc`")),
                }
            } else if let Some(rest) = line.strip_prefix("rule ") {
                let (body, cert) = rest
                    .rsplit_once(" cert=")
                    .ok_or_else(|| err("missing `cert=`"))?;
                let cert = CertKind::from_name(cert).ok_or_else(|| err("bad certificate"))?;
                let (lhs, rhs) = body.split_once(" => ").ok_or_else(|| err("missing `=>`"))?;
                let lhs = parse_term(lhs.trim()).map_err(|e| err(&e))?;
                let rhs = parse_term(rhs.trim()).map_err(|e| err(&e))?;
                if root_op(&lhs).is_none() {
                    return Err(err("rule pattern must be a compound term"));
                }
                if !matches!(rhs, Term::Var(_) | Term::Const(_)) {
                    return Err(err("rule replacement must be a variable or constant"));
                }
                if rhs.var_mask() & !lhs.var_mask() != 0 {
                    return Err(err("rule replacement mentions an unbound variable"));
                }
                rules.push(Rule { lhs, rhs, cert });
            } else {
                return Err(err("expected `prop` or `rule`"));
            }
        }
        Ok(RuleTable::new(rules, props))
    }

    /// Re-proves every fact in the table from cold start, and checks the
    /// recorded certifier still agrees. This is what makes the checked-in
    /// table trustworthy: the optimizer never consumes a fact that cannot
    /// be re-verified on demand.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first fact that fails verification.
    pub fn verify_all(&self) -> Result<(), String> {
        for r in &self.rules {
            match certify(&r.lhs, &r.rhs) {
                Some(cert) if cert == r.cert => {}
                Some(cert) => {
                    return Err(format!(
                        "rule {} => {}: recorded cert={} but re-proved by {}",
                        r.lhs,
                        r.rhs,
                        r.cert.name(),
                        cert.name()
                    ));
                }
                None => {
                    return Err(format!(
                        "rule {} => {}: no certifier can prove it",
                        r.lhs, r.rhs
                    ));
                }
            }
        }
        for p in &self.props {
            let (a, b, c) = (Term::Var(0), Term::Var(1), Term::Var(2));
            if let Some(recorded) = p.comm {
                let lhs = Term::bin(p.op, a.clone(), b.clone());
                let rhs = Term::bin(p.op, b.clone(), a.clone());
                if certify(&lhs, &rhs) != Some(recorded) {
                    return Err(format!("prop {} comm fails reverification", p.op.name()));
                }
            }
            if let Some(recorded) = p.assoc {
                let lhs = Term::bin(p.op, Term::bin(p.op, a.clone(), b.clone()), c.clone());
                let rhs = Term::bin(p.op, a.clone(), Term::bin(p.op, b.clone(), c.clone()));
                if certify(&lhs, &rhs) != Some(recorded) {
                    return Err(format!("prop {} assoc fails reverification", p.op.name()));
                }
            }
        }
        Ok(())
    }
}

/// The IR operator a pattern's root matches: binary roots match their own
/// operator, `neg` roots match `Sub` (negation is `0 - x` in the IR).
#[must_use]
pub fn root_op(pattern: &Term) -> Option<IntBinOp> {
    match pattern {
        Term::Bin(op, _, _) => Some(op.to_int_bin()),
        Term::Neg(_) => Some(IntBinOp::Sub),
        Term::Var(_) | Term::Const(_) => None,
    }
}

const HEADER: &str = "\
# supersym rule table — synthesized by `titalc synth`, machine-verified.
# Do not edit by hand: regenerate with `titalc synth > rules.tital-rules`;
# CI diffs this file against a fresh synthesis run, and the test suite
# re-proves every fact from cold start (RuleTable::verify_all).
";

/// The checked-in table shipped with the compiler, parsed once on first
/// use. Generated by [`crate::synth::synthesize`] at the default
/// [`crate::synth::SynthConfig`].
#[must_use]
pub fn default_table() -> &'static RuleTable {
    static TABLE: OnceLock<RuleTable> = OnceLock::new();
    TABLE
        .get_or_init(|| RuleTable::parse(DEFAULT_TABLE_TEXT).expect("checked-in rule table parses"))
}

/// The raw text of the checked-in table (what `titalc synth --check`
/// compares against).
pub const DEFAULT_TABLE_TEXT: &str = include_str!("../rules.tital-rules");

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuleTable {
        RuleTable::parse(
            "# comment\n\
             prop add comm cert=ring\n\
             prop add assoc cert=ring\n\
             prop and comm cert=bits\n\
             rule (add ?a 0) => ?a cert=ring\n\
             rule (neg (neg ?a)) => ?a cert=ring\n\
             rule (and ?a ?a) => ?a cert=bits\n",
        )
        .expect("sample parses")
    }

    #[test]
    fn parse_print_round_trip() {
        let table = sample();
        let text = table.to_text();
        let reparsed = RuleTable::parse(&text).expect("round trip");
        assert_eq!(reparsed.to_text(), text);
    }

    #[test]
    fn root_index_buckets_neg_under_sub() {
        let table = sample();
        assert_eq!(table.rules_for(IntBinOp::Add).len(), 1);
        assert_eq!(table.rules_for(IntBinOp::Sub).len(), 1);
        assert_eq!(table.rules_for(IntBinOp::And).len(), 1);
        assert!(table.rules_for(IntBinOp::Mul).is_empty());
    }

    #[test]
    fn props_answer_chainability() {
        let table = sample();
        assert!(table.commutative(IntBinOp::Add));
        assert!(table.chainable(IntBinOp::Add));
        assert!(table.commutative(IntBinOp::And));
        assert!(!table.chainable(IntBinOp::And), "assoc not recorded");
        assert!(!table.chainable(IntBinOp::Div), "outside the grammar");
    }

    #[test]
    fn verify_all_accepts_true_and_rejects_false_facts() {
        sample().verify_all().expect("true facts re-prove");
        let bogus = RuleTable::parse("rule (add ?a 1) => ?a cert=ring\n").expect("parses fine");
        assert!(bogus.verify_all().is_err(), "false rule must be caught");
        let wrong_cert =
            RuleTable::parse("rule (add ?a 0) => ?a cert=bits\n").expect("parses fine");
        assert!(wrong_cert.verify_all().is_err(), "cert mismatch caught");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "frob x",
            "rule (add ?a 0) => ?a",
            "rule (add ?a 0) ?a cert=ring",
            "rule ?a => ?a cert=ring",
            "rule (add ?a 0) => (add ?a 0) cert=ring",
            "rule (add ?a 0) => ?b cert=ring",
            "prop add comm",
            "prop add sideways cert=ring",
        ] {
            assert!(RuleTable::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn default_table_parses_and_is_nonempty() {
        let table = default_table();
        assert!(!table.rules().is_empty());
        assert!(table.chainable(IntBinOp::Add));
    }

    /// Cold-start reverification: every fact in the checked-in table must
    /// re-prove from scratch, with the recorded certifier. A corrupted or
    /// hand-edited table fails here before the optimizer ever sees it.
    #[test]
    fn checked_in_table_reverifies_from_cold_start() {
        default_table()
            .verify_all()
            .expect("checked-in table re-proves");
    }

    /// Full-depth synthesis must reproduce the checked-in table byte for
    /// byte. Debug builds skip it for speed; CI runs the equivalent
    /// `titalc synth --check` in release.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "full-depth synthesis is release-speed; CI runs `titalc synth --check`"
    )]
    fn checked_in_table_matches_fresh_synthesis() {
        let report = crate::synth::synthesize(&crate::synth::SynthConfig::default());
        assert_eq!(report.table.to_text(), DEFAULT_TABLE_TEXT);
    }
}
