//! Reducing a finished sweep to a speedup-versus-cost Pareto frontier.
//!
//! Figure 4-3 of the paper plots a handful of machines on a speedup axis;
//! the sweep's grid turns that into a two-dimensional trade-off: how much
//! speedup does each increment of issue/pipeline hardware buy? A cell is
//! on the frontier when no other cell is at once cheaper and faster.

use crate::checkpoint::{CellRecord, CellStatus};
use supersym_machine::GridCell;
use supersym_trace::{JsonObject, JsonValue};

/// Per-cell aggregate across workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Cell name.
    pub cell: String,
    /// Hardware-cost proxy ([`GridCell::hardware_cost`]).
    pub cost: f64,
    /// Harmonic-mean speedup over the base machine across workloads (the
    /// paper's aggregation for rate-like figures).
    pub speedup: f64,
    /// Workloads that completed on this cell.
    pub completed: usize,
    /// Workloads quarantined on this cell.
    pub quarantined: usize,
}

/// Aggregates records cell-by-cell. `records` must be in canonical index
/// order (as [`crate::engine::run_sweep`] returns them); `cells` is the
/// grid's enumeration. Cells where any workload was quarantined get
/// `speedup = 0` and are excluded from the frontier but still reported.
#[must_use]
pub fn aggregate_cells(records: &[CellRecord], cells: &[GridCell]) -> Vec<CellSummary> {
    if cells.is_empty() {
        return Vec::new();
    }
    let workloads = records.len() / cells.len();
    cells
        .iter()
        .map(|cell| {
            let rows = &records[cell.index * workloads..(cell.index + 1) * workloads];
            let mut inv_sum = 0.0;
            let mut completed = 0;
            for row in rows {
                if let CellStatus::Ok(m) = &row.status {
                    let speedup = m.speedup();
                    if speedup > 0.0 {
                        inv_sum += 1.0 / speedup;
                        completed += 1;
                    }
                }
            }
            let speedup = if completed == workloads && inv_sum > 0.0 {
                workloads as f64 / inv_sum
            } else {
                0.0
            };
            CellSummary {
                cell: cell.name(),
                cost: cell.hardware_cost(),
                speedup,
                completed,
                quarantined: workloads - completed,
            }
        })
        .collect()
}

/// A frontier point.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Cell name.
    pub cell: String,
    /// Hardware-cost proxy.
    pub cost: f64,
    /// Harmonic-mean speedup.
    pub speedup: f64,
}

/// The non-dominated cells, cheapest first: walking the frontier, cost
/// strictly rises and speedup strictly rises with it.
#[must_use]
pub fn pareto_frontier(summaries: &[CellSummary]) -> Vec<ParetoPoint> {
    let mut complete: Vec<&CellSummary> = summaries.iter().filter(|s| s.quarantined == 0).collect();
    complete.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap()
            .then(b.speedup.partial_cmp(&a.speedup).unwrap())
            .then(a.cell.cmp(&b.cell))
    });
    let mut frontier: Vec<ParetoPoint> = Vec::new();
    let mut best = 0.0_f64;
    for summary in complete {
        if summary.speedup > best {
            best = summary.speedup;
            frontier.push(ParetoPoint {
                cell: summary.cell.clone(),
                cost: summary.cost,
                speedup: summary.speedup,
            });
        }
    }
    frontier
}

/// Renders a frontier as a JSON array (for the sweep summary and the
/// experiments harness).
#[must_use]
pub fn frontier_json(frontier: &[ParetoPoint]) -> JsonValue {
    JsonValue::Array(
        frontier
            .iter()
            .map(|p| {
                JsonObject::new()
                    .field("cell", JsonValue::str(p.cell.clone()))
                    .field("cost", JsonValue::Float(p.cost))
                    .field("speedup", JsonValue::Float(p.speedup))
                    .build()
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CellMetrics;
    use supersym_machine::GridSpec;

    fn records_for(cells: &[GridCell], speedups: &[f64]) -> Vec<CellRecord> {
        cells
            .iter()
            .zip(speedups)
            .map(|(cell, &speedup)| CellRecord {
                index: cell.index,
                cell: cell.name(),
                workload: "w".to_string(),
                machine_hash: 1,
                program_hash: 2,
                status: if speedup > 0.0 {
                    CellStatus::Ok(CellMetrics {
                        instructions: 1000,
                        machine_cycles: 1000,
                        base_cycles: 1000.0 / speedup,
                    })
                } else {
                    CellStatus::Panic {
                        message: "boom".to_string(),
                    }
                },
            })
            .collect()
    }

    #[test]
    fn frontier_is_monotone_and_skips_quarantined() {
        let grid = GridSpec::parse("issue=1,2,4,8 pipe=1").unwrap();
        let cells = grid.cells();
        // issue=4 quarantined; issue=8 slower than issue=2 → dominated.
        let records = records_for(&cells, &[1.0, 2.5, 0.0, 2.0]);
        let summaries = aggregate_cells(&records, &cells);
        assert_eq!(summaries.len(), 4);
        assert_eq!(summaries[2].quarantined, 1);
        let frontier = pareto_frontier(&summaries);
        let names: Vec<&str> = frontier.iter().map(|p| p.cell.as_str()).collect();
        assert_eq!(
            names,
            ["n1.m1.unit.ideal.default", "n2.m1.unit.ideal.default"]
        );
        for pair in frontier.windows(2) {
            assert!(pair[1].cost > pair[0].cost);
            assert!(pair[1].speedup > pair[0].speedup);
        }
    }

    #[test]
    fn harmonic_mean_across_workloads() {
        let grid = GridSpec::parse("issue=1 pipe=1").unwrap();
        let cells = grid.cells();
        // Two workloads at speedups 2 and 6 → harmonic mean 3.
        let records = vec![
            CellRecord {
                index: 0,
                cell: cells[0].name(),
                workload: "a".to_string(),
                machine_hash: 1,
                program_hash: 2,
                status: CellStatus::Ok(CellMetrics {
                    instructions: 1200,
                    machine_cycles: 600,
                    base_cycles: 600.0,
                }),
            },
            CellRecord {
                index: 0,
                cell: cells[0].name(),
                workload: "b".to_string(),
                machine_hash: 1,
                program_hash: 3,
                status: CellStatus::Ok(CellMetrics {
                    instructions: 1200,
                    machine_cycles: 200,
                    base_cycles: 200.0,
                }),
            },
        ];
        let summaries = aggregate_cells(&records, &cells);
        assert!((summaries[0].speedup - 3.0).abs() < 1e-12);
        assert_eq!(summaries[0].completed, 2);
    }
}
