//! Fault-tolerant design-space sweeps over machine-configuration grids.
//!
//! The paper's figures sample ~11 hand-picked machine presets. This crate
//! turns that sample into a map: a [`supersym_machine::GridSpec`] names a
//! cross-product lattice of configurations, and the sweep engine fans the
//! (workload × cell) product out across worker threads, compile-once /
//! simulate-many (the machine-independent front half of the pipeline is
//! compiled once per workload and register split; only scheduling and
//! simulation repeat per cell).
//!
//! The engine is built to survive its own cells:
//!
//! * every cell runs under `catch_unwind` with a fuel watchdog (and an
//!   opt-in wall deadline), so a panicking scheduler or a runaway program
//!   quarantines one cell instead of aborting a thousand;
//! * failures are classified — [`CellStatus::Panic`],
//!   [`CellStatus::Timeout`], [`CellStatus::Reject`] — and recorded in the
//!   same journal as successes, so no cell is ever silently lost;
//! * progress is checkpointed as append-only JSON-lines
//!   (`supersym.sweep/v1`, see [`checkpoint`]) with a header identity hash
//!   and a per-record checksum: a sweep killed mid-flight resumes from the
//!   journal, tolerates a torn final line, degrades corrupt records to
//!   recomputation, and produces byte-identical final output;
//! * a result cache keyed by (program hash, machine hash) makes repeated
//!   sweeps incremental across grids that share cells.
//!
//! The [`report`] module reduces a finished sweep to a Pareto frontier of
//! speedup versus hardware cost, the lens the paper's Figure 4-3 presets
//! are a slice of.

pub mod checkpoint;
pub mod engine;
pub mod report;

pub use checkpoint::{
    load_checkpoint, CellMetrics, CellRecord, CellStatus, CheckpointError, ResumeState,
    SweepHeader, SCHEMA,
};
pub use engine::{
    cache_from_records, run_sweep, run_sweep_observed, CellFailure, CellRunner, FaultInjection,
    ResultCache, SweepConfig, SweepMetrics, SweepObserver, SweepOutcome, SweepPlan,
};
pub use report::{aggregate_cells, frontier_json, pareto_frontier, CellSummary, ParetoPoint};
