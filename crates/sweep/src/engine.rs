//! The fan-out engine: compile-once / simulate-many with fault isolation.
//!
//! Work items are the (cell × workload) product in canonical order
//! (`index = cell_index * workloads + workload_index`, cells enumerated
//! row-major by [`supersym_machine::GridSpec::cells`]). Worker threads
//! claim items off a shared cursor; each item runs under `catch_unwind`
//! so one panicking cell quarantines itself instead of killing the sweep.
//! Every item — success or failure — becomes exactly one
//! [`CellRecord`], appended to the journal the moment it finishes, so a
//! `SIGKILL` at any instant loses at most the record being written (and
//! the torn line is recovered by the checkpoint loader's tail tolerance).

use crate::checkpoint::{CellMetrics, CellRecord, CellStatus, ResumeState, SweepHeader};
use std::collections::HashMap;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;
use supersym_machine::{GridCell, GridSpec};
use supersym_rng::fnv1a_64;
use supersym_trace::{Histogram, MetricsRegistry};

/// A sweep's view of the compiler/simulator pipeline. Implemented in the
/// `supersym` core crate (which owns the pipeline); kept as a trait here so
/// the engine — and its fault-injection tests — need no pipeline at all.
pub trait CellRunner: Sync {
    /// Stable fingerprint of the compiled (unscheduled) program this
    /// (workload, cell) pair runs: the program half of the cache key.
    fn program_hash(&self, workload: usize, cell: &GridCell) -> u64;

    /// Schedules and simulates one item.
    ///
    /// # Errors
    ///
    /// [`CellFailure::Reject`] for typed pipeline errors,
    /// [`CellFailure::Fuel`] when the step budget runs out. Panics are the
    /// engine's job to contain, not the runner's.
    fn run_cell(&self, workload: usize, cell: &GridCell) -> Result<CellMetrics, CellFailure>;
}

/// A runner's typed failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFailure {
    /// The pipeline rejected the item with a typed error.
    Reject {
        /// Pipeline stage that rejected.
        stage: String,
        /// The error's display text.
        message: String,
    },
    /// Simulation exhausted its fuel (deterministic timeout).
    Fuel {
        /// The step limit that was exceeded.
        limit: u64,
    },
}

/// What to sweep: the grid, the workloads, and the identity under which
/// checkpoints are validated.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The machine grid.
    pub grid: GridSpec,
    /// Workload names, index-aligned with the runner's workloads.
    pub workload_names: Vec<String>,
    /// Simulator step budget per cell.
    pub fuel: u64,
    /// Everything that defines this sweep (canonical grid text, workload
    /// names and program fingerprints, options); hashed into the header.
    pub identity: String,
}

impl SweepPlan {
    /// Total work items.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.grid.cell_count() * self.workload_names.len()
    }

    /// The checkpoint header this plan writes and validates against.
    #[must_use]
    pub fn header(&self) -> SweepHeader {
        SweepHeader {
            grid: self.grid.canonical(),
            workloads: self.workload_names.clone(),
            records: self.record_count(),
            fuel: self.fuel,
            identity_hash: fnv1a_64(self.identity.as_bytes()),
        }
    }
}

/// Deterministic fault injection for self-tests: panic or time out every
/// N-th item (1-based, by canonical index).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultInjection {
    /// Panic on items where `(index + 1) % panic_every == 0`.
    pub panic_every: Option<u64>,
    /// Time out on items where `(index + 1) % timeout_every == 0`.
    pub timeout_every: Option<u64>,
}

impl FaultInjection {
    fn wants_panic(&self, index: usize) -> bool {
        self.panic_every
            .is_some_and(|n| n > 0 && (index as u64 + 1).is_multiple_of(n))
    }

    fn wants_timeout(&self, index: usize) -> bool {
        self.timeout_every
            .is_some_and(|n| n > 0 && (index as u64 + 1).is_multiple_of(n))
    }
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads (minimum 1).
    pub jobs: usize,
    /// Opt-in wall deadline per item, milliseconds. Items that finish over
    /// the deadline are reclassified as timeouts; leave `None` (the
    /// default) for byte-deterministic output, where the only timeout is
    /// the fuel watchdog.
    pub deadline_ms: Option<u64>,
    /// Fault injection (self-test / CI).
    pub inject: FaultInjection,
    /// Silence the default panic hook while the sweep runs. Contained
    /// panics are classified into records; their backtraces are noise.
    pub quiet: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            jobs: 1,
            deadline_ms: None,
            inject: FaultInjection::default(),
            quiet: false,
        }
    }
}

/// A finished sweep: the complete record set plus bookkeeping.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One record per item, in canonical index order. Always complete:
    /// every item is here, completed or quarantined.
    pub records: Vec<CellRecord>,
    /// Items executed by this run.
    pub executed: usize,
    /// Items satisfied from the result cache.
    pub cached: usize,
    /// Items recovered from the resume checkpoint.
    pub resumed: usize,
    /// Items quarantined (panic, timeout or reject), across the whole
    /// record set.
    pub quarantined: usize,
    /// Distributions and counters collected while this run's items ran
    /// (resumed items are not re-measured).
    pub metrics: SweepMetrics,
}

/// Watches items finish, one call per item handled by this run (cached or
/// executed; resumed items were handled by an earlier run). Calls arrive
/// from worker threads serialized through a mutex; per worker, `start_us`
/// is nondecreasing — the property that keeps timeline lanes monotone.
pub trait SweepObserver: Send {
    /// One finished item: `worker` handled it over `[start_us, end_us]`
    /// (microseconds since the sweep started; equal when `cached`).
    fn item(
        &mut self,
        worker: usize,
        start_us: u64,
        end_us: u64,
        cached: bool,
        record: &CellRecord,
    );
}

/// Distributions and counters from one sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepMetrics {
    /// Wall latency of each executed (non-cached) item, microseconds.
    pub cell_latency_us: Histogram,
    /// Items still unclaimed at each claim — how fast the queue drained.
    pub queue_depth: Histogram,
    /// Items satisfied from the result cache.
    pub cache_hits: u64,
    /// Items executed by this run.
    pub executed: u64,
    /// Executed items quarantined as panics.
    pub quarantined_panics: u64,
    /// Executed items quarantined as timeouts.
    pub quarantined_timeouts: u64,
    /// Items classified as typed rejects (executed or cached).
    pub quarantined_rejects: u64,
}

impl SweepMetrics {
    /// Folds the sweep metrics into `registry` under `sweep.*` names.
    pub fn register(&self, registry: &mut MetricsRegistry) {
        registry.histogram("sweep.cell_latency_us", &self.cell_latency_us);
        registry.histogram("sweep.queue_depth", &self.queue_depth);
        registry.counter("sweep.cache_hits", self.cache_hits);
        registry.counter("sweep.executed", self.executed);
        registry.counter("sweep.quarantined_panics", self.quarantined_panics);
        registry.counter("sweep.quarantined_timeouts", self.quarantined_timeouts);
        registry.counter("sweep.quarantined_rejects", self.quarantined_rejects);
        let handled = self.cache_hits + self.executed;
        if handled > 0 {
            registry.gauge(
                "sweep.cache_hit_rate",
                self.cache_hits as f64 / handled as f64,
            );
        }
    }
}

/// Result cache: (program hash, machine hash) → deterministic outcome.
/// Successes and typed rejects are cacheable; panics and timeouts are not
/// (they are exactly the outcomes worth retrying).
pub type ResultCache = HashMap<(u64, u64), CellStatus>;

/// Builds a cache from previously written records (e.g. a prior sweep's
/// journal, whatever its grid).
#[must_use]
pub fn cache_from_records<'a>(records: impl Iterator<Item = &'a CellRecord>) -> ResultCache {
    let mut cache = ResultCache::new();
    for record in records {
        match record.status {
            CellStatus::Ok(_) | CellStatus::Reject { .. } => {
                cache.insert(
                    (record.program_hash, record.machine_hash),
                    record.status.clone(),
                );
            }
            _ => {}
        }
    }
    cache
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs (or resumes) a sweep.
///
/// `journal`, when given, receives one rendered record line per finished
/// item, flushed immediately — the append-only checkpoint. The caller owns
/// the header line (writes it for a fresh journal, keeps it for a resumed
/// one). `resume` marks items already covered; `cache` satisfies items
/// whose (program, machine) pair already has a deterministic outcome.
///
/// # Errors
///
/// Only journal I/O errors propagate; cell failures never do — they are
/// classified and quarantined into the record set.
///
/// # Panics
///
/// Panics if `resume` was loaded for a different plan (slot count
/// mismatch) — the checkpoint loader's identity check prevents this.
pub fn run_sweep(
    plan: &SweepPlan,
    runner: &dyn CellRunner,
    config: &SweepConfig,
    resume: Option<ResumeState>,
    cache: &ResultCache,
    journal: Option<&mut (dyn Write + Send)>,
) -> io::Result<SweepOutcome> {
    run_sweep_observed(plan, runner, config, resume, cache, journal, None)
}

/// [`run_sweep`] with an observer: every item this run handles (cached or
/// executed) is reported with its worker index and wall-clock window, the
/// feed behind `titalc sweep --timeline`. Timing uses a monotonic clock
/// anchored at sweep start, so per-worker windows are nondecreasing.
///
/// # Errors
///
/// As [`run_sweep`]: only journal I/O errors propagate.
///
/// # Panics
///
/// As [`run_sweep`]: panics on a resume state from a different plan.
pub fn run_sweep_observed(
    plan: &SweepPlan,
    runner: &dyn CellRunner,
    config: &SweepConfig,
    resume: Option<ResumeState>,
    cache: &ResultCache,
    journal: Option<&mut (dyn Write + Send)>,
    observer: Option<&Mutex<dyn SweepObserver>>,
) -> io::Result<SweepOutcome> {
    let cells = plan.grid.cells();
    let workloads = plan.workload_names.len();
    let total = cells.len() * workloads;
    let mut slots: Vec<Option<CellRecord>> = match resume {
        Some(state) => {
            assert_eq!(state.done.len(), total, "resume state is for another plan");
            state.done
        }
        None => vec![None; total],
    };
    let resumed = slots.iter().filter(|slot| slot.is_some()).count();
    let pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();

    let run_started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let cached = AtomicUsize::new(0);
    let journal = Mutex::new(journal);
    let journal_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let fresh: Mutex<Vec<CellRecord>> = Mutex::new(Vec::with_capacity(pending.len()));
    let metrics: Mutex<SweepMetrics> = Mutex::new(SweepMetrics::default());

    let quiet_guard = config.quiet.then(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        previous
    });
    thread::scope(|scope| {
        let cursor = &cursor;
        let cached = &cached;
        let journal = &journal;
        let journal_error = &journal_error;
        let fresh = &fresh;
        let metrics = &metrics;
        let cells = &cells;
        let pending = &pending;
        let run_started = &run_started;
        for worker in 0..config.jobs.max(1) {
            scope.spawn(move || loop {
                if journal_error.lock().unwrap().is_some() {
                    break;
                }
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&index) = pending.get(claim) else {
                    break;
                };
                let start_us = elapsed_us(run_started);
                let cell = &cells[index / workloads];
                let workload = index % workloads;
                let machine_hash = cell.config().fingerprint();
                let program_hash = runner.program_hash(workload, cell);
                let hit = cache.get(&(program_hash, machine_hash));
                let was_cached = hit.is_some();
                let status = match hit {
                    Some(hit) => {
                        cached.fetch_add(1, Ordering::Relaxed);
                        hit.clone()
                    }
                    None => execute_item(plan, runner, config, index, workload, cell),
                };
                let end_us = if was_cached {
                    start_us
                } else {
                    elapsed_us(run_started)
                };
                let record = CellRecord {
                    index,
                    cell: cell.name(),
                    workload: plan.workload_names[workload].clone(),
                    machine_hash,
                    program_hash,
                    status,
                };
                {
                    let mut metrics = metrics.lock().unwrap();
                    metrics
                        .queue_depth
                        .record((pending.len() - claim - 1) as u64);
                    if was_cached {
                        metrics.cache_hits += 1;
                    } else {
                        metrics.executed += 1;
                        metrics.cell_latency_us.record(end_us - start_us);
                    }
                    match &record.status {
                        CellStatus::Panic { .. } => metrics.quarantined_panics += 1,
                        CellStatus::Timeout { .. } => metrics.quarantined_timeouts += 1,
                        CellStatus::Reject { .. } => metrics.quarantined_rejects += 1,
                        CellStatus::Ok(_) => {}
                    }
                }
                let line = record.render();
                {
                    let mut journal = journal.lock().unwrap();
                    if let Some(journal) = journal.as_deref_mut() {
                        if let Err(e) = writeln!(journal, "{line}").and_then(|()| journal.flush()) {
                            *journal_error.lock().unwrap() = Some(e);
                            break;
                        }
                    }
                }
                if let Some(observer) = observer {
                    observer
                        .lock()
                        .unwrap()
                        .item(worker, start_us, end_us, was_cached, &record);
                }
                fresh.lock().unwrap().push(record);
            });
        }
    });
    if let Some(previous) = quiet_guard {
        std::panic::set_hook(previous);
    }

    if let Some(error) = journal_error.into_inner().unwrap() {
        return Err(error);
    }
    let fresh = fresh.into_inner().unwrap();
    let executed = fresh.len() - cached.load(Ordering::Relaxed);
    for record in fresh {
        let index = record.index;
        slots[index] = Some(record);
    }
    let records: Vec<CellRecord> = slots
        .into_iter()
        .map(|slot| slot.expect("every item completed or quarantined"))
        .collect();
    let quarantined = records.iter().filter(|r| r.status.is_quarantined()).count();
    Ok(SweepOutcome {
        records,
        executed,
        cached: cached.load(Ordering::Relaxed),
        resumed,
        quarantined,
        metrics: metrics.into_inner().unwrap(),
    })
}

/// Microseconds since `started`, clamped into `u64`.
fn elapsed_us(started: &Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn execute_item(
    plan: &SweepPlan,
    runner: &dyn CellRunner,
    config: &SweepConfig,
    index: usize,
    workload: usize,
    cell: &GridCell,
) -> CellStatus {
    let inject = config.inject;
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject.wants_panic(index) {
            panic!("injected fault: sweep self-test panic");
        }
        if inject.wants_timeout(index) {
            return Err(CellFailure::Fuel { limit: plan.fuel });
        }
        runner.run_cell(workload, cell)
    }));
    let status = match outcome {
        Ok(Ok(metrics)) => CellStatus::Ok(metrics),
        Ok(Err(CellFailure::Reject { stage, message })) => CellStatus::Reject { stage, message },
        Ok(Err(CellFailure::Fuel { limit })) => CellStatus::Timeout { limit },
        Err(payload) => CellStatus::Panic {
            message: panic_message(payload),
        },
    };
    // The opt-in wall deadline: a cell that finished but blew its budget
    // is still quarantined, keeping pathological cells out of reports.
    if let Some(deadline_ms) = config.deadline_ms {
        if status.is_ok() && started.elapsed().as_millis() as u64 > deadline_ms {
            return CellStatus::Timeout { limit: deadline_ms };
        }
    }
    status
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_machine::GridSpec;

    /// A runner that needs no compiler: metrics derived from the cell
    /// shape, with scripted failures.
    struct MockRunner {
        reject_issue: u32,
    }

    impl CellRunner for MockRunner {
        fn program_hash(&self, workload: usize, _cell: &GridCell) -> u64 {
            workload as u64 + 1
        }

        fn run_cell(&self, _workload: usize, cell: &GridCell) -> Result<CellMetrics, CellFailure> {
            if cell.issue_width == self.reject_issue {
                return Err(CellFailure::Reject {
                    stage: "machine".to_string(),
                    message: "scripted reject".to_string(),
                });
            }
            Ok(CellMetrics {
                instructions: 1000,
                machine_cycles: 1000 / u64::from(cell.issue_width),
                base_cycles: 1000.0 / f64::from(cell.issue_width),
            })
        }
    }

    fn plan(grid: &str, workloads: &[&str]) -> SweepPlan {
        SweepPlan {
            grid: GridSpec::parse(grid).unwrap(),
            workload_names: workloads.iter().map(|w| (*w).to_string()).collect(),
            fuel: 10_000,
            identity: format!("test:{grid}"),
        }
    }

    #[test]
    fn every_item_lands_exactly_once() {
        let plan = plan("issue=1,2,4,8 pipe=1,2", &["a", "b"]);
        let runner = MockRunner { reject_issue: 0 };
        let outcome = run_sweep(
            &plan,
            &runner,
            &SweepConfig {
                jobs: 4,
                ..SweepConfig::default()
            },
            None,
            &ResultCache::new(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.records.len(), 16);
        for (i, record) in outcome.records.iter().enumerate() {
            assert_eq!(record.index, i);
        }
        assert_eq!(outcome.quarantined, 0);
        assert_eq!(outcome.executed, 16);
    }

    #[test]
    fn injected_faults_are_quarantined_not_lost() {
        // 500+ items with scripted panics and timeouts: the acceptance
        // bar is that every item is present, completed or quarantined.
        let plan = plan(
            "issue=1,2,3,4,5,6,7,8,9,10,11,12,13,14 pipe=1,2,3 lat=unit,titan,cray",
            &["w1", "w2", "w3", "w4"],
        );
        assert!(
            plan.record_count() >= 500,
            "want 500+ items, got {}",
            plan.record_count()
        );
        let runner = MockRunner { reject_issue: 13 };
        let config = SweepConfig {
            jobs: 8,
            inject: FaultInjection {
                panic_every: Some(17),
                timeout_every: Some(23),
            },
            quiet: true,
            ..SweepConfig::default()
        };
        let outcome = run_sweep(&plan, &runner, &config, None, &ResultCache::new(), None).unwrap();
        let total = plan.record_count();
        assert_eq!(outcome.records.len(), total);
        for (i, record) in outcome.records.iter().enumerate() {
            assert_eq!(record.index, i, "no item lost or duplicated");
        }
        let panics = outcome
            .records
            .iter()
            .filter(|r| matches!(r.status, CellStatus::Panic { .. }))
            .count();
        let timeouts = outcome
            .records
            .iter()
            .filter(|r| matches!(r.status, CellStatus::Timeout { .. }))
            .count();
        let rejects = outcome
            .records
            .iter()
            .filter(|r| matches!(r.status, CellStatus::Reject { .. }))
            .count();
        assert_eq!(panics, total / 17);
        // Panic injection (every 17th) wins over timeout injection on
        // common multiples of 17 and 23 (none below 500×... within range),
        // and both skip nothing else.
        assert_eq!(timeouts, total / 23 - total / (17 * 23));
        assert!(rejects > 0, "scripted rejects must classify as Reject");
        assert_eq!(outcome.quarantined, panics + timeouts + rejects);
    }

    #[test]
    fn resume_runs_only_missing_items() {
        let plan = plan("issue=1,2,4 pipe=1,2", &["a"]);
        let runner = MockRunner { reject_issue: 0 };
        let full = run_sweep(
            &plan,
            &runner,
            &SweepConfig::default(),
            None,
            &ResultCache::new(),
            None,
        )
        .unwrap();
        // Pretend the journal survived with items 0, 2, 5.
        let mut done: Vec<Option<CellRecord>> = vec![None; plan.record_count()];
        for &i in &[0usize, 2, 5] {
            done[i] = Some(full.records[i].clone());
        }
        let resumed = run_sweep(
            &plan,
            &runner,
            &SweepConfig::default(),
            Some(ResumeState {
                done,
                dropped_lines: 0,
            }),
            &ResultCache::new(),
            None,
        )
        .unwrap();
        assert_eq!(resumed.resumed, 3);
        assert_eq!(resumed.executed, plan.record_count() - 3);
        assert_eq!(resumed.records, full.records, "resume is invisible");
    }

    #[test]
    fn cache_short_circuits_runs() {
        let plan = plan("issue=1,2 pipe=1", &["a", "b"]);
        let runner = MockRunner { reject_issue: 0 };
        let first = run_sweep(
            &plan,
            &runner,
            &SweepConfig::default(),
            None,
            &ResultCache::new(),
            None,
        )
        .unwrap();
        let cache = cache_from_records(first.records.iter());
        let second =
            run_sweep(&plan, &runner, &SweepConfig::default(), None, &cache, None).unwrap();
        assert_eq!(second.cached, plan.record_count());
        assert_eq!(second.executed, 0);
        assert_eq!(second.records, first.records);
    }

    #[test]
    fn journal_lines_reload_to_the_same_records() {
        let plan = plan("issue=1,2,4 pipe=1", &["a"]);
        let runner = MockRunner { reject_issue: 2 };
        let mut journal: Vec<u8> = Vec::new();
        let outcome = run_sweep(
            &plan,
            &runner,
            &SweepConfig {
                jobs: 3,
                ..SweepConfig::default()
            },
            None,
            &ResultCache::new(),
            Some(&mut journal),
        )
        .unwrap();
        let text = format!(
            "{}\n{}",
            plan.header().render(),
            String::from_utf8(journal).unwrap()
        );
        let state = load_checkpoint(&text, &plan.header()).unwrap();
        assert_eq!(state.completed(), plan.record_count());
        assert_eq!(state.dropped_lines, 0);
        for record in &outcome.records {
            assert_eq!(state.done[record.index].as_ref().unwrap(), record);
        }
    }

    #[test]
    fn observer_sees_every_item_with_monotone_worker_windows() {
        let plan = plan("issue=1,2,4,8 pipe=1,2", &["a", "b"]);
        let runner = MockRunner { reject_issue: 8 };
        struct Collect {
            items: Vec<(usize, u64, u64, bool, usize)>,
        }
        impl SweepObserver for Collect {
            fn item(
                &mut self,
                worker: usize,
                start_us: u64,
                end_us: u64,
                cached: bool,
                record: &CellRecord,
            ) {
                self.items
                    .push((worker, start_us, end_us, cached, record.index));
            }
        }
        let observer = Mutex::new(Collect { items: Vec::new() });
        let outcome = run_sweep_observed(
            &plan,
            &runner,
            &SweepConfig {
                jobs: 3,
                ..SweepConfig::default()
            },
            None,
            &ResultCache::new(),
            None,
            Some(&observer),
        )
        .unwrap();
        assert_eq!(outcome.records.len(), 16);
        let items = observer.into_inner().unwrap().items;
        assert_eq!(items.len(), 16, "one observation per handled item");
        let mut indices: Vec<usize> = items.iter().map(|&(.., index)| index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
        // Per worker, windows are well-formed and nondecreasing — the
        // invariant that keeps timeline lanes monotone.
        for worker in 0..3 {
            let mut last_end = 0;
            for &(w, start_us, end_us, cached, _) in &items {
                if w != worker {
                    continue;
                }
                assert!(start_us <= end_us);
                assert!(!cached, "no cache was supplied");
                assert!(start_us >= last_end, "worker lane went backwards");
                last_end = end_us;
            }
        }
        // Metrics agree with the outcome's bookkeeping.
        assert_eq!(outcome.metrics.executed, 16);
        assert_eq!(outcome.metrics.cache_hits, 0);
        assert_eq!(outcome.metrics.cell_latency_us.count(), 16);
        assert_eq!(outcome.metrics.queue_depth.count(), 16);
        assert_eq!(outcome.metrics.queue_depth.max(), 15);
        // issue=8 rejects across both workloads × pipe settings.
        assert_eq!(outcome.metrics.quarantined_rejects, 4);
        assert_eq!(outcome.quarantined, 4);
    }

    #[test]
    fn cached_items_count_as_hits_in_metrics() {
        let plan = plan("issue=1,2 pipe=1", &["a", "b"]);
        let runner = MockRunner { reject_issue: 0 };
        let first = run_sweep(
            &plan,
            &runner,
            &SweepConfig::default(),
            None,
            &ResultCache::new(),
            None,
        )
        .unwrap();
        let cache = cache_from_records(first.records.iter());
        let second =
            run_sweep(&plan, &runner, &SweepConfig::default(), None, &cache, None).unwrap();
        assert_eq!(second.metrics.cache_hits, 4);
        assert_eq!(second.metrics.executed, 0);
        assert!(second.metrics.cell_latency_us.is_empty());
        let mut registry = MetricsRegistry::new();
        second.metrics.register(&mut registry);
        assert!(matches!(
            registry.get("sweep.cache_hit_rate"),
            Some(supersym_trace::Metric::Gauge(rate)) if (rate - 1.0).abs() < 1e-9
        ));
    }

    use crate::checkpoint::load_checkpoint;
}
