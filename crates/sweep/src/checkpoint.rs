//! The `supersym.sweep/v1` checkpoint schema.
//!
//! A sweep journal is append-only JSON-lines: one header line followed by
//! one record per finished (workload × cell) item, in completion order.
//! Three properties make it a checkpoint rather than a log:
//!
//! * the header carries an **identity hash** over everything that defines
//!   the sweep (canonical grid text, workload names, program fingerprints,
//!   fuel). A journal written for a different grid or a recompiled program
//!   is rejected on resume instead of silently merged;
//! * every record carries an FNV-1a **checksum** of its own rendering.
//!   This is only meaningful because the trace JSON writer and parser
//!   round-trip byte-identically: re-rendering a parsed record reproduces
//!   the exact text that was hashed. A corrupt record fails the check and
//!   degrades to recomputation of that one cell;
//! * a **torn final line** (the classic kill-mid-write artifact) fails to
//!   parse and is dropped; every complete line before it still counts.
//!
//! Records never contain wall-clock times or other run-volatile data, so a
//! resumed sweep's final output is byte-identical to an uninterrupted run.

use std::error::Error;
use std::fmt;
use supersym_rng::fnv1a_64;
use supersym_trace::{parse_json, JsonObject, JsonValue};

/// Schema tag carried by the header line.
pub const SCHEMA: &str = "supersym.sweep/v1";

/// Simulation results for one completed cell. Derived figures (ILP,
/// speedup) are recomputed from these rather than stored.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Machine cycles on the cell's own clock.
    pub machine_cycles: u64,
    /// Cycles normalized to the base machine's clock (a superpipeline's
    /// minor cycles count as fractions of a base cycle).
    pub base_cycles: f64,
}

impl CellMetrics {
    /// Speedup over the base machine, which retires one instruction per
    /// base cycle: `instructions / base_cycles`.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.base_cycles > 0.0 {
            self.instructions as f64 / self.base_cycles
        } else {
            0.0
        }
    }
}

/// What happened to one (workload × cell) item.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Simulation finished; metrics attached.
    Ok(CellMetrics),
    /// The pipeline returned a typed error (the cell is invalid for this
    /// workload — e.g. a register split too small for the expression
    /// depth). Deterministic, so rejects are cached like successes.
    Reject {
        /// Pipeline stage that rejected (`PipelineError::stage`).
        stage: String,
        /// The error's display text.
        message: String,
    },
    /// The worker panicked; the cell is quarantined.
    Panic {
        /// Panic payload, when it was a string.
        message: String,
    },
    /// The fuel or wall-deadline watchdog fired; the cell is quarantined.
    Timeout {
        /// The limit that was exceeded (steps of fuel, or milliseconds for
        /// the opt-in wall deadline).
        limit: u64,
    },
}

impl CellStatus {
    /// The `status` field value in the record.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CellStatus::Ok(_) => "ok",
            CellStatus::Reject { .. } => "reject",
            CellStatus::Panic { .. } => "panic",
            CellStatus::Timeout { .. } => "timeout",
        }
    }

    /// Whether the item completed with metrics.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, CellStatus::Ok(_))
    }

    /// Whether the item was quarantined (any non-`Ok` classification).
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        !self.is_ok()
    }
}

/// One journal line: the outcome of one (workload × cell) item.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Canonical item index: `cell_index * workloads + workload_index`.
    pub index: usize,
    /// Cell name (`n2.m4.titan.shared.default`).
    pub cell: String,
    /// Workload name.
    pub workload: String,
    /// [`supersym_machine::MachineConfig::fingerprint`] of the cell.
    pub machine_hash: u64,
    /// Fingerprint of the compiled (unscheduled) program.
    pub program_hash: u64,
    /// Outcome classification.
    pub status: CellStatus,
}

fn hex(value: u64) -> JsonValue {
    JsonValue::str(format!("{value:016x}"))
}

fn parse_hex(value: Option<&JsonValue>) -> Option<u64> {
    u64::from_str_radix(value?.as_str()?, 16).ok()
}

impl CellRecord {
    /// The record body (everything except the checksum), field order fixed.
    fn body(&self) -> JsonValue {
        let mut object = JsonObject::new()
            .field("index", JsonValue::UInt(self.index as u64))
            .field("cell", JsonValue::str(self.cell.clone()))
            .field("workload", JsonValue::str(self.workload.clone()))
            .field("machine_hash", hex(self.machine_hash))
            .field("program_hash", hex(self.program_hash))
            .field("status", JsonValue::str(self.status.label()));
        match &self.status {
            CellStatus::Ok(m) => {
                object = object
                    .field("instructions", JsonValue::UInt(m.instructions))
                    .field("machine_cycles", JsonValue::UInt(m.machine_cycles))
                    .field("base_cycles", JsonValue::Float(m.base_cycles));
            }
            CellStatus::Reject { stage, message } => {
                object = object
                    .field("stage", JsonValue::str(stage.clone()))
                    .field("message", JsonValue::str(message.clone()));
            }
            CellStatus::Panic { message } => {
                object = object.field("message", JsonValue::str(message.clone()));
            }
            CellStatus::Timeout { limit } => {
                object = object.field("limit", JsonValue::UInt(*limit));
            }
        }
        object.build()
    }

    /// Renders the journal line (no trailing newline): the body plus an
    /// FNV-1a checksum of the body's rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let body = self.body();
        let checksum = fnv1a_64(body.to_string().as_bytes());
        match body {
            JsonValue::Object(mut fields) => {
                fields.push(("checksum".to_string(), hex(checksum)));
                JsonValue::Object(fields).to_string()
            }
            _ => unreachable!("record body is always an object"),
        }
    }

    /// Parses and verifies one journal line. Returns `None` for anything
    /// short of a fully intact record: torn JSON, missing fields, or a
    /// checksum mismatch. Callers degrade to recomputing the cell.
    #[must_use]
    pub fn parse(line: &str) -> Option<CellRecord> {
        let value = parse_json(line.trim()).ok()?;
        let fields = value.as_object()?;
        let (body_fields, checksums): (Vec<_>, Vec<_>) = fields
            .iter()
            .cloned()
            .partition(|(key, _)| key != "checksum");
        let stored = parse_hex(checksums.first().map(|(_, v)| v))?;
        let body = JsonValue::Object(body_fields);
        if fnv1a_64(body.to_string().as_bytes()) != stored {
            return None;
        }
        let status = match body.get("status")?.as_str()? {
            "ok" => CellStatus::Ok(CellMetrics {
                instructions: body.get("instructions")?.as_u64()?,
                machine_cycles: body.get("machine_cycles")?.as_u64()?,
                base_cycles: body.get("base_cycles")?.as_f64()?,
            }),
            "reject" => CellStatus::Reject {
                stage: body.get("stage")?.as_str()?.to_string(),
                message: body.get("message")?.as_str()?.to_string(),
            },
            "panic" => CellStatus::Panic {
                message: body.get("message")?.as_str()?.to_string(),
            },
            "timeout" => CellStatus::Timeout {
                limit: body.get("limit")?.as_u64()?,
            },
            _ => return None,
        };
        Some(CellRecord {
            index: body.get("index")?.as_u64()? as usize,
            cell: body.get("cell")?.as_str()?.to_string(),
            workload: body.get("workload")?.as_str()?.to_string(),
            machine_hash: parse_hex(body.get("machine_hash"))?,
            program_hash: parse_hex(body.get("program_hash"))?,
            status,
        })
    }
}

/// The journal's first line: what sweep this is a checkpoint of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepHeader {
    /// Canonical grid text ([`supersym_machine::GridSpec::canonical`]).
    pub grid: String,
    /// Workload names, in index order.
    pub workloads: Vec<String>,
    /// Total (workload × cell) items the sweep will produce.
    pub records: usize,
    /// Fuel (simulator step limit) per cell.
    pub fuel: u64,
    /// FNV-1a hash over the full identity string (grid, workloads,
    /// program fingerprints, options); resume refuses a mismatch.
    pub identity_hash: u64,
}

impl SweepHeader {
    /// Renders the header line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        JsonObject::new()
            .field("schema", JsonValue::str(SCHEMA))
            .field("grid", JsonValue::str(self.grid.clone()))
            .field(
                "workloads",
                JsonValue::Array(
                    self.workloads
                        .iter()
                        .map(|w| JsonValue::str(w.clone()))
                        .collect(),
                ),
            )
            .field("records", JsonValue::UInt(self.records as u64))
            .field("fuel", JsonValue::UInt(self.fuel))
            .field("identity", hex(self.identity_hash))
            .build()
            .to_string()
    }

    /// Parses a header line; `None` if it is not an intact header.
    #[must_use]
    pub fn parse(line: &str) -> Option<SweepHeader> {
        let value = parse_json(line.trim()).ok()?;
        if value.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        let workloads = value
            .get("workloads")?
            .as_array()?
            .iter()
            .map(|w| w.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        Some(SweepHeader {
            grid: value.get("grid")?.as_str()?.to_string(),
            workloads,
            records: value.get("records")?.as_u64()? as usize,
            fuel: value.get("fuel")?.as_u64()?,
            identity_hash: parse_hex(value.get("identity"))?,
        })
    }
}

/// Why a checkpoint cannot seed a resume.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file is empty or its first line is not a `supersym.sweep/v1`
    /// header.
    MissingHeader,
    /// The header is intact but describes a different sweep (grid,
    /// workloads, programs or fuel changed since it was written).
    IdentityMismatch {
        /// Identity hash the checkpoint was written under.
        found: u64,
        /// Identity hash of the sweep being resumed.
        expected: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::MissingHeader => {
                write!(f, "checkpoint has no {SCHEMA} header line")
            }
            CheckpointError::IdentityMismatch { found, expected } => write!(
                f,
                "checkpoint identity {found:016x} does not match this sweep \
                 ({expected:016x}): the grid, workloads or programs changed"
            ),
        }
    }
}

impl Error for CheckpointError {}

/// Verified records recovered from a checkpoint.
#[derive(Debug)]
pub struct ResumeState {
    /// Slot per item index; `Some` where the journal holds an intact
    /// record.
    pub done: Vec<Option<CellRecord>>,
    /// Journal lines dropped: torn tail, checksum failures, out-of-range
    /// indices. Each dropped line degrades to recomputation.
    pub dropped_lines: usize,
}

impl ResumeState {
    /// How many items the checkpoint already covers.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.done.iter().filter(|slot| slot.is_some()).count()
    }
}

/// Validates a checkpoint against the sweep being (re)run and recovers
/// every intact record.
///
/// # Errors
///
/// [`CheckpointError::MissingHeader`] when the first line is not an intact
/// header, [`CheckpointError::IdentityMismatch`] when the header belongs
/// to a different sweep. Damaged *records* are never errors — they are
/// dropped and counted, and the engine recomputes those cells.
pub fn load_checkpoint(text: &str, expected: &SweepHeader) -> Result<ResumeState, CheckpointError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .and_then(SweepHeader::parse)
        .ok_or(CheckpointError::MissingHeader)?;
    if header.identity_hash != expected.identity_hash {
        return Err(CheckpointError::IdentityMismatch {
            found: header.identity_hash,
            expected: expected.identity_hash,
        });
    }
    let mut done: Vec<Option<CellRecord>> = vec![None; expected.records];
    let mut dropped_lines = 0;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match CellRecord::parse(line) {
            Some(record) if record.index < done.len() => {
                // Keep the newest copy: a prior resume may have rewritten
                // a record whose first copy was corrupt.
                let index = record.index;
                done[index] = Some(record);
            }
            _ => dropped_lines += 1,
        }
    }
    Ok(ResumeState {
        done,
        dropped_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, status: CellStatus) -> CellRecord {
        CellRecord {
            index,
            cell: "n2.m1.unit.ideal.default".to_string(),
            workload: "whet".to_string(),
            machine_hash: 0x1234_5678_9abc_def0,
            program_hash: 0x0fed_cba9_8765_4321,
            status,
        }
    }

    fn ok_metrics() -> CellMetrics {
        CellMetrics {
            instructions: 1000,
            machine_cycles: 400,
            base_cycles: 400.0,
        }
    }

    #[test]
    fn record_roundtrip_all_statuses() {
        for status in [
            CellStatus::Ok(ok_metrics()),
            CellStatus::Reject {
                stage: "regalloc".to_string(),
                message: "register split leaves 1 int temps".to_string(),
            },
            CellStatus::Panic {
                message: "index out of bounds".to_string(),
            },
            CellStatus::Timeout { limit: 200_000 },
        ] {
            let original = record(7, status);
            let line = original.render();
            let parsed = CellRecord::parse(&line).expect("intact record parses");
            assert_eq!(parsed, original);
        }
    }

    #[test]
    fn corrupt_record_is_rejected() {
        let line = record(0, CellStatus::Ok(ok_metrics())).render();
        // Flip a digit inside the instruction count.
        let corrupted = line.replace("1000", "1001");
        assert_ne!(line, corrupted);
        assert!(CellRecord::parse(&corrupted).is_none());
        // Torn tail: any prefix short of the full line fails cleanly.
        assert!(CellRecord::parse(&line[..line.len() - 5]).is_none());
    }

    #[test]
    fn speedup_is_instructions_over_base_cycles() {
        let m = CellMetrics {
            instructions: 800,
            machine_cycles: 100,
            base_cycles: 200.0,
        };
        assert!((m.speedup() - 4.0).abs() < 1e-12);
    }

    fn header() -> SweepHeader {
        SweepHeader {
            grid: "issue=1,2 pipe=1 lat=unit fu=ideal split=default".to_string(),
            workloads: vec!["whet".to_string(), "linpack".to_string()],
            records: 4,
            fuel: 200_000,
            identity_hash: 0xdead_beef_dead_beef,
        }
    }

    #[test]
    fn header_roundtrip() {
        let original = header();
        let parsed = SweepHeader::parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn load_rejects_wrong_identity() {
        let mut text = header().render();
        text.push('\n');
        let mut expected = header();
        expected.identity_hash = 1;
        assert!(matches!(
            load_checkpoint(&text, &expected),
            Err(CheckpointError::IdentityMismatch { .. })
        ));
        assert!(matches!(
            load_checkpoint("", &expected),
            Err(CheckpointError::MissingHeader)
        ));
    }

    #[test]
    fn load_tolerates_torn_tail_and_corruption() {
        let expected = header();
        let good = record(1, CellStatus::Ok(ok_metrics()));
        let corrupt = record(2, CellStatus::Ok(ok_metrics()))
            .render()
            .replace("1000", "1001");
        let torn = &record(3, CellStatus::Timeout { limit: 9 }).render()[..20];
        let text = format!(
            "{}\n{}\n{}\n{}",
            expected.render(),
            good.render(),
            corrupt,
            torn
        );
        let state = load_checkpoint(&text, &expected).unwrap();
        assert_eq!(state.completed(), 1);
        assert_eq!(state.done[1].as_ref().unwrap(), &good);
        assert_eq!(state.dropped_lines, 2);
    }

    #[test]
    fn load_keeps_newest_duplicate() {
        let expected = header();
        let old = record(0, CellStatus::Timeout { limit: 1 });
        let new = record(0, CellStatus::Ok(ok_metrics()));
        let text = format!("{}\n{}\n{}", expected.render(), old.render(), new.render());
        let state = load_checkpoint(&text, &expected).unwrap();
        assert_eq!(state.done[0].as_ref().unwrap(), &new);
    }
}
