//! Static ILP ceilings vs measured parallelism: the loop-nest dependence
//! analysis predicts, per workload × preset, an upper bound on the
//! parallelism the simulator can report — and the simulator never exceeds
//! it (the `sound` column).
//!
//! ```text
//! cargo run --release -p supersym --example bound_study
//! ```

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    println!("{}", experiments::bound_study(Size::Standard));
}
