//! The ablations the paper leaves to future work: class conflicts
//! (§2.3.2), the perfect-branch-prediction assumption (§2.1), and a
//! measured companion to the Figure 4-3 utilization grid.
//!
//! ```text
//! cargo run --release -p supersym --example ablations
//! ```

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    let size = Size::Small;
    println!("{}", experiments::ablation_class_conflicts(size));
    println!("{}", experiments::ablation_branch_prediction(size));
    println!("{}", experiments::grid_measurement(size));
    println!("{}", experiments::unrolling_icache(size));
}
