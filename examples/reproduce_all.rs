//! Regenerates every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p supersym --example reproduce_all           # standard size
//! cargo run --release -p supersym --example reproduce_all -- small  # quick pass
//! ```

use supersym::experiments as exp;
use supersym::workloads::Size;

fn main() {
    let size = if std::env::args().any(|a| a == "small") {
        Size::Small
    } else {
        Size::Standard
    };
    println!("==========================================================");
    println!(" supersym: reproduction of Jouppi & Wall, ASPLOS 1989");
    println!(" workload size: {size:?}");
    println!("==========================================================\n");
    println!("{}", exp::fig1_1());
    println!("{}", exp::fig2_diagrams());
    println!("{}", exp::table2_1(size));
    println!("{}", exp::fig4_1(size));
    println!("{}", exp::fig4_2());
    println!("{}", exp::fig4_3());
    println!("{}", exp::fig4_4(size));
    println!("{}", exp::fig4_5(size));
    println!("{}", exp::fig4_6(size));
    println!("{}", exp::fig4_7());
    println!("{}", exp::fig4_8(size));
    println!("{}", exp::table5_1(size));
    println!("{}", exp::sec5_1());
    println!("{}", exp::headline(size));
    println!("{}", exp::ablation_class_conflicts(size));
    println!("{}", exp::ablation_branch_prediction(size));
    println!("{}", exp::grid_measurement(size));
    println!("{}", exp::unrolling_icache(size));
    println!("{}", exp::vector_equivalence());
    println!("{}", exp::complexity_tax(size));
    println!("{}", exp::limit_study(size));
    println!("{}", exp::stall_breakdown(size));
    println!("{}", exp::rules_study(size));
    println!("{}", exp::bound_study(size));
    println!("{}", exp::sweep_study(size));
}
