//! The §4.4 unrolling study on a single kernel: naive vs careful unrolling
//! of a DAXPY loop, showing the false-conflict effect the paper describes
//! ("The parallelism improvement from naive unrolling is mostly flat ...
//! largely because of false conflicts between the different copies").
//!
//! ```text
//! cargo run --release -p supersym --example unrolling_study
//! ```

use supersym::machine::{presets, RegisterSplit};
use supersym::opt::UnrollOptions;
use supersym::sim::{simulate, SimOptions};
use supersym::{compile, CompileOptions, OptLevel};

const DAXPY: &str = "
    global farr x[256]; global farr y[256]; global fvar m;
    fn main() -> int {
        m = 0.5;
        for (i = 0; i < 256; i = i + 1) { x[i] = itof(i); y[i] = itof(i) * 0.5; }
        for (rep = 0; rep < 50; rep = rep + 1) {
            for (j = 0; j < 256; j = j + 1) {
                x[j] = x[j] - m * y[j];
            }
        }
        return ftoi(x[100]);
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = presets::ideal_superscalar(8);
    println!("DAXPY on an ideal degree-8 superscalar, forty-temporary split\n");
    println!(
        "{:16} {:>12} {:>12} {:>8}",
        "unrolling", "instructions", "base cycles", "IPC"
    );
    for (label, unroll) in [
        ("none", None),
        ("naive x2", Some(UnrollOptions::naive(2))),
        ("naive x4", Some(UnrollOptions::naive(4))),
        ("naive x10", Some(UnrollOptions::naive(10))),
        ("careful x2", Some(UnrollOptions::careful(2))),
        ("careful x4", Some(UnrollOptions::careful(4))),
        ("careful x10", Some(UnrollOptions::careful(10))),
    ] {
        let mut options = CompileOptions::new(OptLevel::O4, &machine)
            .with_split(RegisterSplit::unrolling_study());
        if let Some(unroll) = unroll {
            options = options.with_unroll(unroll);
        }
        let program = compile(DAXPY, &options)?;
        let report = simulate(&program, &machine, SimOptions::default())?;
        println!(
            "{:16} {:>12} {:>12.0} {:>8.2}",
            label,
            report.instructions(),
            report.base_cycles(),
            report.available_parallelism()
        );
    }
    Ok(())
}
