//! Quickstart: compile a Tital program, run it on several machines, and
//! compare cycle counts.
//!
//! ```text
//! cargo run --release -p supersym --example quickstart
//! ```

use supersym::machine::presets;
use supersym::sim::{simulate, SimOptions};
use supersym::{compile, CompileOptions, OptLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small program in Tital, the benchmark language: dot product plus a
    // branchy scan.
    let source = "
        global farr x[256];
        global farr y[256];
        global var bigcount;

        fn main() -> int {
            for (i = 0; i < 256; i = i + 1) {
                x[i] = itof(i) * 0.5;
                y[i] = itof(256 - i);
            }
            fvar dot = 0.0;
            for (i = 0; i < 256; i = i + 1) {
                dot = dot + x[i] * y[i];
            }
            bigcount = 0;
            for (i = 0; i < 256; i = i + 1) {
                if (x[i] * y[i] > 4000.0) { bigcount = bigcount + 1; }
            }
            return ftoi(dot) + bigcount;
        }";

    println!(
        "{:22} {:>12} {:>12} {:>8} {:>9}",
        "machine", "instructions", "base cycles", "IPC", "speedup"
    );
    let base = {
        let machine = presets::base();
        let program = compile(source, &CompileOptions::new(OptLevel::O4, &machine))?;
        simulate(&program, &machine, SimOptions::default())?
    };
    for machine in [
        presets::base(),
        presets::multititan(),
        presets::cray1(),
        presets::ideal_superscalar(2),
        presets::ideal_superscalar(4),
        presets::superpipelined(4),
        presets::superscalar_with_class_conflicts(4),
    ] {
        // The compiler schedules code for the machine it will run on, just
        // as the paper's system did.
        let program = compile(source, &CompileOptions::new(OptLevel::O4, &machine))?;
        let report = simulate(&program, &machine, SimOptions::default())?;
        println!(
            "{:22} {:>12} {:>12.0} {:>8.2} {:>8.2}x",
            machine.name(),
            report.instructions(),
            report.base_cycles(),
            report.available_parallelism(),
            report.speedup_over(&base),
        );
    }
    Ok(())
}
