//! The Section 5.1 cache analysis, live: runs a benchmark through the
//! split I/D cache simulator at several geometries and shows how miss
//! burden dilutes the benefit of parallel instruction issue.
//!
//! ```text
//! cargo run --release -p supersym --example cache_study
//! ```

use supersym::machine::presets;
use supersym::sim::{
    issue_speedup_with_miss_burden, simulate_with_cache, CacheConfig, MissCostRow, SimOptions,
};
use supersym::workloads::{ccom, linpack};
use supersym::{compile, CompileOptions, OptLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 5-1, analytic.
    println!("Table 5-1 (analytic):");
    for row in MissCostRow::table_5_1() {
        println!(
            "  {:26} miss = {:>4.0} cycles = {:>6.1} instruction times",
            row.machine(),
            row.miss_cost_cycles(),
            row.miss_cost_instructions()
        );
    }

    // Measured miss rates at two cache sizes.
    let machine = presets::base();
    println!("\nmeasured miss rates:");
    println!(
        "  {:10} {:22} {:>8} {:>8} {:>14}",
        "workload", "cache", "I-miss", "D-miss", "cpi @12cyc miss"
    );
    for workload in [ccom(40), linpack(24)] {
        let program = compile(
            &workload.source,
            &CompileOptions::new(OptLevel::O4, &machine),
        )?;
        for (label, config) in [
            ("8KiB direct-mapped", CacheConfig::small_direct()),
            ("64KiB two-way", CacheConfig::large_two_way()),
        ] {
            let (report, caches) =
                simulate_with_cache(&program, &machine, SimOptions::default(), config, config)?;
            let cpi = caches.effective_cpi(
                report.base_cycles() / report.instructions() as f64,
                12.0, // the WRL Titan miss cost from Table 5-1
            );
            println!(
                "  {:10} {:22} {:>7.2}% {:>7.2}% {:>14.2}",
                workload.name,
                label,
                caches.icache.miss_rate() * 100.0,
                caches.dcache.miss_rate() * 100.0,
                cpi
            );
        }
    }

    // The dilution argument.
    println!("\nissue-width speedup under miss burden (issue cpi 1.0 -> 0.5):");
    for miss_cpi in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let (_, with) = issue_speedup_with_miss_burden(1.0, 0.5, miss_cpi);
        println!(
            "  miss burden {:>4.2} cpi -> overall speedup {:.2}x",
            miss_cpi, with
        );
    }
    Ok(())
}
