//! Prints the headline available-parallelism table and key figures.

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    let size = Size::Small;
    println!("{}", experiments::headline(size));
    println!("{}", experiments::fig4_1(size));
    println!("{}", experiments::fig4_5(size));
    println!("{}", experiments::fig4_8(size));
}
