//! What the machine-verified rewrite-rule table buys: static and dynamic
//! instruction counts and the measured issue rate for every workload,
//! compiled with the table disabled and enabled.
//!
//! ```text
//! cargo run --release -p supersym --example rules_study
//! ```

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    println!("{}", experiments::rules_study(Size::Standard));
}
