//! The ILP limit study: our in-order measurements beside the two oracle
//! regimes of the limit literature the paper builds on (Tjaden & Flynn
//! 1970; Riseman & Foster 1972).
//!
//! ```text
//! cargo run --release -p supersym --example ilp_limits
//! ```

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    println!("{}", experiments::limit_study(Size::Small));
    println!("{}", experiments::complexity_tax(Size::Small));
}
