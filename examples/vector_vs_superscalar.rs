//! §2.3's equivalence claim, measured: "A superscalar machine that can
//! issue a fixed-point, floating-point, load, and a branch all in one cycle
//! achieves the same effective parallelism" as a chained vector machine.
//!
//! ```text
//! cargo run --release -p supersym --example vector_vs_superscalar
//! ```

use supersym::experiments;

fn main() {
    let result = experiments::vector_equivalence();
    println!("{result}");
    let gap = (result.scalar_superscalar - result.vector).abs()
        / result.scalar_superscalar.max(result.vector)
        * 100.0;
    println!("superscalar vs vector gap: {gap:.1}%");
    println!(
        "base-machine scalar loop is {:.1}x slower than either",
        result.scalar_base / result.vector
    );
}
