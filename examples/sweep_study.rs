//! The measured companion to Figure 4-3: sweep a 48-cell machine grid
//! (issue width × pipe degree × latency model × unit sharing) with the
//! fault-isolating engine and print the speedup-vs-hardware-cost Pareto
//! frontier. The paper's superscalar and superpipelined presets are
//! literal cells of this grid.
//!
//! ```text
//! cargo run --release -p supersym --example sweep_study
//! ```

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    println!("{}", experiments::sweep_study(Size::Standard));
}
