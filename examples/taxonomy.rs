//! The Section 2 machine taxonomy, drawn live from the timing model:
//! base, underpipelined, superscalar, VLIW, superpipelined, superpipelined
//! superscalar, and vector execution (Figures 2-1 through 2-8), plus the
//! Figure 4-2 startup-transient comparison and the Figure 4-3 utilization
//! grid.
//!
//! ```text
//! cargo run --release -p supersym --example taxonomy
//! ```

use supersym::experiments;

fn main() {
    println!("{}", experiments::fig2_diagrams());
    println!("{}", experiments::fig4_2());
    println!("{}", experiments::fig4_3());
}
