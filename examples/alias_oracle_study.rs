//! The alias-oracle ablation: how much schedulable parallelism the
//! symbolic base+offset oracle from `supersym-analyze` recovers over the
//! conservative annotation-only oracle, on every paper preset machine.
//!
//! ```text
//! cargo run --release -p supersym --example alias_oracle_study
//! ```

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    println!("{}", experiments::alias_oracle_study(Size::Small));
}
