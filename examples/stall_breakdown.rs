//! Where the cycles go: the suite's cycle account aggregated per paper
//! preset — every machine cycle charged to issue, one stall cause, or
//! pipeline drain, plus the dominant per-instruction wait cause.
//!
//! ```text
//! cargo run --release -p supersym --example stall_breakdown
//! ```

use supersym::experiments;
use supersym::workloads::Size;

fn main() {
    println!("{}", experiments::stall_breakdown(Size::Standard));
}
