//! Building a custom machine description — the paper's §3 interface —
//! and exploring a design question with it: how much does a second memory
//! port buy a dual-issue machine on a memory-heavy workload?
//!
//! ```text
//! cargo run --release -p supersym --example custom_machine
//! ```

use supersym::isa::InstrClass;
use supersym::machine::{FunctionalUnit, MachineConfig};
use supersym::sim::{simulate, SimOptions};
use supersym::workloads::{livermore, Size};
use supersym::{compile, CompileOptions, OptLevel};

/// A dual-issue machine with MultiTitan-like latencies and a configurable
/// number of memory ports.
fn dual_issue(mem_ports: u32) -> MachineConfig {
    let mut builder = MachineConfig::builder(format!("dual-issue ({mem_ports} mem ports)"));
    builder
        .issue_width(2)
        .latency(InstrClass::Load, 2)
        .latency(InstrClass::Store, 2)
        .latency(InstrClass::FpAdd, 3)
        .latency(InstrClass::FpMul, 3)
        .latency(InstrClass::FpDiv, 12)
        .latency(InstrClass::IntMul, 3)
        .latency(InstrClass::IntDiv, 12)
        // Two of everything except what we are studying.
        .functional_unit(FunctionalUnit::new(
            "alu",
            vec![
                InstrClass::Logical,
                InstrClass::Shift,
                InstrClass::IntAdd,
                InstrClass::Compare,
                InstrClass::IntMul,
                InstrClass::IntDiv,
            ],
            2,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "mem",
            vec![InstrClass::Load, InstrClass::Store],
            mem_ports,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "ctrl",
            vec![InstrClass::Branch, InstrClass::Jump],
            2,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "fp",
            vec![
                InstrClass::FpAdd,
                InstrClass::FpMul,
                InstrClass::FpDiv,
                InstrClass::FpCvt,
            ],
            2,
            1,
        ));
    builder.build().expect("machine description is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = livermore(64, 2);
    println!("workload: {}\n", workload.description);
    println!("{:28} {:>12} {:>10}", "machine", "base cycles", "IPC");
    let mut one_port_cycles = None;
    for ports in [1, 2] {
        let machine = dual_issue(ports);
        let program = compile(
            &workload.source,
            &CompileOptions::new(OptLevel::O4, &machine),
        )?;
        let report = simulate(&program, &machine, SimOptions::default())?;
        println!(
            "{:28} {:>12.0} {:>10.2}",
            machine.name(),
            report.base_cycles(),
            report.available_parallelism()
        );
        match one_port_cycles {
            None => one_port_cycles = Some(report.base_cycles()),
            Some(one) => println!(
                "\nsecond memory port is worth {:.1}% on this workload",
                (one / report.base_cycles() - 1.0) * 100.0
            ),
        }
    }
    // The machine description is plain serializable data (paper §3: "This
    // interface allows us to specify details about the pipeline, functional
    // units, cache, and register set").
    println!("\n{}", dual_issue(2));
    let _ = Size::Small; // sizes available for larger studies
    Ok(())
}
